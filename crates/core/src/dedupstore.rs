//! [`DedupStore`]: the deduplicating layer over any [`Scheme`].
//!
//! Files are stored as a **manifest** (the chunk fingerprint list, JSON
//! like the metadata blocks) plus one object per *unique* chunk. A chunk
//! already in the index never travels over the network again — the
//! transfer reduction §VI is after. Chunk objects inherit the underlying
//! scheme's redundancy policy: with HyRD underneath, the (small) chunks
//! land replicated on the performance tier and the manifest rides the
//! same path as metadata.
//!
//! The chunking, fingerprinting, and index primitives live in the leaf
//! [`hyrd_dedup`] crate; this module supplies the [`Scheme`]-coupled
//! store on top of them.

use std::collections::HashMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use hyrd_gcsapi::BatchReport;

use crate::scheme::{Scheme, SchemeError, SchemeResult};
use hyrd_dedup::chunker::{Chunker, ChunkerConfig};
use hyrd_dedup::index::{ChunkIndex, Fingerprint};
use hyrd_dedup::sha256::hex;

/// A stored file's chunk list.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
struct Manifest {
    /// Total file length.
    len: u64,
    /// Chunk fingerprints (hex) in order, with lengths.
    chunks: Vec<(String, usize)>,
}

/// Cumulative dedup effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Logical bytes written through the store.
    pub logical_bytes: u64,
    /// Bytes actually sent to the cloud (unique chunks + manifests).
    pub transferred_bytes: u64,
    /// Chunks that were already present (no network transfer).
    pub duplicate_chunks: u64,
    /// Chunks stored for the first time.
    pub unique_chunks: u64,
}

impl DedupStats {
    /// The classic dedup ratio: logical bytes per transferred byte.
    pub fn dedup_ratio(&self) -> f64 {
        if self.transferred_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.transferred_bytes as f64
    }
}

/// The deduplicating store.
///
/// ```
/// use hyrd::prelude::*;
/// use hyrd::DedupStore;
///
/// let fleet = Fleet::standard_four(SimClock::new());
/// let hyrd = Hyrd::new(&fleet, HyrdConfig::default()).unwrap();
/// let mut store = DedupStore::new(hyrd);
///
/// let data = vec![42u8; 100_000];
/// store.write_file("/a", &data).unwrap();
/// store.write_file("/b", &data).unwrap(); // same bytes: only a manifest moves
/// assert!(store.stats().dedup_ratio() > 1.8);
/// let (bytes, _) = store.read_file("/b").unwrap();
/// assert_eq!(&bytes[..], &data[..]);
/// ```
pub struct DedupStore<S: Scheme> {
    inner: S,
    chunker: Chunker,
    index: ChunkIndex,
    /// Path → (manifest, fingerprints) for files written through us.
    manifests: HashMap<String, (Manifest, Vec<Fingerprint>)>,
    stats: DedupStats,
}

impl<S: Scheme> DedupStore<S> {
    /// Wraps a scheme with the default chunking parameters.
    pub fn new(inner: S) -> Self {
        DedupStore::with_config(inner, ChunkerConfig::default())
    }

    /// Wraps a scheme with explicit chunking parameters.
    pub fn with_config(inner: S, config: ChunkerConfig) -> Self {
        DedupStore {
            inner,
            chunker: Chunker::new(config),
            index: ChunkIndex::new(),
            manifests: HashMap::new(),
            stats: DedupStats::default(),
        }
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Dedup effectiveness so far.
    pub fn stats(&self) -> &DedupStats {
        &self.stats
    }

    /// Unique chunks currently retained.
    pub fn unique_chunks(&self) -> usize {
        self.index.unique_chunks()
    }

    /// The index's client-side memory footprint in bytes (§VI's cost).
    pub fn index_memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }

    fn chunk_path(fp: &Fingerprint) -> String {
        format!("/.dedup/chunks/{}", hex(fp))
    }

    fn manifest_path(path: &str) -> String {
        format!("/.dedup/manifests{path}")
    }

    /// Writes a file, storing only chunks the cloud has not seen.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> SchemeResult<BatchReport> {
        if self.manifests.contains_key(path) {
            return Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "already stored through this dedup client".to_string(),
            });
        }
        let chunks = self.chunker.chunk(data);
        let mut batch = BatchReport::empty();
        let mut fps = Vec::with_capacity(chunks.len());
        let mut entries = Vec::with_capacity(chunks.len());

        for chunk in &chunks {
            entries.push((hex(&chunk.digest), chunk.data.len()));
            fps.push(chunk.digest);
            if self.index.add_ref(&chunk.digest).is_some() {
                self.stats.duplicate_chunks += 1;
                continue; // dedup hit: nothing moves
            }
            let object = Self::chunk_path(&chunk.digest);
            let b = self.inner.create_file(&object, &chunk.data)?;
            self.stats.unique_chunks += 1;
            self.stats.transferred_bytes += chunk.data.len() as u64;
            self.index.insert(chunk.digest, object, chunk.data.len());
            batch = batch.alongside(b); // unique chunks upload in parallel
        }

        let manifest = Manifest { len: data.len() as u64, chunks: entries };
        let mbytes = serde_json::to_vec(&manifest).expect("manifests always serialize");
        self.stats.transferred_bytes += mbytes.len() as u64;
        self.stats.logical_bytes += data.len() as u64;
        let mb = self.inner.create_file(&Self::manifest_path(path), &mbytes)?;
        self.manifests.insert(path.to_string(), (manifest, fps));
        Ok(batch.then(mb))
    }

    /// Reads a file back by fetching its manifest and chunks.
    pub fn read_file(&mut self, path: &str) -> SchemeResult<(Bytes, BatchReport)> {
        // The manifest read is charged (it lives in the cloud); the local
        // copy is used to avoid re-parsing.
        let (_, mbatch) = self.inner.read_file(&Self::manifest_path(path))?;
        let (manifest, fps) = self
            .manifests
            .get(path)
            .ok_or_else(|| SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "manifest not tracked by this client".to_string(),
            })?
            .clone();

        let mut out = Vec::with_capacity(manifest.len as usize);
        let mut batch = mbatch;
        let mut chunk_batches = BatchReport::empty();
        for fp in &fps {
            let entry = self.index.get(fp).ok_or_else(|| SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "chunk missing from index".to_string(),
            })?;
            let (bytes, b) = self.inner.read_file(&entry.object.clone())?;
            out.extend_from_slice(&bytes);
            chunk_batches = chunk_batches.alongside(b); // chunks fetch in parallel
        }
        batch = batch.then(chunk_batches);
        debug_assert_eq!(out.len() as u64, manifest.len);
        Ok((Bytes::from(out), batch))
    }

    /// Deletes a file; chunks whose last reference this was are removed
    /// from the cloud too (garbage collection by refcount).
    pub fn delete_file(&mut self, path: &str) -> SchemeResult<BatchReport> {
        let (_, fps) = self.manifests.remove(path).ok_or_else(|| SchemeError::DataUnavailable {
            path: path.to_string(),
            detail: "not stored through this dedup client".to_string(),
        })?;
        let mut batch = self.inner.delete_file(&Self::manifest_path(path))?;
        for fp in fps {
            if let Some(object) = self.index.release(&fp) {
                let b = self.inner.delete_file(&object)?;
                batch = batch.alongside(b);
            }
        }
        Ok(batch)
    }

    /// Logical size of a stored file.
    pub fn file_size(&self, path: &str) -> Option<u64> {
        self.manifests.get(path).map(|(m, _)| m.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HyrdConfig;
    use crate::dispatcher::Hyrd;
    use hyrd_cloudsim::{Fleet, SimClock};

    fn store() -> (Fleet, DedupStore<Hyrd>) {
        let fleet = Fleet::standard_four(SimClock::new());
        let hyrd = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid default config");
        (fleet, DedupStore::new(hyrd))
    }

    fn content(len: usize, seed: u64) -> Vec<u8> {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn roundtrip_random_content() {
        let (_, mut d) = store();
        let data = content(300_000, 1);
        d.write_file("/f", &data).expect("fleet up");
        let (bytes, _) = d.read_file("/f").expect("just wrote");
        assert_eq!(&bytes[..], &data[..]);
        assert_eq!(d.file_size("/f"), Some(300_000));
    }

    #[test]
    fn identical_file_transfers_almost_nothing() {
        let (_, mut d) = store();
        let data = content(500_000, 2);
        d.write_file("/a", &data).expect("fleet up");
        let after_first = d.stats().transferred_bytes;
        d.write_file("/b", &data).expect("fleet up");
        let second_cost = d.stats().transferred_bytes - after_first;
        // Only the manifest travels for the duplicate file.
        assert!(second_cost < 20_000, "duplicate file moved {second_cost} bytes over the network");
        assert!(d.stats().dedup_ratio() > 1.9, "ratio {}", d.stats().dedup_ratio());

        // Both files read correctly.
        let (a, _) = d.read_file("/a").expect("present");
        let (b, _) = d.read_file("/b").expect("present");
        assert_eq!(a, b);
    }

    #[test]
    fn shared_region_dedups_across_different_files() {
        let (_, mut d) = store();
        let shared = content(400_000, 3);
        let mut a = content(20_000, 4);
        a.extend_from_slice(&shared);
        let mut b = content(35_000, 5);
        b.extend_from_slice(&shared);

        d.write_file("/a", &a).expect("fleet up");
        let after_a = d.stats().transferred_bytes;
        d.write_file("/b", &b).expect("fleet up");
        let b_cost = d.stats().transferred_bytes - after_a;
        assert!(
            (b_cost as f64) < 0.35 * b.len() as f64,
            "file b moved {b_cost} of {} bytes despite the shared region",
            b.len()
        );
        let (bb, _) = d.read_file("/b").expect("present");
        assert_eq!(&bb[..], &b[..]);
    }

    #[test]
    fn delete_garbage_collects_unreferenced_chunks_only() {
        let (fleet, mut d) = store();
        let data = content(200_000, 6);
        d.write_file("/a", &data).expect("fleet up");
        d.write_file("/b", &data).expect("fleet up");
        let unique = d.unique_chunks();
        assert!(unique > 0);

        // Deleting one reference keeps every chunk alive.
        d.delete_file("/a").expect("present");
        assert_eq!(d.unique_chunks(), unique);
        let (bytes, _) = d.read_file("/b").expect("survives");
        assert_eq!(&bytes[..], &data[..]);

        // Deleting the last reference frees the chunks in the cloud.
        let stored_before = fleet.total_stored_bytes();
        d.delete_file("/b").expect("present");
        assert_eq!(d.unique_chunks(), 0);
        assert!(fleet.total_stored_bytes() < stored_before);
        assert!(d.read_file("/b").is_err());
    }

    #[test]
    fn survives_an_outage_through_the_underlying_scheme() {
        let (fleet, mut d) = store();
        let data = content(250_000, 7);
        d.write_file("/f", &data).expect("fleet up");
        fleet.by_name("Aliyun").expect("standard fleet").force_down();
        let (bytes, _) = d.read_file("/f").expect("chunks are HyRD-redundant");
        assert_eq!(&bytes[..], &data[..]);
    }

    #[test]
    fn duplicate_write_is_rejected() {
        let (_, mut d) = store();
        d.write_file("/f", &content(1000, 8)).expect("fleet up");
        assert!(d.write_file("/f", &content(1000, 9)).is_err());
    }

    #[test]
    fn index_memory_is_reported() {
        let (_, mut d) = store();
        d.write_file("/f", &content(300_000, 10)).expect("fleet up");
        let per_chunk = d.index_memory_bytes() as f64 / d.unique_chunks() as f64;
        // Digest + entry + name: order 100 bytes per chunk — the §VI
        // client-memory cost, quantified.
        assert!(per_chunk > 32.0 && per_chunk < 400.0, "{per_chunk}");
    }
}
