//! Workload replay: runs an [`FsOp`] stream through any [`Scheme`] and
//! collects the latency statistics the figures report.
//!
//! The driver owns content synthesis (deterministic per path/version fill
//! patterns) so reads can optionally be verified end-to-end, and advances
//! the shared virtual clock by each request's latency — which is what
//! makes scheduled outage windows actually open and close during a replay.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use hyrd_cloudsim::SimClock;
use hyrd_telemetry::Collector;
use hyrd_workloads::FsOp;

use crate::scheme::Scheme;
use crate::stats::{LatencyStats, OpClass};

pub mod multi_client;
pub mod openloop;

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Verify read contents against the driver's expected bytes. Costs
    /// memory proportional to the live file set — use in tests, not in
    /// ghost-mode benches.
    pub verify_reads: bool,
    /// Advance the fleet clock by each request's latency.
    pub advance_clock: bool,
    /// Small/large boundary used for *reporting* (class breakdown).
    pub stats_threshold: u64,
    /// Trace collector: each replayed request emits a `replay.op` event
    /// (class, latency, provider ops) and bumps per-class counters.
    /// Disabled by default.
    pub telemetry: Collector,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            verify_reads: false,
            advance_clock: true,
            stats_threshold: 1024 * 1024,
            telemetry: Collector::disabled(),
        }
    }
}

/// What a replay produced. `PartialEq` + serde make sweep determinism
/// checkable: same seed, same stats, any `--jobs`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayStats {
    /// Scheme name.
    pub scheme: String,
    /// Latency per op class.
    pub per_class: BTreeMap<String, LatencyStats>,
    /// All requests combined.
    pub overall: LatencyStats,
    /// Requests that failed (e.g. data unavailable during an outage).
    pub errors: u64,
    /// Underlying provider operations issued.
    pub provider_ops: u64,
    /// Bytes uploaded to providers.
    pub bytes_in: u64,
    /// Bytes downloaded from providers.
    pub bytes_out: u64,
    /// Read verification failures (only counted when verification is on).
    pub verify_failures: u64,
}

impl ReplayStats {
    /// Stats for one class (empty stats if the class never occurred).
    pub fn class(&self, class: OpClass) -> LatencyStats {
        self.per_class.get(&class.to_string()).cloned().unwrap_or_default()
    }

    /// Mean latency across all requests.
    pub fn mean_latency(&self) -> std::time::Duration {
        self.overall.mean()
    }

    /// Folds another replay's tallies into this one — used by phased
    /// drivers (chaos drill chunks, multi-client batches) to keep one
    /// cumulative view. Latency digests merge exactly (running sums +
    /// bucket adds); `scheme` is adopted from `other` if unset.
    pub fn absorb(&mut self, other: &ReplayStats) {
        if self.scheme.is_empty() {
            self.scheme = other.scheme.clone();
        }
        self.overall.merge(&other.overall);
        for (class, stats) in &other.per_class {
            self.per_class.entry(class.clone()).or_default().merge(stats);
        }
        self.errors += other.errors;
        self.provider_ops += other.provider_ops;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.verify_failures += other.verify_failures;
    }

    /// A human-readable summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "scheme: {}", self.scheme).unwrap();
        writeln!(
            out,
            "  overall: n={} mean={:.3}s p50={:.3}s p95={:.3}s p99={:.3}s p999={:.3}s errors={}",
            self.overall.count(),
            self.overall.mean().as_secs_f64(),
            self.overall.quantile(0.5).as_secs_f64(),
            self.overall.quantile(0.95).as_secs_f64(),
            self.overall.quantile(0.99).as_secs_f64(),
            self.overall.quantile(0.999).as_secs_f64(),
            self.errors
        )
        .unwrap();
        for (class, stats) in &self.per_class {
            if stats.count() > 0 {
                writeln!(
                    out,
                    "  {class:<12} n={:<6} mean={:.3}s",
                    stats.count(),
                    stats.mean().as_secs_f64()
                )
                .unwrap();
            }
        }
        writeln!(
            out,
            "  provider ops={} in={:.1}MB out={:.1}MB",
            self.provider_ops,
            self.bytes_in as f64 / 1e6,
            self.bytes_out as f64 / 1e6
        )
        .unwrap();
        out
    }
}

/// Deterministic fill byte for a path + version.
fn fill_byte(path: &str, version: u32) -> u8 {
    let mut h: u32 = 2166136261;
    for b in path.bytes() {
        h = (h ^ b as u32).wrapping_mul(16777619);
    }
    (h ^ version.wrapping_mul(0x9E37)) as u8
}

/// Synthesizes `len` content bytes for a path at a version.
pub fn synth_content(path: &str, version: u32, len: usize) -> Vec<u8> {
    vec![fill_byte(path, version); len]
}

/// Reusable scratch buffer for content synthesis: the replay loop fills
/// it in place instead of allocating a fresh `Vec` per op (the per-op
/// allocation that dominated steady-state replay profiles).
#[derive(Debug, Default)]
pub struct SynthBuf {
    buf: Vec<u8>,
}

impl SynthBuf {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        SynthBuf::default()
    }

    /// Fills the buffer with the deterministic content for
    /// `path`/`version` and returns it — same bytes as
    /// [`synth_content`], no allocation once the buffer has grown to the
    /// workload's largest op.
    pub fn fill(&mut self, path: &str, version: u32, len: usize) -> &[u8] {
        let byte = fill_byte(path, version);
        self.buf.clear();
        self.buf.resize(len, byte);
        &self.buf
    }
}

/// Driver state that must persist across phased replays (pool
/// initialization, then transactions): the live-file table and, when
/// verification is on, the expected contents.
#[derive(Debug, Default)]
pub struct ReplayState {
    files: HashMap<String, (u64, u32)>,
    expected: HashMap<String, Vec<u8>>,
}

impl ReplayState {
    /// Paths with verified expected contents, sorted (deterministic
    /// iteration for final verification sweeps).
    pub fn expected_paths(&self) -> Vec<&str> {
        let mut paths: Vec<&str> = self.expected.keys().map(String::as_str).collect();
        paths.sort_unstable();
        paths
    }

    /// The bytes a verified replay expects `path` to hold right now.
    pub fn expected_content(&self, path: &str) -> Option<&[u8]> {
        self.expected.get(path).map(Vec::as_slice)
    }

    /// Live files the replay has created and not deleted.
    pub fn live_files(&self) -> usize {
        self.files.len()
    }
}

/// Replays `ops` through `scheme` with fresh state.
pub fn replay(
    scheme: &mut dyn Scheme,
    ops: &[FsOp],
    clock: &SimClock,
    opts: &ReplayOptions,
) -> ReplayStats {
    let mut state = ReplayState::default();
    replay_with_state(scheme, ops, clock, opts, &mut state)
}

/// What [`exec_one`] observed for a successfully executed op.
pub(crate) struct ExecOk {
    pub(crate) class: OpClass,
    pub(crate) batch: hyrd_gcsapi::BatchReport,
    pub(crate) verify_failure: bool,
}

/// Executes one [`FsOp`] against `scheme`, maintaining the live-file /
/// expected-content tables. This is the single op-semantics kernel shared
/// by [`replay_with_state`] and the [`multi_client`] engine, so both
/// agree byte-for-byte on classification, verification and bookkeeping.
/// `Err(())` means the scheme refused the op (the caller counts it).
pub(crate) fn exec_one(
    scheme: &mut dyn Scheme,
    op: &FsOp,
    state: &mut ReplayState,
    synth: &mut SynthBuf,
    opts: &ReplayOptions,
) -> Result<ExecOk, ()> {
    let ReplayState { files, expected } = state;
    match op {
        FsOp::Create { path, size } => {
            let data = synth.fill(path, 0, *size as usize);
            let batch = scheme.create_file(path, data).map_err(|_| ())?;
            let class = if *size <= opts.stats_threshold {
                OpClass::SmallWrite
            } else {
                OpClass::LargeWrite
            };
            files.insert(path.clone(), (*size, 1));
            if opts.verify_reads {
                expected.insert(path.clone(), data.to_vec());
            }
            Ok(ExecOk { class, batch, verify_failure: false })
        }
        FsOp::Read { path } => {
            let size = files.get(path).map_or(0, |(s, _)| *s);
            let (bytes, batch) = scheme.read_file(path).map_err(|_| ())?;
            let class =
                if size <= opts.stats_threshold { OpClass::SmallRead } else { OpClass::LargeRead };
            let verify_failure = if opts.verify_reads {
                expected.get(path).is_some_and(|want| &bytes[..] != want.as_slice())
            } else {
                bytes.len() as u64 != size
            };
            Ok(ExecOk { class, batch, verify_failure })
        }
        FsOp::Update { path, offset, len } => {
            let version = files.get(path).map_or(1, |(_, v)| *v);
            let data = synth.fill(path, version, *len as usize);
            let batch = scheme.update_file(path, *offset, data).map_err(|_| ())?;
            if let Some((_, v)) = files.get_mut(path) {
                *v += 1;
            }
            if opts.verify_reads {
                if let Some(content) = expected.get_mut(path) {
                    let off = *offset as usize;
                    content[off..off + data.len()].copy_from_slice(data);
                }
            }
            Ok(ExecOk { class: OpClass::Update, batch, verify_failure: false })
        }
        FsOp::Delete { path } => {
            let batch = scheme.delete_file(path).map_err(|_| ())?;
            files.remove(path);
            expected.remove(path);
            Ok(ExecOk { class: OpClass::Delete, batch, verify_failure: false })
        }
        FsOp::ListDir { path } => {
            let (_, batch) = scheme.list_dir(path).map_err(|_| ())?;
            Ok(ExecOk { class: OpClass::Metadata, batch, verify_failure: false })
        }
    }
}

/// Folds one executed op into `stats` and emits the `replay.op`
/// telemetry — everything [`replay_with_state`]'s record step does
/// *except* advancing the clock, which stays at the call site (the
/// multi-client engine interleaves session bookkeeping between the two).
pub(crate) fn record_into(
    stats: &mut ReplayStats,
    class: OpClass,
    batch: &hyrd_gcsapi::BatchReport,
    opts: &ReplayOptions,
) {
    stats.overall.record(batch.latency);
    stats.per_class.entry(class.to_string()).or_default().record(batch.latency);
    stats.provider_ops += batch.op_count() as u64;
    stats.bytes_in += batch.bytes_in();
    stats.bytes_out += batch.bytes_out();
    if opts.telemetry.enabled() {
        let class = class.to_string();
        opts.telemetry
            .event("replay.op")
            .field("class", class.as_str())
            .field("latency_ns", batch.latency.as_nanos() as u64)
            .field("provider_ops", batch.op_count() as u64)
            .emit();
        opts.telemetry.inc_labeled("replay.ops", &class, 1);
        opts.telemetry.observe_labeled(
            "replay.latency_ns",
            &class,
            batch.latency.as_nanos() as u64,
        );
    }
}

/// Folds one refused op into `stats` and emits the `replay.error` trace
/// event (op kind + path). Successful requests mark `replay.op`; these
/// mark the failures, which is what lets the observatory measure
/// empirical per-request availability straight from the trace.
pub(crate) fn record_error(stats: &mut ReplayStats, op: &FsOp, opts: &ReplayOptions) {
    stats.errors += 1;
    if opts.telemetry.enabled() {
        let (kind, path) = match op {
            FsOp::Create { path, .. } => ("create", path),
            FsOp::Read { path } => ("read", path),
            FsOp::Update { path, .. } => ("update", path),
            FsOp::Delete { path } => ("delete", path),
            FsOp::ListDir { path } => ("listdir", path),
        };
        opts.telemetry.event("replay.error").field("op", kind).field("path", path.as_str()).emit();
        opts.telemetry.inc_labeled("replay.errors", kind, 1);
    }
}

/// Replays `ops` through `scheme`, carrying `state` across calls —
/// use this when splitting a workload into phases (e.g. Figure 6's
/// pool-load in the normal state, transactions during the outage).
pub fn replay_with_state(
    scheme: &mut dyn Scheme,
    ops: &[FsOp],
    clock: &SimClock,
    opts: &ReplayOptions,
    state: &mut ReplayState,
) -> ReplayStats {
    let mut stats = ReplayStats { scheme: scheme.name().to_string(), ..Default::default() };
    let mut synth = SynthBuf::new();
    for op in ops {
        match exec_one(scheme, op, state, &mut synth, opts) {
            Ok(done) => {
                record_into(&mut stats, done.class, &done.batch, opts);
                if done.verify_failure {
                    stats.verify_failures += 1;
                }
                if opts.advance_clock {
                    clock.advance(done.batch.latency);
                }
            }
            Err(()) => record_error(&mut stats, op, opts),
        }
    }
    stats
}

/// Resolves a `--jobs` request: `0` means "one worker per core".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Runs independent sweep cells on `jobs` worker threads and collects
/// their results **in cell order**.
///
/// Each cell must own everything it touches (fleet, clock, collector —
/// the standing pattern in `fig6::run_scheme` and `chaos_drill`), which
/// is what makes the sweep deterministic: cells never share mutable
/// state, workers only race for *which* cell to run next, and results
/// land in slots indexed by cell position. The output is therefore
/// byte-identical for any job count, including `jobs == 1` (which runs
/// inline on the caller's thread, no spawning).
///
/// `jobs == 0` uses one worker per available core.
pub fn replay_sweep<T, F>(cells: Vec<F>, jobs: usize) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let jobs = effective_jobs(jobs).min(cells.len().max(1));
    if jobs <= 1 {
        return cells.into_iter().map(|cell| cell()).collect();
    }

    let queue: Vec<Mutex<Option<F>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<T>>> = queue.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queue.len() {
                    break;
                }
                let cell = queue[i]
                    .lock()
                    .expect("no panics while holding a cell")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = cell();
                *slots[i].lock().expect("no panics while holding a slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers have exited")
                .expect("every claimed cell stored its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_differ_by_path_and_version() {
        assert_eq!(fill_byte("/a", 0), fill_byte("/a", 0));
        assert_ne!(fill_byte("/a", 0), fill_byte("/a", 1));
        assert_ne!(fill_byte("/a", 0), fill_byte("/b", 0));
        assert_eq!(synth_content("/x", 2, 5).len(), 5);
    }

    #[test]
    fn replay_options_default_matches_paper_threshold() {
        let o = ReplayOptions::default();
        assert_eq!(o.stats_threshold, 1024 * 1024);
        assert!(o.advance_clock);
        assert!(!o.verify_reads);
    }

    #[test]
    fn synth_buf_matches_synth_content_and_reuses_storage() {
        let mut s = SynthBuf::new();
        assert_eq!(s.fill("/a", 0, 100), &synth_content("/a", 0, 100)[..]);
        assert_eq!(s.fill("/b", 3, 10), &synth_content("/b", 3, 10)[..]);
        // Shrinking then regrowing stays within the grown capacity.
        let cap = s.buf.capacity();
        s.fill("/c", 1, 50);
        assert_eq!(s.buf.capacity(), cap);
        assert_eq!(s.fill("/a", 0, 0), &[] as &[u8]);
    }

    #[test]
    fn replay_sweep_collects_in_cell_order_for_any_job_count() {
        let make_cells = || -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
            (0..13u64)
                .map(|i| {
                    Box::new(move || {
                        // Unequal cell durations exercise out-of-order
                        // completion.
                        let mut acc = i;
                        for _ in 0..((13 - i) * 1000) {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        std::hint::black_box(acc);
                        i * i
                    }) as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect()
        };
        let want: Vec<u64> = (0..13u64).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(replay_sweep(make_cells(), jobs), want, "jobs={jobs}");
        }
        assert_eq!(replay_sweep(make_cells(), 0), want, "jobs=0 (auto)");
        assert_eq!(replay_sweep(Vec::<Box<dyn FnOnce() -> u64 + Send>>::new(), 4), vec![]);
    }

    #[test]
    fn effective_jobs_resolves_auto() {
        assert_eq!(effective_jobs(3), 3);
        assert!(effective_jobs(0) >= 1);
    }
}
