//! Workload replay: runs an [`FsOp`] stream through any [`Scheme`] and
//! collects the latency statistics the figures report.
//!
//! The driver owns content synthesis (deterministic per path/version fill
//! patterns) so reads can optionally be verified end-to-end, and advances
//! the shared virtual clock by each request's latency — which is what
//! makes scheduled outage windows actually open and close during a replay.

use std::collections::{BTreeMap, HashMap};

use hyrd_cloudsim::SimClock;
use hyrd_telemetry::Collector;
use hyrd_workloads::FsOp;

use crate::scheme::Scheme;
use crate::stats::{LatencyStats, OpClass};

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Verify read contents against the driver's expected bytes. Costs
    /// memory proportional to the live file set — use in tests, not in
    /// ghost-mode benches.
    pub verify_reads: bool,
    /// Advance the fleet clock by each request's latency.
    pub advance_clock: bool,
    /// Small/large boundary used for *reporting* (class breakdown).
    pub stats_threshold: u64,
    /// Trace collector: each replayed request emits a `replay.op` event
    /// (class, latency, provider ops) and bumps per-class counters.
    /// Disabled by default.
    pub telemetry: Collector,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            verify_reads: false,
            advance_clock: true,
            stats_threshold: 1024 * 1024,
            telemetry: Collector::disabled(),
        }
    }
}

/// What a replay produced.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Scheme name.
    pub scheme: String,
    /// Latency per op class.
    pub per_class: BTreeMap<String, LatencyStats>,
    /// All requests combined.
    pub overall: LatencyStats,
    /// Requests that failed (e.g. data unavailable during an outage).
    pub errors: u64,
    /// Underlying provider operations issued.
    pub provider_ops: u64,
    /// Bytes uploaded to providers.
    pub bytes_in: u64,
    /// Bytes downloaded from providers.
    pub bytes_out: u64,
    /// Read verification failures (only counted when verification is on).
    pub verify_failures: u64,
}

impl ReplayStats {
    /// Stats for one class (empty stats if the class never occurred).
    pub fn class(&self, class: OpClass) -> LatencyStats {
        self.per_class.get(&class.to_string()).cloned().unwrap_or_default()
    }

    /// Mean latency across all requests.
    pub fn mean_latency(&self) -> std::time::Duration {
        self.overall.mean()
    }

    /// A human-readable summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "scheme: {}", self.scheme).unwrap();
        writeln!(
            out,
            "  overall: n={} mean={:.3}s p95={:.3}s errors={}",
            self.overall.count(),
            self.overall.mean().as_secs_f64(),
            self.overall.quantile(0.95).as_secs_f64(),
            self.errors
        )
        .unwrap();
        for (class, stats) in &self.per_class {
            if stats.count() > 0 {
                writeln!(
                    out,
                    "  {class:<12} n={:<6} mean={:.3}s",
                    stats.count(),
                    stats.mean().as_secs_f64()
                )
                .unwrap();
            }
        }
        writeln!(
            out,
            "  provider ops={} in={:.1}MB out={:.1}MB",
            self.provider_ops,
            self.bytes_in as f64 / 1e6,
            self.bytes_out as f64 / 1e6
        )
        .unwrap();
        out
    }
}

/// Deterministic fill byte for a path + version.
fn fill_byte(path: &str, version: u32) -> u8 {
    let mut h: u32 = 2166136261;
    for b in path.bytes() {
        h = (h ^ b as u32).wrapping_mul(16777619);
    }
    (h ^ version.wrapping_mul(0x9E37)) as u8
}

/// Synthesizes `len` content bytes for a path at a version.
pub fn synth_content(path: &str, version: u32, len: usize) -> Vec<u8> {
    vec![fill_byte(path, version); len]
}

/// Driver state that must persist across phased replays (pool
/// initialization, then transactions): the live-file table and, when
/// verification is on, the expected contents.
#[derive(Debug, Default)]
pub struct ReplayState {
    files: HashMap<String, (u64, u32)>,
    expected: HashMap<String, Vec<u8>>,
}

impl ReplayState {
    /// Paths with verified expected contents, sorted (deterministic
    /// iteration for final verification sweeps).
    pub fn expected_paths(&self) -> Vec<&str> {
        let mut paths: Vec<&str> = self.expected.keys().map(String::as_str).collect();
        paths.sort_unstable();
        paths
    }

    /// The bytes a verified replay expects `path` to hold right now.
    pub fn expected_content(&self, path: &str) -> Option<&[u8]> {
        self.expected.get(path).map(Vec::as_slice)
    }

    /// Live files the replay has created and not deleted.
    pub fn live_files(&self) -> usize {
        self.files.len()
    }
}

/// Replays `ops` through `scheme` with fresh state.
pub fn replay(
    scheme: &mut dyn Scheme,
    ops: &[FsOp],
    clock: &SimClock,
    opts: &ReplayOptions,
) -> ReplayStats {
    let mut state = ReplayState::default();
    replay_with_state(scheme, ops, clock, opts, &mut state)
}

/// Replays `ops` through `scheme`, carrying `state` across calls —
/// use this when splitting a workload into phases (e.g. Figure 6's
/// pool-load in the normal state, transactions during the outage).
pub fn replay_with_state(
    scheme: &mut dyn Scheme,
    ops: &[FsOp],
    clock: &SimClock,
    opts: &ReplayOptions,
    state: &mut ReplayState,
) -> ReplayStats {
    let mut stats = ReplayStats { scheme: scheme.name().to_string(), ..Default::default() };
    let ReplayState { files, expected } = state;

    let record = |stats: &mut ReplayStats, class: OpClass, batch: &hyrd_gcsapi::BatchReport| {
        stats.overall.record(batch.latency);
        stats
            .per_class
            .entry(class.to_string())
            .or_default()
            .record(batch.latency);
        stats.provider_ops += batch.op_count() as u64;
        stats.bytes_in += batch.bytes_in();
        stats.bytes_out += batch.bytes_out();
        if opts.telemetry.enabled() {
            let class = class.to_string();
            opts.telemetry
                .event("replay.op")
                .field("class", class.as_str())
                .field("latency_ns", batch.latency.as_nanos() as u64)
                .field("provider_ops", batch.op_count() as u64)
                .emit();
            opts.telemetry.inc_labeled("replay.ops", &class, 1);
            opts.telemetry
                .observe_labeled("replay.latency_ns", &class, batch.latency.as_nanos() as u64);
        }
        if opts.advance_clock {
            clock.advance(batch.latency);
        }
    };

    for op in ops {
        match op {
            FsOp::Create { path, size } => {
                let data = synth_content(path, 0, *size as usize);
                match scheme.create_file(path, &data) {
                    Ok(batch) => {
                        let class = if *size <= opts.stats_threshold {
                            OpClass::SmallWrite
                        } else {
                            OpClass::LargeWrite
                        };
                        record(&mut stats, class, &batch);
                        files.insert(path.clone(), (*size, 1));
                        if opts.verify_reads {
                            expected.insert(path.clone(), data);
                        }
                    }
                    Err(_) => stats.errors += 1,
                }
            }
            FsOp::Read { path } => {
                let size = files.get(path).map_or(0, |(s, _)| *s);
                match scheme.read_file(path) {
                    Ok((bytes, batch)) => {
                        let class = if size <= opts.stats_threshold {
                            OpClass::SmallRead
                        } else {
                            OpClass::LargeRead
                        };
                        record(&mut stats, class, &batch);
                        if opts.verify_reads {
                            if let Some(want) = expected.get(path) {
                                if &bytes[..] != want.as_slice() {
                                    stats.verify_failures += 1;
                                }
                            }
                        } else if bytes.len() as u64 != size {
                            stats.verify_failures += 1;
                        }
                    }
                    Err(_) => stats.errors += 1,
                }
            }
            FsOp::Update { path, offset, len } => {
                let version = files.get(path).map_or(1, |(_, v)| *v);
                let data = synth_content(path, version, *len as usize);
                match scheme.update_file(path, *offset, &data) {
                    Ok(batch) => {
                        record(&mut stats, OpClass::Update, &batch);
                        if let Some((_, v)) = files.get_mut(path) {
                            *v += 1;
                        }
                        if opts.verify_reads {
                            if let Some(content) = expected.get_mut(path) {
                                let off = *offset as usize;
                                content[off..off + data.len()].copy_from_slice(&data);
                            }
                        }
                    }
                    Err(_) => stats.errors += 1,
                }
            }
            FsOp::Delete { path } => match scheme.delete_file(path) {
                Ok(batch) => {
                    record(&mut stats, OpClass::Delete, &batch);
                    files.remove(path);
                    expected.remove(path);
                }
                Err(_) => stats.errors += 1,
            },
            FsOp::ListDir { path } => match scheme.list_dir(path) {
                Ok((_, batch)) => record(&mut stats, OpClass::Metadata, &batch),
                Err(_) => stats.errors += 1,
            },
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_differ_by_path_and_version() {
        assert_eq!(fill_byte("/a", 0), fill_byte("/a", 0));
        assert_ne!(fill_byte("/a", 0), fill_byte("/a", 1));
        assert_ne!(fill_byte("/a", 0), fill_byte("/b", 0));
        assert_eq!(synth_content("/x", 2, 5).len(), 5);
    }

    #[test]
    fn replay_options_default_matches_paper_threshold() {
        let o = ReplayOptions::default();
        assert_eq!(o.stats_threshold, 1024 * 1024);
        assert!(o.advance_clock);
        assert!(!o.verify_reads);
    }
}
