//! The discrete-event fan-out engine behind every dispatcher read.
//!
//! Pre-engine, a read was a run-to-completion loop: fetch a candidate,
//! inspect, move on. That shape cannot express *concurrent in-flight
//! operations* — a hedged read that launches a redundant fetch while the
//! first is still running — so this module replaces it with an explicit
//! event schedule on the virtual clock:
//!
//! * every launched fetch becomes a [`Flight`] that **posts its
//!   completion time** (queue admission via the provider's
//!   [`hyrd_cloudsim::ProviderQueue`], so concurrency limits and
//!   queueing delay are part of the schedule),
//! * the engine always **advances to the earliest completion** (ties
//!   broken by launch order — fully deterministic),
//! * a **hedge timer** at `t0 + delay` launches up to `extra` redundant
//!   fetches if fewer than `need` flights have completed by then
//!   ("The Tail at Scale" §Hedged requests; the k-out-of-n fork-join
//!   analysis of "On the Service Capacity Region of Accessing Erasure
//!   Coded Content" motivates why redundant fragment reads cut the
//!   tail),
//! * the first `need` completions win; **stragglers are cancelled** at
//!   the finish time, billing zero payload bytes and only their elapsed
//!   in-flight latency (the provider credits the rest back).
//!
//! The engine never advances the global [`hyrd_cloudsim::SimClock`]: it
//! works in absolute nanoseconds relative to the read's start and hands
//! the composed timeline back as a [`BatchReport`]. That keeps the
//! closed-loop replay contract (the *driver* advances the clock) and the
//! multi-client determinism proof untouched. With hedging disabled and
//! idle queues the schedule degenerates exactly to the old semantics:
//! one required flight per needed payload, failover at the failure's
//! virtual time, serial corrupt re-fetches — byte-identical traces.
//!
//! The dispatcher supplies the cloud-touching side through
//! [`FanoutDriver`]; the engine owns only time.

use std::time::Duration;

use bytes::Bytes;
use hyrd_cloudsim::Admission;
use hyrd_gcsapi::{BatchReport, OpReport};

pub use crate::config::HedgeConfig;

/// Why a candidate is being launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchKind {
    /// Part of the minimum set (or a failover replacement for one).
    /// These may take extraordinary measures — e.g. force a suspect
    /// circuit breaker closed — because the read fails without them.
    Required,
    /// A redundant request fired by the hedge timer. Purely
    /// opportunistic: it must not disturb breaker state, so suspect
    /// candidates are skipped instead of reset.
    Hedge,
}

/// Outcome of one synchronous fetch attempt against a candidate.
pub enum Attempt {
    /// Verified payload; `report.latency` is the service time the
    /// latency model charged.
    Done {
        /// The provider's op report.
        report: OpReport,
        /// The fetched object bytes.
        payload: Bytes,
    },
    /// Payload failed its integrity check. The transfer still consumed
    /// time and bytes (the report bills in full); the engine grants one
    /// serial re-fetch before failing the candidate over.
    Corrupt {
        /// The provider's op report for the corrupt transfer.
        report: OpReport,
    },
    /// Provider error (outage, fault burst, breaker rejection). Costs
    /// zero virtual time: failover launches the next candidate at the
    /// same instant.
    Failed,
}

/// The cloud-touching half of a fan-out read. The dispatcher implements
/// this over its candidate list; the engine calls back in a fixed,
/// deterministic order.
pub trait FanoutDriver {
    /// Number of ranked candidates.
    fn candidates(&self) -> usize;

    /// Admission gate run immediately before launching candidate `idx`.
    /// Returning `false` skips the candidate (hedges decline
    /// breaker-suspect providers); `Required` launches prepare the
    /// candidate instead (forcing breakers closed) and return `true`.
    fn prepare(&mut self, idx: usize, kind: LaunchKind) -> bool;

    /// One fetch attempt against candidate `idx`.
    fn attempt(&mut self, idx: usize) -> Attempt;

    /// Admits an attempt needing `service_ns` to candidate `idx`'s
    /// provider queue at virtual time `now_ns`.
    fn enqueue(&mut self, idx: usize, now_ns: u64, service_ns: u64) -> Admission;

    /// Frees the queue slot of a cancelled flight that had committed
    /// until `done_ns`; it frees at `free_at_ns` instead.
    fn release(&mut self, idx: usize, done_ns: u64, free_at_ns: u64);

    /// A straggler was cancelled after `billed` of its service time.
    /// The driver credits the unused remainder back to the provider.
    fn cancelled(&mut self, idx: usize, report: &OpReport, billed: Duration);
}

/// One completed-fetch-in-flight: the payload is already in hand (the
/// simulation resolves transfers synchronously), but on the virtual
/// timeline it is still streaming until `done_ns`.
struct Flight {
    candidate: usize,
    /// Launch order — the deterministic tie-breaker.
    seq: u64,
    hedged: bool,
    /// When the op began service (post queueing).
    start_ns: u64,
    /// When the op completes on the virtual timeline.
    done_ns: u64,
    report: OpReport,
    payload: Bytes,
}

/// A winning fetch, in completion order.
pub struct Winner {
    /// Index into the driver's candidate list.
    pub candidate: usize,
    /// The verified payload.
    pub payload: Bytes,
    /// Whether a hedge (not a required launch) delivered it.
    pub hedged: bool,
}

/// Hedging telemetry for one fan-out read.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HedgeStats {
    /// Redundant requests launched by the hedge timer.
    pub fired: u64,
    /// Hedges that finished among the first `need` completions.
    pub won: u64,
    /// Stragglers cancelled once `need` completions were in.
    pub cancelled: u64,
    /// Total queueing delay (ns) suffered across all admitted attempts.
    pub queue_delay_ns: u64,
}

/// The composed result of a fan-out read.
pub struct FanoutOutcome {
    /// The first `need` verified payloads, in completion order.
    pub winners: Vec<Winner>,
    /// The whole timeline as one batch: `latency` = finish − start,
    /// `ops` = every attempt (corrupt transfers bill in full, cancelled
    /// stragglers bill zero bytes and their in-flight time only).
    pub report: BatchReport,
    /// Hedge counters for this read.
    pub hedges: HedgeStats,
}

/// Result of walking the candidate list for one launch slot.
enum Launched {
    Flight(Flight),
    /// Every remaining candidate was exhausted; `at_ns` is the virtual
    /// time the last failure was known (corrupt chains consume time).
    Exhausted,
}

/// Launches the next viable candidate for one slot at `at_ns`: walks the
/// candidate list from `*next`, giving each candidate up to two attempts
/// (wire corruption is per-attempt; a second mismatch means the stored
/// copy is bad). Candidate failures cost zero time; corrupt transfers
/// serialize the re-fetch behind them.
#[allow(clippy::too_many_arguments)]
fn launch_next(
    driver: &mut dyn FanoutDriver,
    next: &mut usize,
    seq: &mut u64,
    mut at_ns: u64,
    kind: LaunchKind,
    hedged: bool,
    ops: &mut Vec<OpReport>,
    stats: &mut HedgeStats,
) -> Launched {
    let total = driver.candidates();
    while *next < total {
        let idx = *next;
        *next += 1;
        if !driver.prepare(idx, kind) {
            continue;
        }
        let mut attempts = 0;
        while attempts < 2 {
            attempts += 1;
            match driver.attempt(idx) {
                Attempt::Failed => break, // zero-time failover to the next candidate
                Attempt::Corrupt { report } => {
                    let adm = driver.enqueue(idx, at_ns, report.latency.as_nanos() as u64);
                    stats.queue_delay_ns += adm.queue_ns(at_ns);
                    ops.push(report);
                    // The re-fetch (or the failover, if this was the
                    // second mismatch) starts when the bad transfer ends.
                    at_ns = adm.done_ns;
                }
                Attempt::Done { report, payload } => {
                    let adm = driver.enqueue(idx, at_ns, report.latency.as_nanos() as u64);
                    stats.queue_delay_ns += adm.queue_ns(at_ns);
                    let flight = Flight {
                        candidate: idx,
                        seq: *seq,
                        hedged,
                        start_ns: adm.start_ns,
                        done_ns: adm.done_ns,
                        report,
                        payload,
                    };
                    *seq += 1;
                    return Launched::Flight(flight);
                }
            }
        }
    }
    Launched::Exhausted
}

/// Runs one fan-out read to completion: `need` verified payloads out of
/// the driver's ranked candidates, hedging per `hedge`, starting at
/// virtual time `t0`. Returns `None` when the candidates cannot supply
/// `need` payloads (the caller owns the error story).
pub fn fanout_read(
    driver: &mut dyn FanoutDriver,
    need: usize,
    hedge: &HedgeConfig,
    t0: Duration,
) -> Option<FanoutOutcome> {
    let t0_ns = t0.as_nanos() as u64;
    let mut next = 0usize;
    let mut seq = 0u64;
    let mut active: Vec<Flight> = Vec::new();
    let mut winners: Vec<Winner> = Vec::new();
    let mut ops: Vec<OpReport> = Vec::new();
    let mut stats = HedgeStats::default();

    if need == 0 {
        return Some(FanoutOutcome {
            winners,
            report: BatchReport { latency: Duration::ZERO, ops },
            hedges: stats,
        });
    }

    // Initial wave: one required flight per needed payload, all issued
    // at t0. Each slot independently fails over through the shared
    // candidate list until it holds a flight or the list runs dry.
    for _ in 0..need {
        match launch_next(
            driver,
            &mut next,
            &mut seq,
            t0_ns,
            LaunchKind::Required,
            false,
            &mut ops,
            &mut stats,
        ) {
            Launched::Flight(f) => active.push(f),
            Launched::Exhausted => return None,
        }
    }

    let mut hedges_left = if hedge.enabled { hedge.extra } else { 0 };
    let hedge_at_ns = t0_ns.saturating_add(hedge.delay.as_nanos() as u64);
    let mut finish_ns = t0_ns;

    while winners.len() < need {
        // The engine's one rule: advance to the earliest posted event.
        let next_done = active
            .iter()
            .map(|f| (f.done_ns, f.seq))
            .min()
            .expect("initial wave filled `need` flights");
        if hedges_left > 0 && next < driver.candidates() && hedge_at_ns < next_done.0 {
            // Deadline passed with the read still incomplete: launch the
            // redundant wave. The timer fires once; extras that find no
            // viable candidate lapse.
            while hedges_left > 0 && next < driver.candidates() {
                match launch_next(
                    driver,
                    &mut next,
                    &mut seq,
                    hedge_at_ns,
                    LaunchKind::Hedge,
                    true,
                    &mut ops,
                    &mut stats,
                ) {
                    Launched::Flight(f) => {
                        active.push(f);
                        stats.fired += 1;
                        hedges_left -= 1;
                    }
                    Launched::Exhausted => break,
                }
            }
            hedges_left = 0;
            continue;
        }
        let pos = active
            .iter()
            .position(|f| (f.done_ns, f.seq) == next_done)
            .expect("min came from this list");
        let f = active.swap_remove(pos);
        finish_ns = f.done_ns;
        if f.hedged {
            stats.won += 1;
        }
        ops.push(f.report);
        winners.push(Winner { candidate: f.candidate, payload: f.payload, hedged: f.hedged });
    }

    // Cancel the stragglers at the finish line: free their queue slots,
    // credit the provider, and bill only time-in-flight with zero bytes.
    active.sort_by_key(|f| f.seq);
    for f in active {
        driver.release(f.candidate, f.done_ns, finish_ns.max(f.start_ns));
        let billed = Duration::from_nanos(finish_ns.saturating_sub(f.start_ns));
        driver.cancelled(f.candidate, &f.report, billed);
        let mut r = f.report;
        r.bytes_out = 0;
        r.bytes_in = 0;
        r.latency = billed;
        ops.push(r);
        stats.cancelled += 1;
    }

    let latency = Duration::from_nanos(finish_ns.saturating_sub(t0_ns));
    Some(FanoutOutcome { winners, report: BatchReport { latency, ops }, hedges: stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrd_cloudsim::ProviderQueue;
    use hyrd_gcsapi::{OpKind, ProviderId};

    /// Scripted driver: per-candidate attempt outcomes and service
    /// times, one single-slot-or-wider queue per candidate.
    struct Script {
        /// Per candidate: queued attempt outcomes (front first).
        outcomes: Vec<Vec<ScriptAttempt>>,
        queues: Vec<ProviderQueue>,
        cancelled: Vec<(usize, u64, u64)>, // (candidate, credited bytes, billed ns)
        hedge_skips: Vec<usize>,
    }

    #[derive(Clone, Copy)]
    enum ScriptAttempt {
        Ok { service_ms: u64, bytes: u64 },
        Corrupt { service_ms: u64, bytes: u64 },
        Err,
    }

    impl Script {
        fn new(outcomes: Vec<Vec<ScriptAttempt>>) -> Self {
            let queues = (0..outcomes.len()).map(|_| ProviderQueue::new(1)).collect();
            Script { outcomes, queues, cancelled: Vec::new(), hedge_skips: Vec::new() }
        }

        fn report(c: usize, service_ms: u64, bytes: u64) -> OpReport {
            OpReport {
                provider: ProviderId(c as u16),
                kind: OpKind::Get,
                latency: Duration::from_millis(service_ms),
                bytes_in: 0,
                bytes_out: bytes,
            }
        }
    }

    impl FanoutDriver for Script {
        fn candidates(&self) -> usize {
            self.outcomes.len()
        }

        fn prepare(&mut self, idx: usize, kind: LaunchKind) -> bool {
            kind == LaunchKind::Required || !self.hedge_skips.contains(&idx)
        }

        fn attempt(&mut self, idx: usize) -> Attempt {
            match self.outcomes[idx].remove(0) {
                ScriptAttempt::Ok { service_ms, bytes } => Attempt::Done {
                    report: Self::report(idx, service_ms, bytes),
                    payload: Bytes::from(vec![idx as u8; 4]),
                },
                ScriptAttempt::Corrupt { service_ms, bytes } => {
                    Attempt::Corrupt { report: Self::report(idx, service_ms, bytes) }
                }
                ScriptAttempt::Err => Attempt::Failed,
            }
        }

        fn enqueue(&mut self, idx: usize, now_ns: u64, service_ns: u64) -> Admission {
            self.queues[idx].admit(now_ns, service_ns)
        }

        fn release(&mut self, idx: usize, done_ns: u64, free_at_ns: u64) {
            self.queues[idx].release_early(done_ns, free_at_ns);
        }

        fn cancelled(&mut self, idx: usize, report: &OpReport, billed: Duration) {
            self.cancelled.push((idx, report.bytes_out, billed.as_nanos() as u64));
        }
    }

    const MS: u64 = 1_000_000;

    fn ok(ms: u64) -> ScriptAttempt {
        ScriptAttempt::Ok { service_ms: ms, bytes: 100 }
    }

    fn off() -> HedgeConfig {
        HedgeConfig { enabled: false, ..HedgeConfig::default() }
    }

    fn on(delay_ms: u64, extra: usize) -> HedgeConfig {
        HedgeConfig { enabled: true, delay: Duration::from_millis(delay_ms), extra }
    }

    #[test]
    fn unhedged_k_of_n_is_max_of_the_first_k() {
        let mut d = Script::new(vec![vec![ok(30)], vec![ok(10)], vec![ok(20)], vec![ok(5)]]);
        let out = fanout_read(&mut d, 3, &off(), Duration::ZERO).unwrap();
        assert_eq!(out.report.latency, Duration::from_millis(30));
        // Completion order, not launch order.
        let order: Vec<usize> = out.winners.iter().map(|w| w.candidate).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(out.hedges, HedgeStats::default());
        assert_eq!(out.report.op_count(), 3);
    }

    #[test]
    fn failover_costs_zero_time() {
        let mut d = Script::new(vec![vec![ScriptAttempt::Err], vec![ok(10)]]);
        let out = fanout_read(&mut d, 1, &off(), Duration::ZERO).unwrap();
        assert_eq!(out.report.latency, Duration::from_millis(10));
        assert_eq!(out.winners[0].candidate, 1);
    }

    #[test]
    fn corrupt_refetch_serializes() {
        let corrupt = ScriptAttempt::Corrupt { service_ms: 10, bytes: 100 };
        let mut d = Script::new(vec![vec![corrupt, ok(10)]]);
        let out = fanout_read(&mut d, 1, &off(), Duration::ZERO).unwrap();
        // Bad transfer + re-fetch, one after another.
        assert_eq!(out.report.latency, Duration::from_millis(20));
        assert_eq!(out.report.op_count(), 2);
        assert_eq!(out.report.bytes_out(), 200); // corrupt transfers bill in full
    }

    #[test]
    fn double_corruption_fails_over_at_the_cumulative_time() {
        let corrupt = ScriptAttempt::Corrupt { service_ms: 10, bytes: 100 };
        let mut d = Script::new(vec![vec![corrupt, corrupt], vec![ok(5)]]);
        let out = fanout_read(&mut d, 1, &off(), Duration::ZERO).unwrap();
        assert_eq!(out.report.latency, Duration::from_millis(25));
        assert_eq!(out.winners[0].candidate, 1);
    }

    #[test]
    fn hedge_fires_after_deadline_and_wins() {
        let mut d = Script::new(vec![vec![ok(100)], vec![ok(10)]]);
        let out = fanout_read(&mut d, 1, &on(20, 1), Duration::ZERO).unwrap();
        // Hedge launched at 20ms, done at 30ms; the straggler (100ms)
        // is cancelled at the finish line.
        assert_eq!(out.report.latency, Duration::from_millis(30));
        assert_eq!(out.winners[0].candidate, 1);
        assert!(out.winners[0].hedged);
        assert_eq!(out.hedges.fired, 1);
        assert_eq!(out.hedges.won, 1);
        assert_eq!(out.hedges.cancelled, 1);
        // Cancelled straggler bills zero bytes and only time-in-flight.
        let cancelled = &out.report.ops[out.report.ops.len() - 1];
        assert_eq!(cancelled.bytes_out, 0);
        assert_eq!(cancelled.latency, Duration::from_millis(30));
        assert_eq!(d.cancelled, vec![(0, 100, 30 * MS)]);
        // ...and its queue slot was freed at the finish line.
        assert_eq!(d.queues[0].busy_at(31 * MS), 0);
    }

    #[test]
    fn fast_read_never_hedges() {
        let mut d = Script::new(vec![vec![ok(10)], vec![ok(10)]]);
        let out = fanout_read(&mut d, 1, &on(20, 1), Duration::ZERO).unwrap();
        assert_eq!(out.hedges.fired, 0);
        assert_eq!(out.report.op_count(), 1);
    }

    #[test]
    fn losing_hedge_is_cancelled() {
        let mut d = Script::new(vec![vec![ok(50)], vec![ok(100)]]);
        let out = fanout_read(&mut d, 1, &on(20, 1), Duration::ZERO).unwrap();
        // Hedge at 20ms would finish at 120ms; the original wins at 50.
        assert_eq!(out.report.latency, Duration::from_millis(50));
        assert_eq!(out.hedges.fired, 1);
        assert_eq!(out.hedges.won, 0);
        assert_eq!(out.hedges.cancelled, 1);
        // The hedge was 30ms into its service time when cancelled.
        assert_eq!(d.cancelled, vec![(1, 100, 30 * MS)]);
    }

    #[test]
    fn hedge_skips_suspect_candidates() {
        let mut d = Script::new(vec![vec![ok(100)], vec![ok(10)], vec![ok(10)]]);
        d.hedge_skips.push(1);
        let out = fanout_read(&mut d, 1, &on(20, 1), Duration::ZERO).unwrap();
        assert_eq!(out.winners[0].candidate, 2);
        assert_eq!(out.hedges.fired, 1);
    }

    #[test]
    fn queue_congestion_delays_start() {
        let mut d = Script::new(vec![vec![ok(10)]]);
        // Saturate candidate 0's single slot until t=50ms.
        d.queues[0].admit(0, 50 * MS);
        let out = fanout_read(&mut d, 1, &off(), Duration::ZERO).unwrap();
        assert_eq!(out.report.latency, Duration::from_millis(60));
        assert_eq!(out.hedges.queue_delay_ns, 50 * MS);
    }

    #[test]
    fn exhausted_candidates_return_none() {
        let mut d = Script::new(vec![vec![ScriptAttempt::Err], vec![ScriptAttempt::Err]]);
        assert!(fanout_read(&mut d, 1, &off(), Duration::ZERO).is_none());
        let mut d = Script::new(vec![vec![ok(10)]]);
        assert!(fanout_read(&mut d, 2, &off(), Duration::ZERO).is_none());
    }

    #[test]
    fn same_script_same_schedule() {
        let build = || {
            Script::new(vec![
                vec![ok(30)],
                vec![ScriptAttempt::Corrupt { service_ms: 5, bytes: 7 }, ok(25)],
                vec![ok(40)],
                vec![ok(8)],
            ])
        };
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut d = build();
                let out = fanout_read(&mut d, 2, &on(10, 2), Duration::ZERO).unwrap();
                let winners: Vec<usize> = out.winners.iter().map(|w| w.candidate).collect();
                (out.report.latency, winners, out.hedges)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }
}
