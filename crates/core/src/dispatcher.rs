//! The Request Dispatcher (Figure 1, middle module) — HyRD proper.
//!
//! "Based on the data type information (i.e., file system metadata, small
//! file, or large file), the Request Dispatcher module decides which
//! redundancy scheme should be used for the incoming data, and
//! distributes the data to the corresponding cloud storage providers"
//! (§III-B). Concretely:
//!
//! * **metadata + small files** → full replicas (default level 2) on the
//!   performance-oriented tier, fastest provider first;
//! * **large files** → erasure-coded fragments (default RAID5 3+1) over
//!   the cost-oriented tier (cheapest storage first);
//! * **large reads** → any `m` fragments in parallel, preferring cheapest
//!   egress (§IV-B) or fastest (ablation), reconstructing around outages
//!   (degraded read, recovery phase 1);
//! * **small updates** → one parallel replica-write round (the client
//!   write-through cache supplies the base version);
//! * **large updates** → the RAID5 read-modify-write of §II-B (2 reads +
//!   2 writes for a sub-shard update);
//! * **writes during an outage** → applied to the surviving providers and
//!   appended to the [`UpdateLog`] for the consistency update when the
//!   provider returns (recovery phase 2).
//!
//! Every provider call additionally runs through the hardening stack
//! ([`Hyrd::guarded`]): retry with capped exponential backoff on
//! transient faults (sleeps advance the virtual clock), a per-provider
//! circuit breaker ([`crate::health`]) that short-circuits providers in
//! a failure streak, and — on whole-object Gets — client-side SHA-256
//! verification ([`crate::integrity`]); a corrupt payload is treated as
//! an erasure (failover / degraded read) and repaired by the scrub pass
//! ([`crate::scrub`]). Breakers never veto a read outright: when no
//! healthier copy is left, the suspect breaker is force-closed and the
//! read proceeds — a probing read beats a refused one.
//!
//! # Concurrency
//!
//! The whole CRUD surface takes `&self`: the mutable interior state is
//! **lock-striped** — the update log, the small-file cache, the
//! dirty-fragment set, the workload monitor and the integrity index each
//! sit behind their own `parking_lot::Mutex` (fleet, health, counters
//! and telemetry were already interior-mutable). Namespace metadata no
//! longer has a stripe at all: it lives in a
//! [`hyrd_metastore::ShardedMetaStore`] — hash-partitioned by directory
//! into independently `RwLock`ed shards with optimistic
//! read-validate-commit mutations (DESIGN.md §15) — and the hot-read
//! counters are sharded alongside it, keyed by [`NormPath`]. Guards are
//! scoped to single statements, so the client never holds two stripes at
//! once; the canonical acquisition order (monitor → meta shard → cache →
//! read_counts shard → log → dirty → integrity) is documented in
//! DESIGN.md §11 for any future section that must nest. Contended
//! acquisitions are counted and timed into registry histograms
//! (`lock.contended[..]`, `lock.wait_ns[..]`; the meta shards publish
//! theirs through [`Hyrd::publish_meta_metrics`]) — wall timings never
//! reach the trace, which stays virtual-time-stamped and
//! byte-deterministic.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard};

use hyrd_cloudsim::{Fleet, SimProvider};
use hyrd_gcsapi::{
    BatchReport, CloudError, CloudResult, CloudStorage, ObjectKey, OpReport, ProviderId,
};
use hyrd_gfec::parallel::{decode_object_parallel, encode_parallel};
use hyrd_gfec::stripe::StripePlanner;
use hyrd_gfec::{ErasureCode, Fragment, Raid5, Raid6, ReedSolomon};
use hyrd_metastore::{
    resolve_chain, DiffBlock, FlushKind, MetaOccStats, MetadataBlock, NormPath, Placement,
    ShardedMetaStore,
};
use hyrd_telemetry::Collector;

use crate::config::{CodeChoice, FragmentSelection, HyrdConfig};
use crate::engine::{self, Attempt, FanoutDriver, FanoutOutcome, HedgeStats, LaunchKind};
use crate::evaluator::Evaluator;
use crate::health::{FaultCounterSnapshot, FaultCounters, HealthTracker};
use crate::integrity::{IntegrityIndex, Verdict};
use crate::journal::{FragWrite, Intent, Journal};
use crate::monitor::{DataClass, WorkloadMonitor};
use crate::recovery::{RecoveryReport, UpdateLog};
use crate::scheme::{Scheme, SchemeError, SchemeResult, SharedScheme};

/// Concrete erasure code behind [`CodeChoice`].
pub(crate) enum CodeImpl {
    Raid5(Raid5),
    Rs(ReedSolomon),
    Raid6(Raid6),
}

impl CodeImpl {
    fn build(choice: CodeChoice) -> Result<Self, SchemeError> {
        Ok(match choice {
            CodeChoice::Raid5 { m } => CodeImpl::Raid5(Raid5::new(m)?),
            CodeChoice::ReedSolomon { m, n } => CodeImpl::Rs(ReedSolomon::new(m, n)?),
            CodeChoice::Raid6 { m } => CodeImpl::Raid6(Raid6::new(m)?),
        })
    }

    pub(crate) fn as_code(&self) -> &dyn ErasureCode {
        match self {
            CodeImpl::Raid5(c) => c,
            CodeImpl::Rs(c) => c,
            CodeImpl::Raid6(c) => c,
        }
    }
}

/// Bounded write-through cache of small-file contents, so small updates
/// need no read round. FIFO eviction is enough: the workloads touch
/// recent files.
///
/// Entries carry a generation stamp so removal and re-insertion are
/// O(1): the FIFO keeps stale `(path, generation)` records and the
/// eviction loop discards any whose generation no longer matches the
/// live entry (the classic lazy-deletion queue — the previous
/// `order.retain` walked the whole queue on every update/delete, which
/// was quadratic over a replay).
pub(crate) struct SmallFileCache {
    budget: usize,
    used: usize,
    generation: u64,
    map: HashMap<String, (Bytes, u64)>,
    order: VecDeque<(String, u64)>,
}

impl SmallFileCache {
    fn new(budget: usize) -> Self {
        SmallFileCache {
            budget,
            used: 0,
            generation: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    pub(crate) fn put(&mut self, path: &str, data: Bytes) {
        // A payload larger than the whole budget can never stay resident:
        // admitting it would evict every live entry and then evict itself
        // — a full cache flush that caches nothing. Reject it up front.
        // Any previously cached entry for the path still goes: the
        // authoritative content just changed, so the cached bytes are
        // stale either way.
        if data.len() > self.budget {
            self.remove(path);
            return;
        }
        if let Some((old, _)) = self.map.remove(path) {
            self.used -= old.len();
        }
        self.generation += 1;
        self.used += data.len();
        self.map.insert(path.to_string(), (data, self.generation));
        self.order.push_back((path.to_string(), self.generation));
        while self.used > self.budget {
            let Some((victim, generation)) = self.order.pop_front() else {
                break;
            };
            // Stale record: the path was removed or re-inserted since.
            let live = self.map.get(&victim).is_some_and(|(_, g)| *g == generation);
            if live {
                if let Some((b, _)) = self.map.remove(&victim) {
                    self.used -= b.len();
                }
            }
        }
        // Bound the stale-record backlog independently of the byte
        // budget so `order` cannot grow past O(live entries).
        if self.order.len() > self.map.len() * 2 + 16 {
            let map = &self.map;
            self.order.retain(|(p, g)| map.get(p).is_some_and(|(_, live)| live == g));
        }
    }

    pub(crate) fn get(&self, path: &str) -> Option<Bytes> {
        self.map.get(path).map(|(b, _)| b.clone())
    }

    pub(crate) fn remove(&mut self, path: &str) {
        if let Some((b, _)) = self.map.remove(path) {
            self.used -= b.len();
            // The FIFO record goes stale and is skipped at eviction.
        }
    }
}

/// Hot-read counters, sharded alongside the metastore: keyed by
/// [`NormPath`] (the caller already holds one, so bumping a counter
/// allocates nothing) and partitioned with the same directory hash, so
/// reads in different directories touch independent locks instead of
/// convoying on one map.
struct ReadCounts {
    shards: Vec<Mutex<HashMap<NormPath, u32>>>,
}

impl ReadCounts {
    fn new(shards: usize) -> Self {
        ReadCounts { shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, path: &NormPath) -> &Mutex<HashMap<NormPath, u32>> {
        &self.shards[ShardedMetaStore::shard_of(path, self.shards.len())]
    }
}

/// The HyRD client. See the crate docs for an end-to-end example.
///
/// `Hyrd` is `Sync`: every CRUD operation takes `&self` (see the module
/// docs on lock striping), so one client can be shared across threads or
/// across the sessions of [`crate::driver::multi_client`].
pub struct Hyrd {
    pub(crate) fleet: Fleet,
    pub(crate) config: HyrdConfig,
    monitor: Mutex<WorkloadMonitor>,
    evaluator: Evaluator,
    pub(crate) meta: ShardedMetaStore,
    pub(crate) log: Mutex<UpdateLog>,
    pub(crate) planner: StripePlanner,
    pub(crate) code: CodeImpl,
    cache: Mutex<SmallFileCache>,
    read_counts: ReadCounts,
    /// Meta-shard contention totals already published to the registry
    /// (so [`Hyrd::publish_meta_metrics`] increments deltas, not totals).
    meta_published: Mutex<MetaOccStats>,
    pub(crate) dirty: Mutex<crate::ecops::DirtyFragments>,
    setup_cost: BatchReport,
    pub(crate) health: HealthTracker,
    pub(crate) integrity: Mutex<IntegrityIndex>,
    pub(crate) counters: FaultCounters,
    pub(crate) telemetry: Collector,
    /// Crash journal (disabled outside the crash harness; see
    /// [`crate::journal`]).
    pub(crate) journal: Journal,
}

impl Hyrd {
    /// Builds a HyRD client over a fleet: validates the configuration,
    /// probes the providers (the evaluator's setup cost is retained in
    /// [`Self::setup_cost`]) and derives the placement tiers.
    pub fn new(fleet: &Fleet, config: HyrdConfig) -> SchemeResult<Self> {
        Hyrd::with_telemetry(fleet, config, Collector::disabled())
    }

    /// Like [`Hyrd::new`], but with an attached telemetry collector: the
    /// fleet's providers, the circuit breakers and the dispatcher itself
    /// all emit spans and events into it. Build the collector on the
    /// fleet's clock so trace timestamps are virtual (and same-seed runs
    /// byte-identical).
    pub fn with_telemetry(
        fleet: &Fleet,
        config: HyrdConfig,
        telemetry: Collector,
    ) -> SchemeResult<Self> {
        Hyrd::with_journal(fleet, config, telemetry, Journal::disabled())
    }

    /// Like [`Hyrd::with_telemetry`], with an attached crash journal:
    /// the dispatcher mirrors its recovery log and dirty-fragment set
    /// into the journal and records per-operation intents, and the
    /// journal's crashpoints become live (see [`crate::journal`] and
    /// [`Hyrd::restart`]). Ordinary clients pass [`Journal::disabled`].
    pub fn with_journal(
        fleet: &Fleet,
        config: HyrdConfig,
        telemetry: Collector,
        journal: Journal,
    ) -> SchemeResult<Self> {
        journal.set_crash_switch(fleet.crash_switch().clone());
        config
            .validate(fleet.len())
            .map_err(|detail| SchemeError::DataUnavailable { path: String::new(), detail })?;
        fleet.set_telemetry(&telemetry);
        let (evaluator, setup_cost) = {
            let _span = telemetry
                .span_with("setup.assess")
                .field("probe_bytes", config.probe_bytes as u64)
                .start();
            Evaluator::assess(fleet, config.probe_bytes)
        };
        let code = CodeImpl::build(config.code)?;
        let planner = StripePlanner::new(config.code.m(), config.code.n())?;
        let mut health = HealthTracker::new(config.breaker);
        health.set_telemetry(telemetry.clone());
        Ok(Hyrd {
            fleet: fleet.clone(),
            monitor: Mutex::new(WorkloadMonitor::new(config.threshold)),
            evaluator,
            meta: ShardedMetaStore::with_shards(config.meta_shards),
            log: Mutex::new(UpdateLog::new()),
            planner,
            code,
            cache: Mutex::new(SmallFileCache::new(256 << 20)),
            read_counts: ReadCounts::new(config.meta_shards),
            meta_published: Mutex::new(MetaOccStats::default()),
            dirty: Mutex::new(crate::ecops::DirtyFragments::new()),
            setup_cost,
            health,
            integrity: Mutex::new(IntegrityIndex::new()),
            counters: FaultCounters::default(),
            telemetry,
            config,
            journal,
        })
    }

    /// The attached telemetry collector (disabled for [`Hyrd::new`]).
    pub fn telemetry(&self) -> &Collector {
        &self.telemetry
    }

    /// Attaches to an **existing** namespace: builds a client and loads
    /// every metadata block from the cloud ("Before accessing a file, its
    /// metadata blocks must be loaded into the client memory", §III-C) —
    /// the market-mobility story of the Cloud-of-Clouds. Returns the
    /// client plus what the bootstrap cost (one List + one Get per
    /// directory block, served by the fastest metadata replica).
    ///
    /// The namespace has a single active writer at a time; attach after
    /// the previous client is gone (object names embed the file ids the
    /// loaded blocks carry, which `load_block` adopts).
    pub fn attach(fleet: &Fleet, config: HyrdConfig) -> SchemeResult<(Self, BatchReport)> {
        Hyrd::attach_with(fleet, config, Collector::disabled())
    }

    /// [`Hyrd::attach`] with a telemetry collector. A metadata block
    /// that fails its length/checksum validation (a torn write caught
    /// by the `HYM2` codec) does **not** abort the mount: the other
    /// replicas are tried directly, and a block with no intact replica
    /// is skipped with a `attach.block_lost` event — the rest of the
    /// namespace stays mountable.
    pub fn attach_with(
        fleet: &Fleet,
        config: HyrdConfig,
        telemetry: Collector,
    ) -> SchemeResult<(Self, BatchReport)> {
        let hyrd = Hyrd::with_telemetry(fleet, config, telemetry)?;
        let mut ops = Vec::new();

        // Find a metadata replica that answers a List.
        let mut listing: Option<Vec<String>> = None;
        for id in hyrd.evaluator.fastest_first() {
            match hyrd.provider(id).list(Fleet::CONTAINER) {
                Ok(out) => {
                    ops.push(out.report);
                    listing = Some(out.value);
                    break;
                }
                Err(_) => continue,
            }
        }
        let names = listing.ok_or_else(|| SchemeError::DataUnavailable {
            path: String::new(),
            detail: "no provider answered the bootstrap List".to_string(),
        })?;

        // Fetch every metadata block and diff (they are small; fastest
        // replica first with failover, like any metadata read).
        let targets = hyrd.replica_targets();
        let mut blocks: Vec<MetadataBlock> = Vec::new();
        let mut dir_diffs: std::collections::BTreeMap<NormPath, Vec<DiffBlock>> =
            std::collections::BTreeMap::new();
        for name in &names {
            if DiffBlock::is_diff_object(name) {
                // A torn or lost diff just truncates that directory's
                // chain at the gap — resolve_chain strands the suffix.
                if let Some(diff) = Self::fetch_decoded(&hyrd, &targets, name, &mut ops, |b| {
                    DiffBlock::from_bytes(b).ok()
                }) {
                    dir_diffs.entry(diff.dir.clone()).or_default().push(diff);
                }
            } else if name.starts_with("meta:") {
                if let Some(block) = Self::fetch_decoded(&hyrd, &targets, name, &mut ops, |b| {
                    MetadataBlock::from_bytes(b).ok()
                }) {
                    blocks.push(block);
                }
            }
        }
        // Parent directories first so joins always resolve. Each block
        // is folded with its surviving diff chain before loading; the
        // flush state is seeded at the resolved version (the next real
        // change ships a diff on top) and the applied diffs stay
        // recorded as the live chain so a later compaction supersedes
        // them on the providers.
        blocks.sort_by(|a, b| a.dir.cmp(&b.dir));
        for block in blocks {
            let dir = block.dir.clone();
            let diffs = dir_diffs.remove(&dir).unwrap_or_default();
            let chain: Vec<String> = Self::chain_objects(&block, &diffs);
            let resolved = resolve_chain(block, diffs);
            hyrd.meta.load_block(&resolved.block)?;
            hyrd.meta.seed_flushed(&dir, resolved.block.version);
            hyrd.meta.seed_chain(&dir, chain);
        }
        Ok((hyrd, BatchReport::serial(ops)))
    }

    /// The object names of the diffs that will link onto `block`, in
    /// version order — exactly what [`resolve_chain`] applies, computed
    /// up front because resolution consumes the diffs.
    fn chain_objects(block: &MetadataBlock, diffs: &[DiffBlock]) -> Vec<String> {
        let mut sorted: Vec<&DiffBlock> = diffs.iter().collect();
        sorted.sort_by_key(|d| d.version);
        let mut reached = block.version;
        let mut chain = Vec::new();
        for diff in sorted {
            if diff.version <= reached || diff.base != reached {
                continue;
            }
            chain.push(DiffBlock::object_name(&diff.dir, diff.version));
            reached = diff.version;
        }
        chain
    }

    /// Fetches one metadata object during attach and decodes it with
    /// `decode`, falling back to per-replica direct gets when the chosen
    /// replica served torn bytes. Returns `None` (with `attach.torn_block`
    /// / `attach.block_lost` marks) when no intact copy exists.
    fn fetch_decoded<T>(
        hyrd: &Hyrd,
        targets: &[ProviderId],
        name: &str,
        ops: &mut Vec<OpReport>,
        decode: impl Fn(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let mut decoded = match hyrd.read_replicated("<bootstrap>", targets, name) {
            Ok((bytes, batch)) => {
                ops.extend(batch.ops);
                decode(&bytes)
            }
            Err(_) => return None, // an orphaned or unreachable object
        };
        if decoded.is_none() {
            // The chosen replica served a torn object (e.g. a crash
            // mid-flush tore the write). Try the remaining replicas
            // directly: any intact copy keeps the directory.
            if hyrd.telemetry.enabled() {
                hyrd.telemetry.event("attach.torn_block").field("object", name).emit();
                hyrd.telemetry.inc("attach.torn_blocks", 1);
            }
            for &t in targets {
                if decoded.is_some() {
                    break;
                }
                if let Ok(out) = hyrd.guarded(t, |p| p.get(&Self::key(name))) {
                    ops.push(out.report);
                    decoded = decode(&out.value);
                }
            }
            if decoded.is_none() {
                // No replica holds an intact copy: mount without the
                // directory rather than refusing the namespace.
                if hyrd.telemetry.enabled() {
                    hyrd.telemetry.event("attach.block_lost").field("object", name).emit();
                    hyrd.telemetry.inc("attach.blocks_lost", 1);
                }
            }
        }
        decoded
    }

    // ------------------------------------------------------------------
    // Lock stripes
    // ------------------------------------------------------------------

    /// Acquires one stripe, counting and (wall-)timing contended waits
    /// into registry metrics — `lock.contended[name]` and
    /// `lock.wait_ns[name]`. The fast path is an uncontended `try_lock`
    /// with zero bookkeeping, so single-session runs pay nothing.
    fn stripe<'a, T>(&self, name: &'static str, lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
        if let Some(guard) = lock.try_lock() {
            return guard;
        }
        let waited = std::time::Instant::now();
        let guard = lock.lock();
        if self.telemetry.enabled() {
            self.telemetry.inc_labeled("lock.contended", name, 1);
            let waited_ns = waited.elapsed().as_nanos() as u64;
            self.telemetry.observe_labeled("lock.wait_ns", name, waited_ns);
        }
        guard
    }

    fn monitor_l(&self) -> MutexGuard<'_, WorkloadMonitor> {
        self.stripe("monitor", &self.monitor)
    }

    pub(crate) fn cache_l(&self) -> MutexGuard<'_, SmallFileCache> {
        self.stripe("cache", &self.cache)
    }

    /// Bumps a file's hot-read counter, returning the new count. The
    /// counter map is sharded by the same hash as the metastore; only
    /// the owning shard's lock is taken.
    fn reads_bump(&self, path: &NormPath) -> u32 {
        let mut shard = self.stripe("read_counts", self.read_counts.shard(path));
        let count = shard.entry(path.clone()).or_insert(0);
        *count += 1;
        *count
    }

    /// A file's current hot-read count without bumping it — the
    /// adaptive policy's heat input.
    pub(crate) fn reads_of(&self, path: &NormPath) -> u32 {
        self.stripe("read_counts", self.read_counts.shard(path)).get(path).copied().unwrap_or(0)
    }

    /// Drops a file's hot-read counter (delete, content turnover, or a
    /// completed migration starting a fresh heat epoch).
    pub(crate) fn reads_remove(&self, path: &NormPath) {
        self.stripe("read_counts", self.read_counts.shard(path)).remove(path);
    }

    pub(crate) fn log_l(&self) -> MutexGuard<'_, UpdateLog> {
        self.stripe("log", &self.log)
    }

    pub(crate) fn dirty_l(&self) -> MutexGuard<'_, crate::ecops::DirtyFragments> {
        self.stripe("dirty", &self.dirty)
    }

    pub(crate) fn integrity_l(&self) -> MutexGuard<'_, IntegrityIndex> {
        self.stripe("integrity", &self.integrity)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// What provider probing cost at construction.
    pub fn setup_cost(&self) -> &BatchReport {
        &self.setup_cost
    }

    /// A snapshot of the workload monitor (sizes observed, classification
    /// stats). Cloned out of its stripe so callers never hold the lock.
    pub fn monitor(&self) -> WorkloadMonitor {
        self.monitor_l().clone()
    }

    /// The evaluator's provider assessments.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The per-provider circuit breakers.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Current fault-handling counters (retries, breaker rejections,
    /// corruption detections).
    pub fn fault_counters(&self) -> FaultCounterSnapshot {
        self.counters.snapshot()
    }

    /// Objects with a recorded client-side checksum.
    pub fn integrity_len(&self) -> usize {
        self.integrity_l().len()
    }

    /// Re-runs the Cost & Performance Evaluator and adopts the fresh
    /// tiers for *future* placements (existing placements are untouched —
    /// they carry their own provider lists). The paper's evaluator
    /// "directly interacts with the individual cloud storage providers
    /// to evaluate the corresponding values" (§III-D) on an ongoing
    /// basis; call this after topology or pricing changes.
    pub fn reassess(&mut self) -> BatchReport {
        let (evaluator, cost) = Evaluator::assess(&self.fleet, self.config.probe_bytes);
        self.evaluator = evaluator;
        cost
    }

    /// The active configuration.
    pub fn config(&self) -> &HyrdConfig {
        &self.config
    }

    /// Logical bytes stored (sum of file sizes).
    pub fn logical_bytes(&self) -> u64 {
        self.meta.logical_bytes()
    }

    /// Physical bytes stored across providers (redundancy included).
    pub fn physical_bytes(&self) -> u64 {
        self.meta.physical_bytes()
    }

    /// Pending consistency-update records (writes missed by providers
    /// currently in outage).
    pub fn pending_log_len(&self) -> usize {
        self.log_l().len()
    }

    /// Runs the consistency-update phase for a returned provider —
    /// §III-C phase 2. Call after the provider's outage ends.
    pub fn recover_provider(&self, id: ProviderId) -> SchemeResult<(RecoveryReport, BatchReport)> {
        let provider = self
            .fleet
            .get(id)
            .ok_or_else(|| SchemeError::DataUnavailable {
                path: String::new(),
                detail: format!("{id} not in fleet"),
            })?
            .clone();
        let _span = self.telemetry.span_labeled("recover_provider", provider.name());
        // The provider is declaredly back: give it a clean bill of health
        // so the replay and the reads that follow are not short-circuited
        // by a breaker left open from its bad spell.
        self.health.reset(id);
        // Phase 2a: replay whole-object writes the provider missed. The
        // log stripe stays held across the replay so a concurrent writer
        // cannot append a record for this provider mid-drain; the
        // journal mirror is synced under the same guard so a crash can
        // never observe the drain half-recorded.
        let replayed = {
            let mut log = self.log_l();
            let result = log.replay(provider.as_ref());
            if result.is_ok() {
                self.journal.sync_pending(&log);
            }
            result
        };
        let (mut report, mut batch) = match replayed {
            Ok(ok) => ok,
            Err(e) => {
                crate::crashtest::escalate_if_crashed(&e);
                return Err(e.into());
            }
        };
        if self.telemetry.enabled() {
            self.telemetry
                .event("recovery.replay")
                .field("provider", provider.name())
                .field("puts", report.puts_replayed)
                .field("removes", report.removes_replayed)
                .field("bytes", report.bytes_restored)
                .emit();
            self.telemetry.inc("recovery.replays", 1);
        }
        // Phase 2b: rebuild fragments dirtied by degraded updates.
        let lookup = {
            let fleet = self.fleet.clone();
            move |pid: ProviderId| fleet.get(pid).expect("fleet member").clone()
        };
        let dirty_paths = self.dirty_l().paths();
        for path in dirty_paths {
            let Ok(npath) = NormPath::parse(&path) else {
                continue;
            };
            let Ok(inode) = self.meta.inode(&npath) else {
                self.dirty_l().forget(&path);
                continue;
            };
            let Placement::ErasureCoded { layout, fragments, .. } = inode.placement else {
                self.dirty_l().forget(&path);
                continue;
            };
            let indices = self.dirty_l().take(&path);
            let mut remaining = std::collections::BTreeSet::new();
            for idx in indices {
                if fragments.get(idx).map(|(p, _)| *p) != Some(id) {
                    remaining.insert(idx);
                    continue;
                }
                match crate::ecops::rebuild_fragment(
                    self.code.as_code(),
                    &lookup,
                    &self.telemetry,
                    &layout,
                    &fragments,
                    idx,
                    &path,
                ) {
                    Ok((b, bytes)) => {
                        if self.telemetry.enabled() {
                            self.telemetry
                                .event("recovery.rebuild")
                                .field("path", path.as_str())
                                .field("fragment", idx as u64)
                                .field("provider", provider.name())
                                .field("bytes", bytes)
                                .emit();
                            self.telemetry.inc("recovery.rebuilds", 1);
                        }
                        report.puts_replayed += 1;
                        report.bytes_restored += bytes;
                        batch = batch.then(b);
                    }
                    Err(_) => {
                        remaining.insert(idx);
                    }
                }
            }
            self.dirty_l().put_back(&path, remaining);
        }
        self.sync_dirty_journal();
        Ok((report, batch))
    }

    /// Fragments awaiting rebuild after degraded updates.
    pub fn pending_dirty_fragments(&self) -> usize {
        self.dirty_l().len()
    }

    // ------------------------------------------------------------------
    // Placement helpers
    // ------------------------------------------------------------------

    pub(crate) fn provider(&self, id: ProviderId) -> &Arc<SimProvider> {
        self.fleet.get(id).expect("placement providers come from the fleet")
    }

    /// Runs one cloud op through the full hardening stack: circuit
    /// breaker admission, retry with capped exponential backoff (sleeps
    /// advance the *virtual* clock), and health bookkeeping on the
    /// outcome. On the clean path this is exactly one provider call with
    /// zero added latency, so fault-free runs are bit-identical to the
    /// unhardened dispatcher.
    pub(crate) fn guarded<T>(
        &self,
        id: ProviderId,
        mut op: impl FnMut(&SimProvider) -> CloudResult<T>,
    ) -> CloudResult<T> {
        if !self.health.probe(id, self.now()) {
            self.note_breaker_reject(id);
            return Err(CloudError::Unavailable { provider: id });
        }
        let provider = self.provider(id).clone();
        let clock = self.fleet.clock().clone();
        let policy = self.config.retry;
        let telemetry = &self.telemetry;
        let mut retries = 0u32;
        let result = policy.run_with(
            |delay| {
                retries += 1;
                if telemetry.enabled() {
                    telemetry
                        .event("retry.backoff")
                        .field("provider", provider.name())
                        .field("attempt", retries as u64)
                        .field("delay_ns", delay.as_nanos() as u64)
                        .emit();
                    telemetry.inc_labeled("retry.backoffs", provider.name(), 1);
                }
                clock.advance(delay);
            },
            || op(provider.as_ref()),
        );
        self.counters.note_retries(retries);
        match result {
            Ok(v) => {
                self.health.record_success(id);
                Ok(v)
            }
            Err(re) => {
                let e = re.into_cloud_error();
                // An injected client crash is a process death, not a
                // provider fault: no bookkeeping may run past it.
                crate::crashtest::escalate_if_crashed(&e);
                if e.counts_against_health() {
                    self.health.record_failure(id, self.now());
                }
                Err(e)
            }
        }
    }

    /// Starts a wall-clock timer, but only when telemetry is enabled.
    /// Wall timings land in registry histograms only — never in the
    /// trace, which is stamped purely with virtual time so same-seed
    /// runs stay byte-identical.
    fn wall_start(&self) -> Option<std::time::Instant> {
        self.telemetry.enabled().then(std::time::Instant::now)
    }

    fn observe_wall(&self, metric: &str, started: Option<std::time::Instant>) {
        if let Some(t0) = started {
            self.telemetry.observe(metric, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Counts a breaker rejection and traces which provider was refused.
    fn note_breaker_reject(&self, id: ProviderId) {
        self.counters.note_breaker_rejection();
        if self.telemetry.enabled() {
            self.telemetry
                .event("breaker.reject")
                .field("provider", self.provider(id).name())
                .emit();
            self.telemetry.inc_labeled("breaker.rejects", self.provider(id).name(), 1);
        }
    }

    /// Counts a detected integrity failure and traces the object.
    fn note_corruption(&self, id: ProviderId, object: &str) {
        self.counters.note_corruption();
        if self.telemetry.enabled() {
            self.telemetry
                .event("integrity.corrupt")
                .field("provider", self.provider(id).name())
                .field("object", object)
                .emit();
            self.telemetry.inc("integrity.corruptions", 1);
        }
    }

    /// Counts one fan-out read's hedging activity into the registry.
    /// Quiet reads (nothing fired, no queueing) record nothing, so runs
    /// with hedging disabled keep their pre-engine telemetry exactly.
    fn note_hedges(&self, h: &HedgeStats) {
        if !self.telemetry.enabled() {
            return;
        }
        if h.fired > 0 {
            self.telemetry.inc("hedge.fired", h.fired);
        }
        if h.won > 0 {
            self.telemetry.inc("hedge.won", h.won);
        }
        if h.cancelled > 0 {
            self.telemetry.inc("hedge.cancelled", h.cancelled);
        }
        if h.queue_delay_ns > 0 {
            self.telemetry.observe("engine.queue_ns", h.queue_delay_ns);
        }
    }

    /// Verifies fetched whole-object bytes against the recorded digest.
    /// Ghost-mode providers return synthetic zeroes by design, so their
    /// payloads are exempt (`Unknown`).
    pub(crate) fn check(&self, id: ProviderId, object: &str, bytes: &[u8]) -> Verdict {
        if self.provider(id).ghost_mode() {
            Verdict::Unknown
        } else {
            self.integrity_l().verify(object, bytes)
        }
    }

    /// Replica targets for metadata/small files: performance tier fastest
    /// first, padded from the global fastest ranking if the tier is
    /// smaller than the replication level.
    pub(crate) fn replica_targets(&self) -> Vec<ProviderId> {
        let mut targets = self.evaluator.performance_tier();
        for id in self.evaluator.fastest_first() {
            if targets.len() >= self.config.replication_level {
                break;
            }
            if !targets.contains(&id) {
                targets.push(id);
            }
        }
        targets.truncate(self.config.replication_level);
        targets
    }

    /// Fragment targets for large files: cost tier cheapest-storage
    /// first, padded with the remaining fastest providers up to `n`.
    pub(crate) fn fragment_targets(&self) -> Vec<ProviderId> {
        let n = self.config.code.n();
        let mut targets = self.evaluator.cost_tier();
        for id in self.evaluator.fastest_first() {
            if targets.len() >= n {
                break;
            }
            if !targets.contains(&id) {
                targets.push(id);
            }
        }
        targets.truncate(n);
        targets
    }

    pub(crate) fn key(name: &str) -> ObjectKey {
        ObjectKey::new(Fleet::CONTAINER, name)
    }

    // ------------------------------------------------------------------
    // Write-ahead log helpers
    //
    // Every recovery-log mutation goes through one of these so the crash
    // journal's mirror is synced under the same stripe guard — before
    // the next provider op (the next possible crash boundary) can run.
    // ------------------------------------------------------------------

    pub(crate) fn wal_log_put(&self, target: ProviderId, key: ObjectKey, data: Bytes) {
        let mut log = self.log_l();
        log.log_put(target, key, data);
        self.journal.sync_pending(&log);
    }

    pub(crate) fn wal_log_remove(&self, target: ProviderId, key: ObjectKey) {
        let mut log = self.log_l();
        log.log_remove(target, key);
        self.journal.sync_pending(&log);
    }

    pub(crate) fn wal_discharge(&self, target: ProviderId, key: &ObjectKey) {
        let mut log = self.log_l();
        log.discharge(target, key);
        self.journal.sync_pending(&log);
    }

    /// Mirrors the dirty-fragment set into the journal. Call after any
    /// dirty mutation, with the dirty stripe released.
    pub(crate) fn sync_dirty_journal(&self) {
        if self.journal.enabled() {
            let snapshot = self.dirty_l().clone();
            self.journal.sync_dirty(&snapshot);
        }
    }

    /// Puts `data` to every target in parallel. Unavailable (or
    /// breaker-rejected) targets get the write logged for the consistency
    /// update. Returns the batch and how many targets took the write
    /// synchronously.
    pub(crate) fn put_replicated(
        &self,
        name: &str,
        data: &Bytes,
        targets: &[ProviderId],
    ) -> (BatchReport, usize) {
        let key = Self::key(name);
        // The digest is what the object *should* hold from now on; it is
        // recorded up front so even log-replayed copies verify.
        self.integrity_l().record(name, data);
        let mut ops = Vec::new();
        let mut live = 0;
        let mut rejected: Vec<ProviderId> = Vec::new();
        for &t in targets {
            if !self.health.admits(t, self.now()) {
                // Open breaker: skip the call, log the write like an
                // outage miss. If it turns out no target takes the write
                // we come back to these below.
                self.note_breaker_reject(t);
                rejected.push(t);
                self.wal_log_put(t, key.clone(), data.clone());
                continue;
            }
            let put = {
                let _put = self.telemetry.span_labeled("put_replica", self.provider(t).name());
                self.guarded(t, |p| p.put(&key, data.clone()))
            };
            match put {
                Ok(out) => {
                    ops.push(out.report);
                    live += 1;
                }
                Err(_) => {
                    // Outages, exhausted retries, container errors — all
                    // become missed writes; the replay path will surface
                    // persistent problems.
                    self.wal_log_put(t, key.clone(), data.clone());
                }
            }
        }
        if live == 0 && !rejected.is_empty() {
            // Desperation pass: every admitted target failed, so a
            // breaker verdict is no longer allowed to cost us the write.
            // Force the rejected breakers closed and try for real.
            for t in rejected {
                self.health.reset(t);
                if let Ok(out) = self.guarded(t, |p| p.put(&key, data.clone())) {
                    ops.push(out.report);
                    live += 1;
                    // The forced put landed the authoritative bytes;
                    // the pessimistic log entry would only re-ship them
                    // on recovery. Discharge it.
                    self.wal_discharge(t, &key);
                }
            }
        }
        (BatchReport::parallel(ops), live)
    }

    /// Replicates every **changed** dirty directory's flush item to the
    /// metadata tier (one parallel round; items are independent
    /// objects). Directories whose bytes match their last flush are
    /// skipped by the metastore — a flush with nothing new issues zero
    /// provider ops — and steady-state changes ship as incremental
    /// diffs, with every [`hyrd_metastore::shard::COMPACT_EVERY`]th
    /// flush folding the chain back into a full block and deleting the
    /// superseded diff objects.
    ///
    /// Each shipped item leaves a `meta.flush.block` / `meta.flush.diff`
    /// / `meta.flush.compact` trace event. The fields (dir, version,
    /// records, bytes) are pure functions of the serialized op order, so
    /// deterministic runs stay byte-identical.
    pub(crate) fn flush_metadata(&self) -> BatchReport {
        self.journal.crashpoint("meta.flush.pre");
        let items = self.meta.flush_dirty_encoded();
        if items.is_empty() {
            return BatchReport::empty();
        }
        let targets = self.replica_targets();
        let mut ops = Vec::new();
        for item in items {
            let bytes = Bytes::from(item.bytes);
            let (batch, _) = self.put_replicated(&item.object, &bytes, &targets);
            ops.extend(batch.ops);
            if self.telemetry.enabled() {
                let (event, counter) = match item.kind {
                    FlushKind::Block => ("meta.flush.block", "meta.flush.blocks"),
                    FlushKind::Diff => ("meta.flush.diff", "meta.flush.diffs"),
                    FlushKind::Compact => ("meta.flush.compact", "meta.flush.compacts"),
                };
                let mut ev = self
                    .telemetry
                    .event(event)
                    .field("dir", item.dir.as_str())
                    .field("version", item.version)
                    .field("records", item.records as u64)
                    .field("bytes", bytes.len() as u64);
                if item.kind == FlushKind::Compact {
                    ev = ev.field("folded", item.supersedes.len() as u64);
                }
                ev.emit();
                self.telemetry.inc(counter, 1);
            }
            // A compaction's full block supersedes its diff chain: the
            // diff objects are garbage now, and leaving them would both
            // leak billed storage and re-apply on the next restart (a
            // no-op by version, but the GC pass would never converge).
            for stale in &item.supersedes {
                self.integrity_l().forget(stale);
                let key = Self::key(stale);
                for &t in &targets {
                    match self.guarded(t, |p| p.remove(&key)) {
                        Ok(out) => ops.push(out.report),
                        // Verifiably gone — nothing left to reclaim.
                        Err(CloudError::NoSuchObject { .. })
                        | Err(CloudError::NoSuchContainer { .. }) => {}
                        // Unreachable: log the remove so recovery
                        // reclaims the stale diff later.
                        Err(_) => self.wal_log_remove(t, key.clone()),
                    }
                }
            }
        }
        self.journal.crashpoint("meta.flush.post");
        BatchReport::parallel(ops)
    }

    /// Publishes the sharded metastore's health into the metrics
    /// registry: OCC totals (`meta.occ.conflicts` / `meta.occ.retries`),
    /// shard-lock contention deltas under the `meta` label of
    /// `lock.contended` / `lock.wait_ns` (alongside the mutex stripes),
    /// and per-shard gauges (`meta.shard.dirty[i]`, `meta.chain.max`).
    /// Registry-only — never the trace — so callers may invoke it at any
    /// cadence without disturbing determinism. The drivers call it once
    /// before snapshotting.
    pub fn publish_meta_metrics(&self) {
        if !self.telemetry.enabled() {
            return;
        }
        let stats = self.meta.occ_stats();
        self.telemetry.set_gauge("meta.occ.conflicts", stats.conflicts as i64);
        self.telemetry.set_gauge("meta.occ.retries", stats.retries as i64);
        {
            let mut last = self.stripe("meta_published", &self.meta_published);
            let contended = stats.contended - last.contended;
            let wait_ns = stats.wait_ns - last.wait_ns;
            if contended > 0 {
                self.telemetry.inc_labeled("lock.contended", "meta", contended);
            }
            if wait_ns > 0 {
                self.telemetry.observe_labeled("lock.wait_ns", "meta", wait_ns);
            }
            *last = stats;
        }
        let gauges = self.meta.shard_gauges();
        for (i, g) in gauges.iter().enumerate() {
            self.telemetry.set_gauge(&format!("meta.shard.dirty[{i}]"), g.dirty as i64);
        }
        let chain_max = gauges.iter().map(|g| g.chain_max).max().unwrap_or(0);
        self.telemetry.set_gauge("meta.chain.max", chain_max as i64);
    }

    pub(crate) fn now(&self) -> std::time::Duration {
        self.fleet.clock().now()
    }

    // ------------------------------------------------------------------
    // Create
    // ------------------------------------------------------------------

    fn create_small(&self, path: &NormPath, data: &[u8]) -> SchemeResult<BatchReport> {
        let now = self.now();
        self.meta.create_file(path, data.len() as u64, now)?;
        let name = crate::scheme::object_name(path.as_str());
        let bytes = Bytes::copy_from_slice(data);
        let targets = self.replica_targets();
        let _intent = self.journal.begin(Intent::Create {
            path: path.as_str().to_string(),
            objects: targets.iter().map(|&t| (t, name.clone())).collect(),
        });

        let (batch, live) = self.put_replicated(&name, &bytes, &targets);
        if live == 0 {
            // No provider holds the data — fail the write and roll back.
            self.meta.remove_file(path)?;
            self.integrity_l().forget(&name);
            for &t in &targets {
                // Drop the logged writes for the rolled-back object.
                self.wal_log_remove(t, Self::key(&name));
            }
            return Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "all replica targets unavailable".to_string(),
            });
        }
        self.cache_l().put(path.as_str(), bytes);
        self.meta.set_placement(
            path,
            Placement::Replicated { providers: targets, object: name },
            data.len() as u64,
            now,
        )?;
        Ok(batch.then(self.flush_metadata()))
    }

    fn create_large(&self, path: &NormPath, data: &[u8]) -> SchemeResult<BatchReport> {
        let now = self.now();
        self.meta.create_file(path, data.len() as u64, now)?;
        let base_name = crate::scheme::object_name(path.as_str());
        let targets = self.fragment_targets();
        let _intent = self.journal.begin(Intent::Create {
            path: path.as_str().to_string(),
            objects: (0..targets.len())
                .map(|i| (targets[i], format!("{base_name}.f{i}")))
                .collect(),
        });

        // Split + encode (rayon-parallel for multi-MB objects).
        let (layout, shards) = self.planner.split(data);
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let parity = {
            let _enc = self
                .telemetry
                .span_with("ec.encode")
                .field("bytes", data.len() as u64)
                .field("m", self.config.code.m() as u64)
                .start();
            let wall = self.wall_start();
            let parity = encode_parallel(self.code.as_code(), &refs)?;
            self.observe_wall("ec.encode_wall_ns", wall);
            parity
        };

        let mut fragments: Vec<(ProviderId, String)> = Vec::with_capacity(targets.len());
        let mut ops = Vec::new();
        let mut live = 0;
        let mut rejected: Vec<(ProviderId, String, Bytes)> = Vec::new();
        for (idx, shard) in shards.into_iter().chain(parity).enumerate() {
            let target = targets[idx];
            let name = format!("{base_name}.f{idx}");
            let key = Self::key(&name);
            let bytes = Bytes::from(shard);
            self.integrity_l().record(&name, &bytes);
            if !self.health.admits(target, self.now()) {
                self.note_breaker_reject(target);
                self.wal_log_put(target, key, bytes.clone());
                rejected.push((target, name.clone(), bytes));
            } else {
                let put = {
                    let _put =
                        self.telemetry.span_labeled("put_fragment", self.provider(target).name());
                    self.guarded(target, |p| p.put(&key, bytes.clone()))
                };
                match put {
                    Ok(out) => {
                        ops.push(out.report);
                        live += 1;
                    }
                    Err(_) => self.wal_log_put(target, key, bytes),
                }
            }
            fragments.push((target, name));
        }
        if live < self.config.code.m() && !rejected.is_empty() {
            // Desperation pass: below the durability floor, so open
            // breakers no longer get a vote — force them closed and put
            // the rejected fragments for real.
            for (t, name, bytes) in rejected {
                self.health.reset(t);
                let key = Self::key(&name);
                if let Ok(out) = self.guarded(t, |p| p.put(&key, bytes.clone())) {
                    ops.push(out.report);
                    live += 1;
                    // The fragment landed after all: drop the pending-log
                    // entry so recovery does not re-ship identical bytes.
                    self.wal_discharge(t, &key);
                }
            }
        }

        if live < self.config.code.m() {
            // Not enough survivors to make the object durable: undo —
            // remove what landed, supersede the logged writes.
            self.meta.remove_file(path)?;
            for (t, name) in &fragments {
                let key = Self::key(name);
                self.integrity_l().forget(name);
                match self.guarded(*t, |p| p.remove(&key)) {
                    Ok(out) => ops.push(out.report),
                    Err(_) => self.wal_log_remove(*t, key),
                }
            }
            return Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: format!("only {live} of {} fragment targets available", targets.len()),
            });
        }

        self.meta.set_placement(
            path,
            Placement::ErasureCoded { layout, fragments, hot_copy: None },
            data.len() as u64,
            now,
        )?;
        Ok(BatchReport::parallel(ops).then(self.flush_metadata()))
    }

    // ------------------------------------------------------------------
    // Read
    // ------------------------------------------------------------------

    pub(crate) fn read_replicated(
        &self,
        path: &str,
        providers: &[ProviderId],
        object: &str,
    ) -> SchemeResult<(Bytes, BatchReport)> {
        let key = Self::key(object);
        // Fastest replica first — the evaluator's whole purpose — with
        // breaker-suspect providers demoted to the back of the line.
        // A replica with a pending log record holds stale bytes (it
        // missed the latest write); never serve a read from it.
        let mut order = Evaluator::order_by(&self.evaluator.fastest_first(), providers);
        let now = self.now();
        order.sort_by_key(|&id| !self.health.admits(id, now));
        let candidates: Vec<(ProviderId, String)> = order
            .into_iter()
            .filter(|&id| !self.log_l().is_pending(id, &key))
            .map(|id| (id, object.to_string()))
            .collect();
        // One copy wins; the hedge timer fans out to a second replica
        // when the first is slow (metadata and small files included —
        // `list_dir`'s fastest-replica fetch rides the same path).
        let mut fanout = ReadFanout { hyrd: self, span: "fetch_replica", candidates };
        let Some(mut outcome) = engine::fanout_read(&mut fanout, 1, &self.config.hedge, now) else {
            return Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: format!("no replica of '{object}' reachable"),
            });
        };
        self.note_hedges(&outcome.hedges);
        let winner = outcome.winners.pop().expect("need=1 produced a winner");
        Ok((winner.payload, outcome.report))
    }

    /// Fetches any `m` fragments (policy-ordered) and decodes. The
    /// degraded-read path is implicit: a lost data fragment simply means
    /// a parity fragment gets picked and the decode reconstructs.
    pub(crate) fn read_erasure(
        &self,
        path: &str,
        layout: &hyrd_gfec::FragmentLayout,
        fragments: &[(ProviderId, String)],
    ) -> SchemeResult<(Bytes, BatchReport)> {
        let ranking = match self.config.fragment_selection {
            FragmentSelection::CheapestEgress => self.evaluator.cheapest_egress_first(),
            FragmentSelection::Fastest => self.evaluator.fastest_first(),
        };
        // A fragment is a candidate when its provider is up, its stored
        // bytes are current (no pending replay, not dirtied by a
        // degraded update), ordered by the selection policy with
        // breaker-suspect providers last.
        let now = self.now();
        let mut candidates: Vec<(usize, ProviderId, &String)> = fragments
            .iter()
            .enumerate()
            .filter(|(i, (p, name))| {
                self.provider(*p).is_available()
                    && !self.log_l().is_pending(*p, &Self::key(name))
                    && !self.dirty_l().contains(path, *i)
            })
            .map(|(i, (p, name))| (i, *p, name))
            .collect();
        candidates.sort_by_key(|(_, p, _)| {
            (
                !self.health.admits(*p, now),
                ranking.iter().position(|r| r == p).unwrap_or(usize::MAX),
            )
        });

        if self.telemetry.enabled() && candidates.len() < fragments.len() {
            // Some fragment was unreachable or stale: this read runs
            // degraded (or fails below) — worth a mark either way.
            self.telemetry
                .event("read.degraded")
                .field("path", path)
                .field("reachable", candidates.len() as u64)
                .field("total", fragments.len() as u64)
                .emit();
            self.telemetry.inc("read.degraded", 1);
            // One event per missing fragment so the exposure tracker can
            // attribute the degradation to a fragment and its provider.
            for (i, (p, _)) in fragments.iter().enumerate() {
                if candidates.iter().any(|(ci, _, _)| *ci == i) {
                    continue;
                }
                self.telemetry
                    .event("read.degraded.fragment")
                    .field("path", path)
                    .field("fragment", i as u64)
                    .field("provider", self.provider(*p).name())
                    .emit();
            }
        }

        let m = layout.m;
        if candidates.len() < m {
            return Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: format!(
                    "{} of {} fragments reachable, need {m}",
                    candidates.len(),
                    fragments.len()
                ),
            });
        }

        // Fan the read out on the event engine: `m` required fragment
        // fetches in flight at once, redundant extras after the hedge
        // deadline, first `m` completions win, stragglers cancelled.
        let frag_index: Vec<usize> = candidates.iter().map(|(i, _, _)| *i).collect();
        let fanout_candidates: Vec<(ProviderId, String)> =
            candidates.into_iter().map(|(_, p, name)| (p, name.clone())).collect();
        let mut fanout =
            ReadFanout { hyrd: self, span: "fetch_fragment", candidates: fanout_candidates };
        let Some(outcome) = engine::fanout_read(&mut fanout, m, &self.config.hedge, self.now())
        else {
            return Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "fragment fetches failed mid-read".to_string(),
            });
        };
        self.note_hedges(&outcome.hedges);
        let FanoutOutcome { winners, report, .. } = outcome;
        let got: Vec<Fragment> = winners
            .into_iter()
            // `into` reclaims the Bytes' unique buffer — no copy of the
            // fragment payload.
            .map(|w| Fragment::new(frag_index[w.candidate], w.payload.into()))
            .collect();
        let ops = report;
        let object = {
            let _dec = self
                .telemetry
                .span_with("ec.decode")
                .field("path", path)
                .field("fragments", got.len() as u64)
                .start();
            let wall = self.wall_start();
            let object = decode_object_parallel(self.code.as_code(), &self.planner, layout, &got)?;
            self.observe_wall("ec.decode_wall_ns", wall);
            object
        };
        Ok((Bytes::from(object), ops))
    }

    /// After a large read, track hotness and install a whole-object copy
    /// on the fastest performance-oriented provider once the file crosses
    /// the configured read count (Figure 2's overlap region). The fill is
    /// background traffic: it costs ops/bytes, not user latency.
    ///
    /// `inode` is the snapshot the fragments were read from. The install
    /// commits through [`ShardedMetaStore::set_placement_if_version`]
    /// at that snapshot's version: if a concurrent update (or delete)
    /// moved the file since, the staged copy holds pre-update bytes and
    /// is removed instead of installed — a hot copy must never shadow
    /// newer fragments.
    fn maybe_cache_hot(
        &self,
        path: &NormPath,
        inode: &hyrd_metastore::Inode,
        data: &Bytes,
        batch: BatchReport,
    ) -> BatchReport {
        let Some(threshold) = self.config.hot_read_threshold else {
            // No hot-copy cache, but the adaptive policy still wants
            // heat on erasure-coded reads.
            if self.config.policy.enabled {
                self.reads_bump(path);
            }
            return batch;
        };
        let count = self.reads_bump(path);
        if count != threshold {
            return batch;
        }
        let Placement::ErasureCoded { layout, fragments, hot_copy: None } = &inode.placement else {
            return batch;
        };
        let Some(&target) = self.evaluator.performance_tier().first() else {
            return batch;
        };
        let name = format!("{}.hot", crate::scheme::object_name(path.as_str()));
        let now = self.now();
        let hot_key = Self::key(&name);
        match self.guarded(target, |p| p.put(&hot_key, data.clone())) {
            Ok(out) => {
                self.integrity_l().record(&name, data);
                let landed = self.meta.set_placement_if_version(
                    path,
                    inode.version,
                    Placement::ErasureCoded {
                        layout: *layout,
                        fragments: fragments.clone(),
                        hot_copy: Some((target, name.clone())),
                    },
                    inode.size,
                    now,
                );
                if !matches!(landed, Ok(true)) {
                    // Raced an update or delete: the bytes we staged are
                    // already stale. Take the copy back out.
                    self.integrity_l().forget(&name);
                    let mut ops = vec![out.report];
                    match self.guarded(target, |p| p.remove(&hot_key)) {
                        Ok(rm) => ops.push(rm.report),
                        Err(CloudError::NoSuchObject { .. })
                        | Err(CloudError::NoSuchContainer { .. }) => {}
                        Err(_) => self.wal_log_remove(target, hot_key),
                    }
                    if self.telemetry.enabled() {
                        self.telemetry
                            .event("hot.install_raced")
                            .field("path", path.as_str())
                            .emit();
                        self.telemetry.inc("hot.install_races", 1);
                    }
                    return batch.with_background(BatchReport::parallel(ops));
                }
                let meta_batch = self.flush_metadata();
                batch.with_background(BatchReport::parallel(vec![out.report]).then(meta_batch))
            }
            Err(_) => batch,
        }
    }

    // ------------------------------------------------------------------
    // Update
    // ------------------------------------------------------------------

    fn update_replicated(
        &self,
        path: &NormPath,
        providers: Vec<ProviderId>,
        object: String,
        size: u64,
        offset: u64,
        data: &[u8],
    ) -> SchemeResult<BatchReport> {
        // Base version: write-through cache, or one replica read.
        let (mut content, read_batch) = match self.cache_l().get(path.as_str()) {
            Some(b) => (b.to_vec(), BatchReport::empty()),
            None => {
                let (b, r) = self.read_replicated(path.as_str(), &providers, &object)?;
                (b.to_vec(), r)
            }
        };
        debug_assert_eq!(content.len() as u64, size);
        // Keep the overwritten window so a totally failed update can
        // restore the pre-update content in the log (the update is
        // reported failed; replaying its bytes anyway would diverge).
        let old_window = content[offset as usize..offset as usize + data.len()].to_vec();
        content[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        let bytes = Bytes::from(content);
        // Ranged write: only the modified bytes travel to each replica
        // (the Put function "writes or modifies a file", §III-D).
        // Unavailable replicas get the *full* new content logged so the
        // consistency update restores a complete object.
        let key = Self::key(&object);
        let patch = Bytes::copy_from_slice(data);
        let _intent = self.journal.begin(Intent::UpdateReplicated {
            path: path.as_str().to_string(),
            object: object.clone(),
            providers: providers.clone(),
            bytes: bytes.clone(),
        });
        let mut ops = Vec::new();
        let mut live = 0;
        let mut rejected: Vec<ProviderId> = Vec::new();
        for &t in &providers {
            if !self.health.admits(t, self.now()) {
                self.note_breaker_reject(t);
                rejected.push(t);
                self.wal_log_put(t, key.clone(), bytes.clone());
                continue;
            }
            match self.guarded(t, |p| p.put_range(&key, offset, patch.clone())) {
                Ok(out) => {
                    ops.push(out.report);
                    live += 1;
                }
                Err(_) => self.wal_log_put(t, key.clone(), bytes.clone()),
            }
        }
        if live == 0 && !rejected.is_empty() {
            // Desperation pass (see put_replicated): no admitted replica
            // took the update, so open breakers lose their veto. A forced
            // *ranged* write would land on a possibly-stale base — this
            // replica was breaker-rejected, so its recent writes may have
            // been missed. Ship the whole post-update object instead,
            // then discharge the log entry it makes redundant.
            for t in rejected {
                self.health.reset(t);
                if let Ok(out) = self.guarded(t, |p| p.put(&key, bytes.clone())) {
                    ops.push(out.report);
                    live += 1;
                    self.wal_discharge(t, &key);
                }
            }
        }
        let write_batch = BatchReport::parallel(ops);
        if live == 0 {
            // The update failed outright: supersede the logged entries
            // with the pre-update content so replay restores the state
            // the caller was told still stands.
            let mut old = bytes.to_vec();
            old[offset as usize..offset as usize + old_window.len()].copy_from_slice(&old_window);
            let old_bytes = Bytes::from(old);
            for &t in &providers {
                self.wal_log_put(t, key.clone(), old_bytes.clone());
            }
            return Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "no replica target available for update".to_string(),
            });
        }
        // The object's authoritative content changed: refresh the digest
        // (live replicas hold it; logged replicas will after replay).
        self.integrity_l().record(&object, &bytes);
        self.cache_l().put(path.as_str(), bytes);
        let now = self.now();
        self.meta.set_placement(path, Placement::Replicated { providers, object }, size, now)?;
        Ok(read_batch.then(write_batch).then(self.flush_metadata()))
    }

    #[allow(clippy::too_many_arguments)]
    fn update_erasure(
        &self,
        path: &NormPath,
        layout: hyrd_gfec::FragmentLayout,
        fragments: Vec<(ProviderId, String)>,
        hot_copy: Option<(ProviderId, String)>,
        size: u64,
        offset: u64,
        data: &[u8],
    ) -> SchemeResult<BatchReport> {
        // One engine for every code and every availability state: ranged
        // RMW when all touched providers are up, the window-decode
        // degraded path otherwise (missed fragments go dirty and are
        // rebuilt by recover_provider).
        let lookup = {
            let fleet = self.fleet.clone();
            move |id: ProviderId| fleet.get(id).expect("fleet member").clone()
        };
        // The intent starts with an empty write set: it is amended with
        // the planned fragment writes *inside* the engine, after the
        // deltas are computed but before the first provider mutation, so
        // a crash earlier than that rolls back to "nothing happened".
        let intent = self.journal.begin(Intent::UpdateErasure {
            path: path.as_str().to_string(),
            writes: Vec::new(),
            hot_remove: hot_copy.clone(),
        });
        let seq = intent.seq();
        let wal_cb = |writes: &[FragWrite]| self.journal.amend_update_writes(seq, writes.to_vec());
        let wal: Option<&dyn Fn(&[FragWrite])> =
            if self.journal.enabled() { Some(&wal_cb) } else { None };
        let outcome = crate::ecops::ranged_update_with(
            self.code.as_code(),
            &lookup,
            &self.telemetry,
            &layout,
            &fragments,
            path.as_str(),
            offset as usize,
            data,
            wal,
        )?;
        let mut batch = outcome.batch;
        {
            let mut dirty = self.dirty_l();
            for idx in outcome.missed {
                dirty.mark(path.as_str(), idx);
            }
        }
        self.sync_dirty_journal();
        // Ranged writes changed the fragments in place; the recorded
        // whole-fragment digests no longer apply. Drop them — reads fall
        // back to `Unknown` until the scrub pass re-records them.
        {
            let mut integrity = self.integrity_l();
            for (_, name) in &fragments {
                integrity.forget(name);
            }
        }

        // A stale hot copy must not serve future reads: drop it.
        let mut new_hot = hot_copy;
        if let Some((p, name)) = new_hot.take() {
            let hot_key = Self::key(&name);
            self.integrity_l().forget(&name);
            match self.guarded(p, |prov| prov.remove(&hot_key)) {
                Ok(out) => batch = batch.with_background(BatchReport::parallel(vec![out.report])),
                // Verifiably gone already — nothing left to reclaim.
                Err(CloudError::NoSuchObject { .. }) | Err(CloudError::NoSuchContainer { .. }) => {}
                // Outage, timeout, retries exhausted: the stale copy may
                // well still occupy (billed) provider storage. Log a
                // pending remove so recovery reclaims it.
                Err(_) => self.wal_log_remove(p, hot_key),
            }
        }
        // The content changed, so accumulated heat describes a file that
        // no longer exists. Reset unconditionally — not just when a hot
        // copy had to be dropped — or a file one read short of the
        // threshold gets a hot copy on its first post-update read.
        self.reads_remove(path);

        let now = self.now();
        self.meta.set_placement(
            path,
            Placement::ErasureCoded { layout, fragments, hot_copy: None },
            size,
            now,
        )?;
        Ok(batch.then(self.flush_metadata()))
    }

    // ------------------------------------------------------------------
    // Inherent API mirrored by the Scheme/SharedScheme impls
    // ------------------------------------------------------------------

    /// Creates a file, classifying it through the Workload Monitor.
    pub fn create_file(&self, path: &str, data: &[u8]) -> SchemeResult<BatchReport> {
        let _span = self
            .telemetry
            .span_with("create_file")
            .field("path", path)
            .field("bytes", data.len() as u64)
            .start();
        let path = NormPath::parse(path)?;
        let result = match self.monitor_l().classify(data.len() as u64) {
            DataClass::SmallFile | DataClass::Metadata => self.create_small(&path, data),
            DataClass::LargeFile => self.create_large(&path, data),
        };
        if result.is_err() {
            // The file never came to exist; keep the monitor describing
            // live data only (its fractions feed the placement policy).
            self.monitor_l().forget(data.len() as u64);
        }
        result
    }

    /// Reads a whole file (degraded reads during outages are automatic).
    pub fn read_file(&self, path: &str) -> SchemeResult<(Bytes, BatchReport)> {
        let _span = self.telemetry.span_with("read_file").field("path", path).start();
        let npath = NormPath::parse(path)?;
        // Clone the placement out of the metadata stripe: the lock must
        // not be held across provider fetches (other sessions' metadata
        // operations would serialize behind this read).
        let mut inode = self.meta.inode(&npath)?;
        // A concurrent migration can flip the placement and GC the old
        // objects between our metadata fetch and the provider ops. That
        // manifests as a read error against a placement whose inode
        // version has since moved — re-fetch and retry with the fresh
        // placement. Version-unchanged errors (real outages) return
        // unchanged, so non-migrating runs behave exactly as before.
        const PLACEMENT_RETRIES: usize = 4;
        let mut attempts = 0;
        loop {
            let err = match self.read_placed(&npath, path, &inode) {
                Ok(out) => return Ok(out),
                Err(err) => err,
            };
            attempts += 1;
            if attempts >= PLACEMENT_RETRIES {
                return Err(err);
            }
            match self.meta.inode(&npath) {
                Ok(fresh) if fresh.version != inode.version => inode = fresh,
                _ => return Err(err),
            }
        }
    }

    /// One read attempt against a fixed placement snapshot.
    fn read_placed(
        &self,
        npath: &NormPath,
        path: &str,
        inode: &hyrd_metastore::Inode,
    ) -> SchemeResult<(Bytes, BatchReport)> {
        match &inode.placement {
            Placement::Pending => Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "file has no placement".to_string(),
            }),
            Placement::Replicated { providers, object } => {
                let out = self.read_replicated(path, providers, object)?;
                if self.config.policy.enabled {
                    // The adaptive policy wants heat on every class of
                    // read; without it, promoted files would look cold
                    // and ping-pong straight back to erasure coding.
                    self.reads_bump(npath);
                }
                Ok(out)
            }
            Placement::ErasureCoded { layout, fragments, hot_copy } => {
                // Prefer the hot copy (one fast whole-object Get) — but
                // only when it is current (no pending replay), its
                // breaker admits the call, and its bytes verify; any
                // doubt falls back to the erasure-coded truth.
                if let Some((p, name)) = hot_copy {
                    let hot_key = Self::key(name);
                    if !self.log_l().is_pending(*p, &hot_key) && self.health.admits(*p, self.now())
                    {
                        if let Ok(out) = self.guarded(*p, |prov| prov.get(&hot_key)) {
                            match self.check(*p, name, &out.value) {
                                Verdict::Corrupt => self.note_corruption(*p, name),
                                Verdict::Verified | Verdict::Unknown => {
                                    if self.config.policy.enabled {
                                        self.reads_bump(npath);
                                    }
                                    return Ok((
                                        out.value,
                                        BatchReport::parallel(vec![out.report]),
                                    ));
                                }
                            }
                        }
                    }
                }
                if self.telemetry.enabled() && hot_copy.is_some() {
                    // The fast whole-object path existed but could not
                    // serve this read (stale, rejected or corrupt).
                    self.telemetry.event("read.fallback").field("path", path).emit();
                    self.telemetry.inc("read.fallbacks", 1);
                }
                let (bytes, batch) = self.read_erasure(path, layout, fragments)?;
                let batch = self.maybe_cache_hot(npath, inode, &bytes, batch);
                Ok((bytes, batch))
            }
        }
    }

    /// Overwrites a byte range.
    pub fn update_file(&self, path: &str, offset: u64, data: &[u8]) -> SchemeResult<BatchReport> {
        let _span = self
            .telemetry
            .span_with("update_file")
            .field("path", path)
            .field("offset", offset)
            .field("bytes", data.len() as u64)
            .start();
        let npath = NormPath::parse(path)?;
        let inode = self.meta.inode(&npath)?;
        let size = inode.size;
        // `offset + len` can wrap for offsets near `u64::MAX`, which
        // would pass a plain `>` check and then panic at the slice index
        // in the update paths below. Checked arithmetic keeps adversarial
        // offsets in the error path.
        let in_range = offset.checked_add(data.len() as u64).is_some_and(|end| end <= size);
        if !in_range {
            return Err(SchemeError::BadRange {
                path: path.to_string(),
                offset,
                len: data.len() as u64,
                size,
            });
        }
        match inode.placement {
            Placement::Pending => Err(SchemeError::DataUnavailable {
                path: path.to_string(),
                detail: "file has no placement".to_string(),
            }),
            Placement::Replicated { providers, object } => {
                self.update_replicated(&npath, providers, object, size, offset, data)
            }
            Placement::ErasureCoded { layout, fragments, hot_copy } => {
                self.update_erasure(&npath, layout, fragments, hot_copy, size, offset, data)
            }
        }
    }

    /// Deletes a file and its physical objects.
    pub fn delete_file(&self, path: &str) -> SchemeResult<BatchReport> {
        let _span = self.telemetry.span_with("delete_file").field("path", path).start();
        let npath = NormPath::parse(path)?;
        // Enumerate the doomed objects and journal the intent *before*
        // touching metadata or providers: a crash mid-delete then rolls
        // forward (finish the removes) instead of leaking billed storage.
        let inode = self.meta.inode(&npath)?;
        let mut doomed: Vec<(ProviderId, String)> = Vec::new();
        match &inode.placement {
            Placement::Pending => {}
            Placement::Replicated { providers, object } => {
                for &p in providers {
                    doomed.push((p, object.clone()));
                }
            }
            Placement::ErasureCoded { fragments, hot_copy, .. } => {
                for (p, name) in fragments {
                    doomed.push((*p, name.clone()));
                }
                if let Some((p, name)) = hot_copy {
                    doomed.push((*p, name.clone()));
                }
            }
        }
        let _intent = self
            .journal
            .begin(Intent::Delete { path: npath.as_str().to_string(), objects: doomed.clone() });
        self.meta.remove_file(&npath)?;
        // Cache and dirty-set keys are *normalized* paths (that is what
        // the write paths insert); evicting under the caller's raw
        // spelling would leave a live entry behind for aliases like
        // `/a//b`, and a stale cached body later poisons update digests.
        self.cache_l().remove(npath.as_str());
        self.reads_remove(&npath);
        self.dirty_l().forget(npath.as_str());
        self.sync_dirty_journal();
        self.monitor_l().forget(inode.size);

        let mut ops = Vec::new();
        let mut remove_one = |p: ProviderId, name: &str| {
            let key = Self::key(name);
            self.integrity_l().forget(name);
            match self.guarded(p, |prov| prov.remove(&key)) {
                Ok(out) => ops.push(out.report),
                // The object verifiably does not exist (e.g. a logged
                // write that never landed): nothing to reclaim.
                Err(CloudError::NoSuchObject { .. }) | Err(CloudError::NoSuchContainer { .. }) => {}
                // Unavailable, timed out, retries exhausted — the object
                // may well still be there. Dropping the metadata while
                // leaving the bytes behind would leak billed storage
                // forever; log a pending remove so recovery reclaims it.
                Err(_) => self.wal_log_remove(p, key),
            }
        };
        for (p, name) in &doomed {
            remove_one(*p, name);
        }
        Ok(BatchReport::parallel(ops).then(self.flush_metadata()))
    }

    /// Lists a directory; fetches its metadata block from the fastest
    /// available replica first (the metadata access the workload studies
    /// say dominates).
    pub fn list_dir(&self, path: &str) -> SchemeResult<(Vec<String>, BatchReport)> {
        let _span = self.telemetry.span_with("list_dir").field("path", path).start();
        let npath = NormPath::parse(path)?;
        let name = MetadataBlock::object_name(&npath);
        let targets = self.replica_targets();
        let batch = match self.read_replicated(path, &targets, &name) {
            Ok((_bytes, batch)) => batch,
            // Directory never flushed (or all replicas down): local view,
            // zero ops. Availability of listings degrades gracefully.
            Err(_) => BatchReport::empty(),
        };
        let names = self
            .meta
            .list(&npath)?
            .into_iter()
            .map(|e| match e {
                hyrd_metastore::namespace::DirEntry::Dir(n) => n,
                hyrd_metastore::namespace::DirEntry::File(n, _) => n,
            })
            .collect();
        Ok((names, batch))
    }

    /// Logical size of a file.
    pub fn file_size(&self, path: &str) -> Option<u64> {
        let npath = NormPath::parse(path).ok()?;
        self.meta.inode(&npath).ok().map(|i| i.size)
    }
}

/// The dispatcher's side of a fan-out read: the event engine owns the
/// timeline, this adapter owns the cloud. `candidates` are ranked
/// `(provider, object-name)` pairs; every fetch runs through the full
/// hardening stack ([`Hyrd::guarded`]: breaker admission, retries with
/// virtual-clock backoff, health bookkeeping) and integrity check, and
/// every admission/cancellation goes to the provider's queue.
struct ReadFanout<'a> {
    hyrd: &'a Hyrd,
    /// Telemetry span label ("fetch_replica" / "fetch_fragment").
    span: &'static str,
    candidates: Vec<(ProviderId, String)>,
}

impl FanoutDriver for ReadFanout<'_> {
    fn candidates(&self) -> usize {
        self.candidates.len()
    }

    fn prepare(&mut self, idx: usize, kind: LaunchKind) -> bool {
        let (id, _) = self.candidates[idx];
        if self.hyrd.health.admits(id, self.hyrd.now()) {
            return true;
        }
        match kind {
            LaunchKind::Required => {
                // Last-resort candidate: every healthier replica already
                // failed, so an open breaker must not veto the read.
                // Force it closed — the attempt records a real outcome.
                self.hyrd.health.reset(id);
                true
            }
            // A hedge is opportunistic extra work; aiming it at a
            // breaker-suspect provider would spend the redundancy on
            // the least likely candidate and poke a known-bad endpoint.
            LaunchKind::Hedge => false,
        }
    }

    fn attempt(&mut self, idx: usize) -> Attempt {
        let (id, name) = &self.candidates[idx];
        let key = Hyrd::key(name);
        let fetched = {
            let _get = self.hyrd.telemetry.span_labeled(self.span, self.hyrd.provider(*id).name());
            self.hyrd.guarded(*id, |p| p.get(&key))
        };
        match fetched {
            Ok(out) => match self.hyrd.check(*id, name, &out.value) {
                Verdict::Corrupt => {
                    self.hyrd.note_corruption(*id, name);
                    Attempt::Corrupt { report: out.report }
                }
                Verdict::Verified | Verdict::Unknown => {
                    Attempt::Done { report: out.report, payload: out.value }
                }
            },
            Err(_) => Attempt::Failed, // raced an outage; try the next one
        }
    }

    fn enqueue(&mut self, idx: usize, now_ns: u64, service_ns: u64) -> hyrd_cloudsim::Admission {
        let provider = self.hyrd.provider(self.candidates[idx].0);
        let admission = provider.queue().admit(now_ns, service_ns);
        if self.hyrd.telemetry.enabled() {
            // Registry-only backlog gauges (never the trace): the depth
            // this arrival contends with, last value + distribution.
            let depth = provider.queue().busy_at(now_ns) as u64;
            self.hyrd
                .telemetry
                .set_gauge(&format!("engine.queue_depth[{}]", provider.name()), depth as i64);
            self.hyrd.telemetry.observe_labeled("engine.queue_depth", provider.name(), depth);
        }
        admission
    }

    fn release(&mut self, idx: usize, done_ns: u64, free_at_ns: u64) {
        self.hyrd.provider(self.candidates[idx].0).queue().release_early(done_ns, free_at_ns);
    }

    fn cancelled(&mut self, idx: usize, report: &OpReport, billed: std::time::Duration) {
        self.hyrd.provider(self.candidates[idx].0).credit_cancelled(report, billed);
    }
}

impl Scheme for Hyrd {
    fn name(&self) -> &str {
        "HyRD"
    }

    fn create_file(&mut self, path: &str, data: &[u8]) -> SchemeResult<BatchReport> {
        Hyrd::create_file(self, path, data)
    }

    fn read_file(&mut self, path: &str) -> SchemeResult<(Bytes, BatchReport)> {
        Hyrd::read_file(self, path)
    }

    fn update_file(&mut self, path: &str, offset: u64, data: &[u8]) -> SchemeResult<BatchReport> {
        Hyrd::update_file(self, path, offset, data)
    }

    fn delete_file(&mut self, path: &str) -> SchemeResult<BatchReport> {
        Hyrd::delete_file(self, path)
    }

    fn list_dir(&mut self, path: &str) -> SchemeResult<(Vec<String>, BatchReport)> {
        Hyrd::list_dir(self, path)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        Hyrd::file_size(self, path)
    }

    fn recover_provider(&mut self, id: ProviderId) -> SchemeResult<(RecoveryReport, BatchReport)> {
        Hyrd::recover_provider(self, id)
    }
}

impl SharedScheme for Hyrd {
    fn name(&self) -> &str {
        "HyRD"
    }

    fn create_file(&self, path: &str, data: &[u8]) -> SchemeResult<BatchReport> {
        Hyrd::create_file(self, path, data)
    }

    fn read_file(&self, path: &str) -> SchemeResult<(Bytes, BatchReport)> {
        Hyrd::read_file(self, path)
    }

    fn update_file(&self, path: &str, offset: u64, data: &[u8]) -> SchemeResult<BatchReport> {
        Hyrd::update_file(self, path, offset, data)
    }

    fn delete_file(&self, path: &str) -> SchemeResult<BatchReport> {
        Hyrd::delete_file(self, path)
    }

    fn list_dir(&self, path: &str) -> SchemeResult<(Vec<String>, BatchReport)> {
        Hyrd::list_dir(self, path)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        Hyrd::file_size(self, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lock-striping refactor's whole point: the client is shareable
    /// across threads.
    #[test]
    fn hyrd_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Hyrd>();
    }

    #[test]
    fn oversized_cache_put_is_rejected_without_flushing_live_entries() {
        let mut cache = SmallFileCache::new(100);
        cache.put("/a", Bytes::from(vec![1u8; 40]));
        cache.put("/b", Bytes::from(vec![2u8; 40]));
        assert_eq!(cache.used, 80);

        // A payload over the whole budget must not land — and, crucially,
        // must not evict every live entry on its way to being evicted
        // itself (the pre-fix behaviour flushed the entire cache).
        cache.put("/huge", Bytes::from(vec![3u8; 101]));
        assert!(cache.get("/huge").is_none());
        assert_eq!(cache.used, 80, "live entries survive an oversized put");
        assert_eq!(cache.map.len(), 2);
        assert!(cache.get("/a").is_some());
        assert!(cache.get("/b").is_some());
    }

    #[test]
    fn oversized_cache_put_still_invalidates_the_stale_entry() {
        let mut cache = SmallFileCache::new(100);
        cache.put("/f", Bytes::from(vec![1u8; 30]));
        cache.put("/other", Bytes::from(vec![2u8; 30]));
        // The file grew past the budget: its cached bytes are stale and
        // must go, but unrelated entries stay.
        cache.put("/f", Bytes::from(vec![9u8; 200]));
        assert!(cache.get("/f").is_none());
        assert!(cache.get("/other").is_some());
        assert_eq!(cache.used, 30);
        assert_eq!(cache.map.len(), 1);
    }

    #[test]
    fn exactly_budget_sized_put_is_admitted() {
        let mut cache = SmallFileCache::new(100);
        cache.put("/f", Bytes::from(vec![1u8; 100]));
        assert!(cache.get("/f").is_some());
        assert_eq!(cache.used, 100);
    }
}
