//! The [`Scheme`] trait: one interface over every redundant data
//! distribution layout — HyRD itself and the baselines it is evaluated
//! against (RACS, DuraCloud, DepSky, single-cloud). The figure harness
//! replays identical workloads through `&mut dyn Scheme` and compares the
//! resulting [`BatchReport`]s.

use bytes::Bytes;

use hyrd_gcsapi::{BatchReport, CloudError, ProviderId};
use hyrd_gfec::GfecError;
use hyrd_metastore::MetaError;

/// Errors surfaced by scheme operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeError {
    /// An underlying provider operation failed in a way the scheme could
    /// not mask (e.g. container missing).
    Cloud(CloudError),
    /// A metadata operation failed (bad path, missing file, …).
    Meta(MetaError),
    /// Erasure coding failed (programming or corruption error).
    Code(GfecError),
    /// Too many providers are unavailable to serve the request — the
    /// availability loss the paper's redundancy exists to prevent.
    DataUnavailable {
        /// The file concerned.
        path: String,
        /// What was missing.
        detail: String,
    },
    /// The requested byte range is outside the file.
    BadRange {
        /// The file concerned.
        path: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual size.
        size: u64,
    },
}

impl From<CloudError> for SchemeError {
    fn from(e: CloudError) -> Self {
        SchemeError::Cloud(e)
    }
}

impl From<MetaError> for SchemeError {
    fn from(e: MetaError) -> Self {
        SchemeError::Meta(e)
    }
}

impl From<GfecError> for SchemeError {
    fn from(e: GfecError) -> Self {
        SchemeError::Code(e)
    }
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::Cloud(e) => write!(f, "cloud error: {e}"),
            SchemeError::Meta(e) => write!(f, "metadata error: {e}"),
            SchemeError::Code(e) => write!(f, "erasure-coding error: {e}"),
            SchemeError::DataUnavailable { path, detail } => {
                write!(f, "data unavailable for '{path}': {detail}")
            }
            SchemeError::BadRange { path, offset, len, size } => {
                write!(f, "range {offset}+{len} outside '{path}' ({size} bytes)")
            }
        }
    }
}

impl std::error::Error for SchemeError {
    /// Exposes the wrapped layer error so `anyhow`-style chain walking
    /// (and plain `{:#}` reporting) reaches the root cause.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchemeError::Cloud(e) => Some(e),
            SchemeError::Meta(e) => Some(e),
            SchemeError::Code(e) => Some(e),
            SchemeError::DataUnavailable { .. } | SchemeError::BadRange { .. } => None,
        }
    }
}

/// Result alias for scheme operations.
pub type SchemeResult<T> = Result<T, SchemeError>;

/// Stable physical object name for a file path (FNV-1a 64, hex). Derived
/// from the *path* rather than a per-client counter so that independent
/// clients sharing one fleet never collide on unrelated files, and a
/// client attaching to an existing namespace regenerates the same names.
pub fn object_name(path: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in path.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    format!("o{h:016x}")
}

/// A Cloud-of-Clouds data distribution scheme.
///
/// All methods report what the operation cost via [`BatchReport`]
/// (user-perceived latency from the parallel/serial composition of the
/// underlying provider ops, plus bytes and op counts for the cost
/// accounting).
pub trait Scheme {
    /// Scheme name for reports ("HyRD", "RACS", …).
    fn name(&self) -> &str;

    /// Creates a file with the given contents.
    fn create_file(&mut self, path: &str, data: &[u8]) -> SchemeResult<BatchReport>;

    /// Reads a whole file.
    fn read_file(&mut self, path: &str) -> SchemeResult<(Bytes, BatchReport)>;

    /// Overwrites `data.len()` bytes at `offset`.
    fn update_file(&mut self, path: &str, offset: u64, data: &[u8]) -> SchemeResult<BatchReport>;

    /// Deletes a file.
    fn delete_file(&mut self, path: &str) -> SchemeResult<BatchReport>;

    /// Lists a directory (a metadata access — fetches the directory's
    /// metadata from the cloud, which is where schemes differ).
    fn list_dir(&mut self, path: &str) -> SchemeResult<(Vec<String>, BatchReport)>;

    /// Logical size of a file, if it exists.
    fn file_size(&self, path: &str) -> Option<u64>;

    /// Runs the consistency update for a provider that has returned from
    /// an outage (§III-C phase 2): replays missed writes and rebuilds
    /// dirtied fragments. Until this runs, a returned provider may hold
    /// stale or missing objects and must not be counted on for
    /// redundancy. Returns what recovery moved.
    fn recover_provider(
        &mut self,
        id: ProviderId,
    ) -> SchemeResult<(crate::recovery::RecoveryReport, BatchReport)>;
}

/// The concurrency-ready CRUD surface: every operation takes `&self`, so
/// one client can serve many sessions at once. [`crate::dispatcher::Hyrd`]
/// implements this by lock-striping its mutable interior state (see
/// DESIGN.md §11); the single-session baselines keep the plain
/// `&mut self` [`Scheme`] trait. `Sync` is a supertrait on purpose: a
/// `&dyn SharedScheme` must be shareable across the worker threads of
/// `driver::multi_client`.
pub trait SharedScheme: Sync {
    /// Scheme name for reports ("HyRD", …).
    fn name(&self) -> &str;

    /// Creates a file with the given contents.
    fn create_file(&self, path: &str, data: &[u8]) -> SchemeResult<BatchReport>;

    /// Reads a whole file.
    fn read_file(&self, path: &str) -> SchemeResult<(Bytes, BatchReport)>;

    /// Overwrites `data.len()` bytes at `offset`.
    fn update_file(&self, path: &str, offset: u64, data: &[u8]) -> SchemeResult<BatchReport>;

    /// Deletes a file.
    fn delete_file(&self, path: &str) -> SchemeResult<BatchReport>;

    /// Lists a directory.
    fn list_dir(&self, path: &str) -> SchemeResult<(Vec<String>, BatchReport)>;

    /// Logical size of a file, if it exists.
    fn file_size(&self, path: &str) -> Option<u64>;
}

/// Adapts a [`SharedScheme`] to the `&mut self` [`Scheme`] trait so the
/// shared-state CRUD surface can run through the existing replay driver
/// unchanged (the driver never calls `recover_provider`; maintenance is
/// the harness's job and runs directly on the concrete client).
pub struct SharedAsScheme<'a>(pub &'a dyn SharedScheme);

impl Scheme for SharedAsScheme<'_> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn create_file(&mut self, path: &str, data: &[u8]) -> SchemeResult<BatchReport> {
        self.0.create_file(path, data)
    }

    fn read_file(&mut self, path: &str) -> SchemeResult<(Bytes, BatchReport)> {
        self.0.read_file(path)
    }

    fn update_file(&mut self, path: &str, offset: u64, data: &[u8]) -> SchemeResult<BatchReport> {
        self.0.update_file(path, offset, data)
    }

    fn delete_file(&mut self, path: &str) -> SchemeResult<BatchReport> {
        self.0.delete_file(path)
    }

    fn list_dir(&mut self, path: &str) -> SchemeResult<(Vec<String>, BatchReport)> {
        self.0.list_dir(path)
    }

    fn file_size(&self, path: &str) -> Option<u64> {
        self.0.file_size(path)
    }

    fn recover_provider(
        &mut self,
        _id: ProviderId,
    ) -> SchemeResult<(crate::recovery::RecoveryReport, BatchReport)> {
        Err(SchemeError::DataUnavailable {
            path: String::new(),
            detail: "recover_provider runs on the concrete client, not the shared adapter"
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrd_gcsapi::ProviderId;

    #[test]
    fn conversions_and_display() {
        let e: SchemeError = CloudError::Unavailable { provider: ProviderId(1) }.into();
        assert!(e.to_string().contains("provider#1"));
        let e: SchemeError = MetaError::NoSuchFile("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        let e: SchemeError = GfecError::SingularMatrix.into();
        assert!(e.to_string().contains("singular"));
        let e = SchemeError::DataUnavailable { path: "/f".into(), detail: "2 of 4 down".into() };
        assert!(e.to_string().contains("2 of 4 down"));
        let e = SchemeError::BadRange { path: "/f".into(), offset: 9, len: 5, size: 10 };
        assert!(e.to_string().contains("9+5"));
    }

    #[test]
    fn source_reaches_the_wrapped_layer_error() {
        use std::error::Error;
        let e: SchemeError = CloudError::Unavailable { provider: ProviderId(1) }.into();
        let src = e.source().expect("wrapped errors expose a source");
        assert!(src.to_string().contains("unavailable"));
        assert!(src.downcast_ref::<CloudError>().is_some());

        let e: SchemeError = MetaError::NoSuchFile("/x".into()).into();
        assert!(e.source().expect("meta source").downcast_ref::<MetaError>().is_some());

        let e = SchemeError::DataUnavailable { path: "/f".into(), detail: "d".into() };
        assert!(e.source().is_none(), "scheme-level verdicts have no deeper cause");
    }
}
