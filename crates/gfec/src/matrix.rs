//! Dense matrices over GF(2^8).
//!
//! These are small (`n <= 255` per side) matrices used to build and invert
//! encoding matrices, so a simple row-major `Vec<u8>` with Gaussian
//! elimination is the right tool — no blocking or pivot heuristics needed
//! beyond partial pivoting for singularity detection.

use crate::gf256::Gf256;
use crate::{GfecError, Result};

/// A row-major dense matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, Gf256::ONE);
        }
        m
    }

    /// Builds a matrix from nested slices (rows of equal length).
    ///
    /// # Panics
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<u8>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Vandermonde matrix: `A[i][j] = (g^i)^j` — any `cols` rows are
    /// linearly independent because the evaluation points `g^i` are
    /// distinct field elements.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 255, "GF(2^8) Vandermonde limited to 255 rows");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = Gf256::exp(i);
            for j in 0..cols {
                m.set(i, j, x.pow(j as u32));
            }
        }
        m
    }

    /// Cauchy matrix `A[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i + cols`, `y_j = j` — every square submatrix is invertible,
    /// which makes Cauchy the safer construction for parity rows.
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(rows + cols <= 256, "Cauchy construction needs rows+cols <= 256 distinct elements");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let xi = Gf256((i + cols) as u8);
            for j in 0..cols {
                let yj = Gf256(j as u8);
                m.set(i, j, (xi + yj).inv());
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Gf256 {
        Gf256(self.data[r * self.cols + c])
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Gf256) {
        self.data[r * self.cols + c] = v.0;
    }

    /// Borrow one row as a byte slice.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix dimension mismatch in mul");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.0 == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get(k, j));
                }
            }
        }
        out
    }

    /// Returns a new matrix made of the given rows of `self`, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zero(indices.len(), self.cols);
        for (oi, &ri) in indices.iter().enumerate() {
            assert!(ri < self.rows, "row index out of range");
            let dst_start = oi * self.cols;
            out.data[dst_start..dst_start + self.cols].copy_from_slice(self.row(ri));
        }
        out
    }

    /// Gauss-Jordan inversion. Returns `GfecError::SingularMatrix` if the
    /// matrix has no inverse.
    pub fn invert(&self) -> Result<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Partial pivot: find a nonzero entry at or below the diagonal.
            let pivot =
                (col..n).find(|&r| a.get(r, col).0 != 0).ok_or(GfecError::SingularMatrix)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale pivot row to make the diagonal 1.
            let p = a.get(col, col).inv();
            a.scale_row(col, p);
            inv.scale_row(col, p);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.get(r, col);
                if f.0 == 0 {
                    continue;
                }
                a.add_scaled_row(r, col, f);
                inv.add_scaled_row(r, col, f);
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, f: Gf256) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, v * f);
        }
    }

    /// `row[dst] += f * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, f: Gf256) {
        for c in 0..self.cols {
            let v = self.get(dst, c) + f * self.get(src, c);
            self.set(dst, c, v);
        }
    }

    /// Multiplies this matrix by a set of equal-length data shards:
    /// `out[i] = sum_j A[i][j] * shards[j]`, the core codeword transform.
    ///
    /// # Panics
    /// Panics if `shards.len() != cols` or shard lengths differ.
    pub fn mul_shards(&self, shards: &[&[u8]]) -> Vec<Vec<u8>> {
        let len = shards.first().map_or(0, |s| s.len());
        let mut out = vec![Vec::new(); self.rows];
        self.mul_shards_into(shards, &mut out);
        debug_assert!(out.iter().all(|r| r.len() == len));
        out
    }

    /// Fused, cache-blocked `mul_shards` into caller-provided buffers —
    /// no per-call allocation once the buffers have capacity.
    ///
    /// Output rows are resized to the shard length and recomputed from
    /// scratch (any prior contents are discarded). The sweep is blocked
    /// along the byte axis in [`FUSED_BLOCK`](crate::gf256::FUSED_BLOCK)
    /// chunks, and within a block each shard is read once while hot and
    /// accumulated into *every* output row before moving on — memory
    /// traffic is one pass over the data plus one streaming pass per
    /// output row, instead of one full data sweep per row.
    ///
    /// # Panics
    /// Panics if `shards.len() != cols`, shard lengths differ, or
    /// `out.len() != rows`.
    pub fn mul_shards_into(&self, shards: &[&[u8]], out: &mut [Vec<u8>]) {
        assert_eq!(shards.len(), self.cols, "shard count must equal matrix cols");
        assert_eq!(out.len(), self.rows, "output row count must equal matrix rows");
        let len = shards.first().map_or(0, |s| s.len());
        assert!(shards.iter().all(|s| s.len() == len), "ragged shards");
        // Rows are fully overwritten by the j == 0 pass below, so a dirty
        // reused buffer only needs its length fixed, not a zero fill.
        for row in out.iter_mut() {
            row.resize(len, 0);
        }
        if self.cols == 0 {
            // No shards: `len` is zero and every row was just truncated.
            return;
        }
        let mut start = 0;
        while start < len {
            let end = (start + crate::gf256::FUSED_BLOCK).min(len);
            for (j, shard) in shards.iter().enumerate() {
                let src = &shard[start..end];
                for (i, row) in out.iter_mut().enumerate() {
                    if j == 0 {
                        // Overwrite instead of zero-then-accumulate: saves
                        // the memset and one read pass over every row.
                        crate::gf256::mul_slice(&mut row[start..end], src, self.get(i, 0));
                    } else {
                        crate::gf256::mul_slice_acc(&mut row[start..end], src, self.get(i, j));
                    }
                }
            }
            start = end;
        }
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c).0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn vandermonde_square_inverts() {
        for n in 1..=8 {
            let v = Matrix::vandermonde(n, n);
            let inv = v.invert().expect("vandermonde must invert");
            assert_eq!(v.mul(&inv), Matrix::identity(n));
            assert_eq!(inv.mul(&v), Matrix::identity(n));
        }
    }

    #[test]
    fn cauchy_every_square_submatrix_inverts() {
        // Take a 4x6 Cauchy and check all C(4..) square row/col picks of
        // small sizes invert — the defining property of Cauchy matrices.
        let c = Matrix::cauchy(4, 6);
        for r1 in 0..4 {
            for r2 in (r1 + 1)..4 {
                for c1 in 0..6 {
                    for c2 in (c1 + 1)..6 {
                        let sub = Matrix::from_rows(&[
                            vec![c.get(r1, c1).0, c.get(r1, c2).0],
                            vec![c.get(r2, c1).0, c.get(r2, c2).0],
                        ]);
                        sub.invert().expect("cauchy submatrix must invert");
                    }
                }
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let m = Matrix::from_rows(&[vec![1, 2], vec![1, 2]]);
        assert_eq!(m.invert().unwrap_err(), GfecError::SingularMatrix);
        let z = Matrix::zero(3, 3);
        assert_eq!(z.invert().unwrap_err(), GfecError::SingularMatrix);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let v = Matrix::vandermonde(5, 3);
        let s = v.select_rows(&[4, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
        assert_eq!(s.row(2), v.row(2));
    }

    #[test]
    fn mul_shards_matches_elementwise_mul() {
        let a = Matrix::cauchy(2, 3);
        let shards: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11, 12]];
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let out = a.mul_shards(&refs);
        for (i, row) in out.iter().enumerate() {
            for (b, byte) in row.iter().enumerate() {
                let mut expect = Gf256::ZERO;
                for j in 0..3 {
                    expect = expect + a.get(i, j) * Gf256(shards[j][b]);
                }
                assert_eq!(*byte, expect.0);
            }
        }
    }

    #[test]
    fn mul_shards_into_reuses_dirty_buffers() {
        let a = Matrix::cauchy(3, 4);
        let shards: Vec<Vec<u8>> = (0..4u8).map(|j| vec![j * 17 + 1; 100]).collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let expect = a.mul_shards(&refs);
        // Wrong-size, garbage-filled buffers must still produce identical
        // output — callers recycle parity buffers across stripes.
        let mut out = vec![vec![0xEEu8; 7], Vec::new(), vec![1u8; 500]];
        a.mul_shards_into(&refs, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn fused_blocked_mul_matches_row_at_a_time_reference() {
        // Lengths straddling the fused block boundary, checked against the
        // seed algorithm: one full naive sweep per output row.
        let a = Matrix::cauchy(2, 3);
        for len in [0usize, 1, crate::gf256::FUSED_BLOCK - 3, crate::gf256::FUSED_BLOCK + 5] {
            let shards: Vec<Vec<u8>> = (0..3u8)
                .map(|j| (0..len).map(|b| (b as u8).wrapping_mul(j + 3)).collect())
                .collect();
            let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
            let mut expect = vec![vec![0u8; len]; 2];
            for (i, row) in expect.iter_mut().enumerate() {
                for (j, shard) in refs.iter().enumerate() {
                    crate::gf256::reference::mul_slice_acc(row, shard, a.get(i, j));
                }
            }
            assert_eq!(a.mul_shards(&refs), expect, "len={len}");
        }
    }

    #[test]
    fn display_renders_hex_grid() {
        let m = Matrix::identity(2);
        let s = m.to_string();
        assert!(s.contains("01 00"));
        assert!(s.contains("00 01"));
    }
}
