//! RAID6: double parity (P + Q) tolerating any two erasures.
//!
//! This extends the paper's RAID5 choice for the large-file tier and backs
//! the `ablation_code_choice` experiment (DESIGN.md §4.4): what does HyRD
//! pay/gain if the Cloud-of-Clouds must survive two concurrent outages?
//!
//! P is the plain XOR parity; Q is the Reed-Solomon-style syndrome
//! `Q = sum_i g^i * D_i` over GF(2^8) — the classic Anvin construction
//! used by Linux md.

use crate::gf256::{mul_slice, mul_slice_acc, xor_slice, Gf256, FUSED_BLOCK};
use crate::{ErasureCode, Fragment, GfecError, Result};

/// Double-parity erasure code: `m` data fragments, parity fragments P
/// (index `m`) and Q (index `m + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Raid6 {
    m: usize,
}

impl Raid6 {
    /// Creates a RAID6 code over `m` data fragments (n = m + 2).
    pub fn new(m: usize) -> Result<Self> {
        if m == 0 || m + 2 > 255 {
            return Err(GfecError::InvalidParams { m, n: m + 2 });
        }
        Ok(Raid6 { m })
    }

    fn validate(&self, shards: &[&[u8]]) -> Result<usize> {
        if shards.len() != self.m {
            return Err(GfecError::NotEnoughFragments { have: shards.len(), need: self.m });
        }
        let len = shards[0].len();
        for s in shards {
            if s.len() != len {
                return Err(GfecError::FragmentSizeMismatch { expected: len, got: s.len() });
            }
        }
        Ok(len)
    }

    /// Rebuilds two lost data shards `(a, b)` from the survivors plus P
    /// and Q — the hardest RAID6 case, solved with the standard 2x2
    /// system over GF(2^8).
    fn rebuild_two_data(
        &self,
        by_index: &[Option<&Fragment>],
        a: usize,
        b: usize,
        shard_len: usize,
    ) -> Result<(Vec<u8>, Vec<u8>)> {
        let p = &by_index[self.m]
            .ok_or(GfecError::NotEnoughFragments { have: self.m, need: self.m })?
            .data;
        let q = &by_index[self.m + 1]
            .ok_or(GfecError::NotEnoughFragments { have: self.m, need: self.m })?
            .data;

        // Pxy = P ^ sum(surviving data); Qxy = Q ^ sum(g^i * surviving data)
        let mut pxy = p.clone();
        let mut qxy = q.clone();
        for (i, f) in by_index.iter().enumerate().take(self.m) {
            if let Some(f) = f {
                xor_slice(&mut pxy, &f.data);
                mul_slice_acc(&mut qxy, &f.data, Gf256::exp(i));
            }
        }
        // Solve: Da ^ Db = Pxy ; g^a*Da ^ g^b*Db = Qxy
        // => Da = (g^b * Pxy ^ Qxy) / (g^a ^ g^b); Db = Pxy ^ Da
        let ga = Gf256::exp(a);
        let gb = Gf256::exp(b);
        let denom = (ga + gb).inv();

        let mut da = vec![0u8; shard_len];
        mul_slice(&mut da, &pxy, gb);
        xor_slice(&mut da, &qxy);
        let mut da_final = vec![0u8; shard_len];
        mul_slice(&mut da_final, &da, denom);

        let mut db = pxy;
        xor_slice(&mut db, &da_final);
        Ok((da_final, db))
    }
}

impl ErasureCode for Raid6 {
    fn data_fragments(&self) -> usize {
        self.m
    }

    fn total_fragments(&self) -> usize {
        self.m + 2
    }

    fn encode(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>> {
        let mut parity = vec![Vec::new(), Vec::new()];
        self.encode_into(shards, &mut parity)?;
        Ok(parity)
    }

    fn encode_into(&self, shards: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<()> {
        let len = self.validate(shards)?;
        assert_eq!(parity.len(), 2, "RAID6 produces exactly P and Q");
        let (p_buf, q_buf) = parity.split_at_mut(1);
        let p = &mut p_buf[0];
        let q = &mut q_buf[0];
        // Shard 0 overwrites both rows (g^0 = 1, so Q's first term is a
        // plain copy too), so dirty reused buffers only need their length
        // fixed — no zero fill, and no wasted read pass over P and Q.
        p.resize(len, 0);
        q.resize(len, 0);
        // Fused pass: within each block, every shard is read once while hot
        // and accumulated into both P and Q before moving on.
        let mut start = 0;
        while start < len {
            let end = (start + FUSED_BLOCK).min(len);
            for (i, s) in shards.iter().enumerate() {
                let src = &s[start..end];
                if i == 0 {
                    p[start..end].copy_from_slice(src);
                    q[start..end].copy_from_slice(src);
                } else {
                    xor_slice(&mut p[start..end], src);
                    mul_slice_acc(&mut q[start..end], src, Gf256::exp(i));
                }
            }
            start = end;
        }
        Ok(())
    }

    fn parity_coefficients(&self) -> Vec<Vec<Gf256>> {
        vec![vec![Gf256::ONE; self.m], (0..self.m).map(Gf256::exp).collect()]
    }

    fn reconstruct(&self, available: &[Fragment], shard_len: usize) -> Result<Vec<Vec<u8>>> {
        let n = self.m + 2;
        if available.len() < self.m {
            return Err(GfecError::NotEnoughFragments { have: available.len(), need: self.m });
        }
        let mut by_index: Vec<Option<&Fragment>> = vec![None; n];
        for f in available {
            if f.index >= n {
                return Err(GfecError::BadFragmentIndex { index: f.index, n });
            }
            if by_index[f.index].is_some() {
                return Err(GfecError::DuplicateFragment { index: f.index });
            }
            if f.data.len() != shard_len {
                return Err(GfecError::FragmentSizeMismatch {
                    expected: shard_len,
                    got: f.data.len(),
                });
            }
            by_index[f.index] = Some(f);
        }

        let missing_data: Vec<usize> = (0..self.m).filter(|&i| by_index[i].is_none()).collect();
        match missing_data.len() {
            0 => Ok((0..self.m).map(|i| by_index[i].expect("present").data.clone()).collect()),
            1 => {
                let lost = missing_data[0];
                // Prefer P-based XOR rebuild; fall back to Q if P is gone.
                let rebuilt = if let Some(p) = by_index[self.m] {
                    let mut r = p.data.clone();
                    for (i, f) in by_index.iter().enumerate().take(self.m) {
                        if i != lost {
                            if let Some(f) = f {
                                xor_slice(&mut r, &f.data);
                            }
                        }
                    }
                    r
                } else if let Some(q) = by_index[self.m + 1] {
                    // Q ^ sum_{i != lost} g^i D_i = g^lost * D_lost
                    let mut syn = q.data.clone();
                    for (i, f) in by_index.iter().enumerate().take(self.m) {
                        if i != lost {
                            if let Some(f) = f {
                                mul_slice_acc(&mut syn, &f.data, Gf256::exp(i));
                            }
                        }
                    }
                    let mut r = vec![0u8; shard_len];
                    mul_slice(&mut r, &syn, Gf256::exp(lost).inv());
                    r
                } else {
                    return Err(GfecError::NotEnoughFragments {
                        have: available.len(),
                        need: self.m,
                    });
                };
                Ok((0..self.m)
                    .map(|i| {
                        if i == lost {
                            rebuilt.clone()
                        } else {
                            by_index[i].expect("present").data.clone()
                        }
                    })
                    .collect())
            }
            2 => {
                let (a, b) = (missing_data[0], missing_data[1]);
                let (da, db) = self.rebuild_two_data(&by_index, a, b, shard_len)?;
                Ok((0..self.m)
                    .map(|i| {
                        if i == a {
                            da.clone()
                        } else if i == b {
                            db.clone()
                        } else {
                            by_index[i].expect("present").data.clone()
                        }
                    })
                    .collect())
            }
            _ => Err(GfecError::NotEnoughFragments {
                have: self.m - missing_data.len() + 2,
                need: self.m,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_shards(m: usize, len: usize) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| (0..len).map(|b| (b as u8).wrapping_mul(17) ^ (i as u8 + 1)).collect())
            .collect()
    }

    fn frags_for(r: &Raid6, d: &[Vec<u8>]) -> Vec<Fragment> {
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let parity = r.encode(&refs).unwrap();
        let mut frags: Vec<Fragment> =
            d.iter().enumerate().map(|(i, x)| Fragment::new(i, x.clone())).collect();
        frags.push(Fragment::new(d.len(), parity[0].clone()));
        frags.push(Fragment::new(d.len() + 1, parity[1].clone()));
        frags
    }

    #[test]
    fn every_double_loss_recovers() {
        let m = 4;
        let r = Raid6::new(m).unwrap();
        let d = mk_shards(m, 40);
        let frags = frags_for(&r, &d);
        let n = m + 2;
        for a in 0..n {
            for b in (a + 1)..n {
                let avail: Vec<Fragment> =
                    frags.iter().filter(|f| f.index != a && f.index != b).cloned().collect();
                let got = r.reconstruct(&avail, 40).unwrap();
                assert_eq!(got, d, "lost=({a},{b})");
            }
        }
    }

    #[test]
    fn single_loss_recovers_via_q_when_p_also_gone() {
        let m = 3;
        let r = Raid6::new(m).unwrap();
        let d = mk_shards(m, 24);
        let frags = frags_for(&r, &d);
        // Lose data shard 1 AND parity P — forces the Q path.
        let avail: Vec<Fragment> =
            frags.iter().filter(|f| f.index != 1 && f.index != m).cloned().collect();
        assert_eq!(r.reconstruct(&avail, 24).unwrap(), d);
    }

    #[test]
    fn triple_loss_fails() {
        let m = 4;
        let r = Raid6::new(m).unwrap();
        let d = mk_shards(m, 16);
        let frags = frags_for(&r, &d);
        let avail: Vec<Fragment> = frags.iter().filter(|f| f.index > 2).cloned().collect();
        assert!(matches!(r.reconstruct(&avail, 16), Err(GfecError::NotEnoughFragments { .. })));
    }

    #[test]
    fn q_parity_matches_definition() {
        let m = 3;
        let r = Raid6::new(m).unwrap();
        let d = mk_shards(m, 8);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let parity = r.encode(&refs).unwrap();
        for b in 0..8 {
            let mut q = Gf256::ZERO;
            for (i, shard) in d.iter().enumerate() {
                q = q + Gf256::exp(i) * Gf256(shard[b]);
            }
            assert_eq!(parity[1][b], q.0);
        }
    }

    #[test]
    fn fused_encode_matches_reference_across_block_boundary() {
        let m = 3;
        let r = Raid6::new(m).unwrap();
        for len in [0usize, 5, FUSED_BLOCK - 1, FUSED_BLOCK + 9] {
            let d = mk_shards(m, len);
            let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
            // Seed algorithm: one full naive sweep per parity row.
            let mut p = vec![0u8; len];
            let mut q = vec![0u8; len];
            for (i, s) in refs.iter().enumerate() {
                crate::gf256::reference::xor_slice(&mut p, s);
                crate::gf256::reference::mul_slice_acc(&mut q, s, Gf256::exp(i));
            }
            assert_eq!(r.encode(&refs).unwrap(), vec![p, q], "len={len}");
        }
    }

    #[test]
    fn encode_into_reuses_dirty_buffers() {
        let m = 4;
        let r = Raid6::new(m).unwrap();
        let d = mk_shards(m, 100);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let expect = r.encode(&refs).unwrap();
        let mut parity = vec![vec![0x11u8; 7], vec![0x22u8; 999]];
        r.encode_into(&refs, &mut parity).unwrap();
        assert_eq!(parity, expect);
    }

    #[test]
    fn params_and_rate() {
        assert!(Raid6::new(0).is_err());
        assert!(Raid6::new(254).is_err());
        let r = Raid6::new(4).unwrap();
        assert_eq!(r.total_fragments(), 6);
        assert_eq!(r.parity_fragments(), 2);
        assert!((r.rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let r = Raid6::new(3).unwrap();
        let d = mk_shards(3, 16);
        let frags = frags_for(&r, &d);
        let dup = vec![frags[0].clone(), frags[0].clone(), frags[1].clone()];
        assert!(matches!(r.reconstruct(&dup, 16), Err(GfecError::DuplicateFragment { .. })));
        let bad = vec![frags[0].clone(), frags[1].clone(), Fragment::new(99, vec![0; 16])];
        assert!(matches!(r.reconstruct(&bad, 16), Err(GfecError::BadFragmentIndex { .. })));
    }
}
