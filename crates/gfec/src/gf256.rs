//! Arithmetic over the finite field GF(2^8).
//!
//! The field is constructed as GF(2)\[x\] modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same polynomial used by
//! AES-adjacent storage codes and the classic Rizzo FEC paper. Log/exp
//! tables are built at compile time by a `const fn`, so there is no lazy
//! initialization and no runtime branching on table readiness.
//!
//! ## Slice kernels
//!
//! The block operations ([`mul_slice`], [`mul_slice_acc`], [`xor_slice`])
//! are the inner loops of every encode, decode, scrub and partial update
//! in the system. They use per-coefficient **split-nibble product tables**
//! (ISA-L style): for a fixed coefficient `c`, `c * x` is
//! `LO[c][x & 0xf] ^ HI[c][x >> 4]` — two 16-entry lookups from one
//! 32-byte table row that stays resident in L1, with no per-byte zero
//! branch and no dependent log→exp lookup chain. On x86_64 with AVX2 the
//! two 16-entry tables become `vpshufb` operands, doing 32 bytes of
//! products per shuffle pair; elsewhere (and for tails) the products of
//! an 8-byte chunk are assembled into a `u64` and XOR-accumulated with a
//! single wide load/store pair (SWAR). The log/exp routines are kept in [`reference`] as
//! the property-test oracle; the fast kernels are proven bit-identical
//! to them for every coefficient and every tail length.

/// The primitive polynomial 0x11d, with the implicit x^8 term.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Generator of the multiplicative group used to build the tables.
pub const GENERATOR: u8 = 2;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the table so `exp[log a + log b]` never needs a mod-255.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();
/// `EXP[i] = g^i` for `i in 0..510` (doubled to avoid a modulo on lookup).
pub static EXP: [u8; 512] = TABLES.0;
/// `LOG[a] = log_g a` for `a in 1..=255`; `LOG[0]` is unused and 0.
pub static LOG: [u8; 256] = TABLES.1;

/// An element of GF(2^8).
///
/// Addition is XOR; multiplication goes through the log/exp tables. The
/// type is a transparent wrapper so slices of bytes can be reinterpreted
/// freely by the block routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// Additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// Multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Field addition (XOR; identical to subtraction in GF(2^8)).
    #[inline]
    pub fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }

    /// Field subtraction (same as addition in characteristic 2).
    #[inline]
    pub fn sub(self, rhs: Gf256) -> Gf256 {
        self.add(rhs)
    }

    /// Field multiplication via log/exp tables.
    #[inline]
    pub fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize;
        Gf256(EXP[idx])
    }

    /// Field division.
    ///
    /// # Panics
    /// Panics on division by zero, mirroring integer division semantics.
    #[inline]
    pub fn div(self, rhs: Gf256) -> Gf256 {
        assert!(rhs.0 != 0, "division by zero in GF(2^8)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + 255 - LOG[rhs.0 as usize] as usize;
        Gf256(EXP[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics for zero, which has no inverse.
    #[inline]
    pub fn inv(self) -> Gf256 {
        assert!(self.0 != 0, "zero has no inverse in GF(2^8)");
        Gf256(EXP[255 - LOG[self.0 as usize] as usize])
    }

    /// Exponentiation by a non-negative integer, `self^k`.
    pub fn pow(self, mut k: u32) -> Gf256 {
        if k == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        // log(a^k) = k * log(a) mod 255
        let l = LOG[self.0 as usize] as u64;
        k %= 255; // order of the multiplicative group
        let idx = (l * k as u64) % 255;
        Gf256(EXP[idx as usize])
    }

    /// `g^i` for the field generator.
    #[inline]
    pub fn exp(i: usize) -> Gf256 {
        Gf256(EXP[i % 255])
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> Self {
        v.0
    }
}

impl std::ops::Add for Gf256 {
    type Output = Gf256;
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256::add(self, rhs)
    }
}

impl std::ops::Sub for Gf256 {
    type Output = Gf256;
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256::sub(self, rhs)
    }
}

impl std::ops::Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256::mul(self, rhs)
    }
}

impl std::ops::Div for Gf256 {
    type Output = Gf256;
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256::div(self, rhs)
    }
}

// ---------------------------------------------------------------------------
// Split-nibble product tables — built once, at compile time.
// ---------------------------------------------------------------------------

/// Carry-less "Russian peasant" multiply. Only used at table-build time
/// (and as a cross-check in tests); deliberately independent of the
/// log/exp tables so the two constructions validate each other.
const fn gf_mul_const(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= (PRIMITIVE_POLY & 0xff) as u8;
        }
        b >>= 1;
    }
    p
}

const fn build_nibble_tables() -> [[u8; 32]; 256] {
    let mut t = [[0u8; 32]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            t[c][x] = gf_mul_const(c as u8, x as u8);
            t[c][16 + x] = gf_mul_const(c as u8, (x as u8) << 4);
            x += 1;
        }
        c += 1;
    }
    t
}

/// Per-coefficient split-nibble product tables (8 KiB total).
///
/// `NIBBLE[c][x]` is `c * x` for `x < 16`, and `NIBBLE[c][16 + x]` is
/// `c * (x << 4)`, so a full product is two 16-entry lookups:
/// `c * b == NIBBLE[c][b & 0xf] ^ NIBBLE[c][16 + (b >> 4)]`. Each row is
/// 32 bytes — half a cache line — so a whole shard sweep with one fixed
/// coefficient touches exactly one line of table state.
static NIBBLE: [[u8; 32]; 256] = build_nibble_tables();

/// Byte budget one fused encode pass keeps hot per shard; see
/// `Matrix::mul_shards_into`. Sized so `(parity_rows + 1) * FUSED_BLOCK`
/// fits comfortably in L1/L2 for realistic parity counts.
pub const FUSED_BLOCK: usize = 16 * 1024;

/// AVX2 nibble-shuffle kernels: `vpshufb` performs all sixteen low-nibble
/// table lookups of a 128-bit lane in a single instruction, so a 32-byte
/// chunk costs two shuffles and three XORs instead of 64 scalar table
/// loads. Gated at runtime; the portable SWAR loops below remain the
/// fallback (and handle the tail the vector loop leaves behind).
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;

    /// Whether the AVX2 path may be used. `std` caches the CPUID probe,
    /// so calling this per slice operation is a load, not a `cpuid`.
    #[inline]
    pub fn usable() -> bool {
        std::is_x86_feature_detected!("avx2")
    }

    /// Processes the 32-byte-aligned prefix of `dst[i] ^= c * src[i]`,
    /// returning the number of bytes consumed. `table` is the
    /// coefficient's 32-byte split-nibble row (`lo` then `hi` half).
    ///
    /// # Safety
    /// The caller must ensure AVX2 is available (see [`usable`]) and that
    /// `dst` and `src` have equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_slice_acc(dst: &mut [u8], src: &[u8], table: &[u8; 32]) -> usize {
        let n = dst.len() & !31;
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().cast()));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().add(16).cast()));
        let mask = _mm256_set1_epi8(0x0f);
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask));
            let prod = _mm256_xor_si256(lo, hi);
            let d = dst.as_mut_ptr().add(i);
            let acc = _mm256_xor_si256(_mm256_loadu_si256(d.cast()), prod);
            _mm256_storeu_si256(d.cast(), acc);
            i += 32;
        }
        n
    }

    /// Same shuffle kernel without the accumulate: `dst[i] = c * src[i]`.
    ///
    /// # Safety
    /// As for [`mul_slice_acc`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_slice(dst: &mut [u8], src: &[u8], table: &[u8; 32]) -> usize {
        let n = dst.len() & !31;
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().cast()));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().add(16).cast()));
        let mask = _mm256_set1_epi8(0x0f);
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask));
            let hi = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(lo, hi));
            i += 32;
        }
        n
    }
}

// ---------------------------------------------------------------------------
// Block (slice) operations — the hot loops of encoding.
// ---------------------------------------------------------------------------

/// `dst[i] ^= c * src[i]` over whole slices — the inner loop of
/// Reed-Solomon encoding. Uses the split-nibble tables and processes
/// 8 bytes per iteration, folding the accumulate into one u64 XOR.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice_acc(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "mul_slice_acc length mismatch");
    if c.0 == 0 {
        return;
    }
    if c.0 == 1 {
        xor_slice(dst, src);
        return;
    }
    let table = &NIBBLE[c.0 as usize];
    #[allow(unused_mut)]
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if simd::usable() {
        // SAFETY: AVX2 presence was just checked; lengths match per the
        // assert above.
        done = unsafe { simd::mul_slice_acc(dst, src, table) };
    }
    let (lo, hi) = table.split_at(16);
    let mut d8 = dst[done..].chunks_exact_mut(8);
    let mut s8 = src[done..].chunks_exact(8);
    for (d, s) in (&mut d8).zip(&mut s8) {
        let mut prod = [0u8; 8];
        for (p, &b) in prod.iter_mut().zip(s) {
            *p = lo[(b & 0x0f) as usize] ^ hi[(b >> 4) as usize];
        }
        let acc = u64::from_le_bytes(<[u8; 8]>::try_from(&d[..]).expect("8-byte chunk"))
            ^ u64::from_le_bytes(prod);
        d.copy_from_slice(&acc.to_le_bytes());
    }
    for (d, &b) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *d ^= lo[(b & 0x0f) as usize] ^ hi[(b >> 4) as usize];
    }
}

/// `dst[i] = c * src[i]` over whole slices, via the split-nibble tables.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    if c.0 == 0 {
        dst.fill(0);
        return;
    }
    if c.0 == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let table = &NIBBLE[c.0 as usize];
    #[allow(unused_mut)]
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if simd::usable() {
        // SAFETY: AVX2 presence was just checked; lengths match per the
        // assert above.
        done = unsafe { simd::mul_slice(dst, src, table) };
    }
    let (lo, hi) = table.split_at(16);
    let mut d8 = dst[done..].chunks_exact_mut(8);
    let mut s8 = src[done..].chunks_exact(8);
    for (d, s) in (&mut d8).zip(&mut s8) {
        let mut prod = [0u8; 8];
        for (p, &b) in prod.iter_mut().zip(s) {
            *p = lo[(b & 0x0f) as usize] ^ hi[(b >> 4) as usize];
        }
        d.copy_from_slice(&prod);
    }
    for (d, &b) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *d = lo[(b & 0x0f) as usize] ^ hi[(b >> 4) as usize];
    }
}

/// `dst[i] ^= src[i]` — pure XOR accumulate (the RAID5 hot loop),
/// 8 bytes at a time via u64 loads with a scalar tail.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    let mut d8 = dst.chunks_exact_mut(8);
    let mut s8 = src.chunks_exact(8);
    for (d, s) in (&mut d8).zip(&mut s8) {
        let x = u64::from_le_bytes(<[u8; 8]>::try_from(&d[..]).expect("8-byte chunk"))
            ^ u64::from_le_bytes(<[u8; 8]>::try_from(s).expect("8-byte chunk"));
        d.copy_from_slice(&x.to_le_bytes());
    }
    for (d, s) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *d ^= *s;
    }
}

/// Naive byte-at-a-time kernels through the log/exp tables — the seed
/// implementation, kept verbatim as the property-test oracle that the
/// fast split-nibble paths are proven bit-identical against. Never used
/// on hot paths.
pub mod reference {
    use super::{Gf256, EXP, LOG};

    /// `dst[i] ^= c * src[i]`, one dependent log→exp lookup per byte.
    pub fn mul_slice_acc(dst: &mut [u8], src: &[u8], c: Gf256) {
        assert_eq!(dst.len(), src.len(), "mul_slice_acc length mismatch");
        if c.0 == 0 {
            return;
        }
        if c.0 == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= *s;
            }
            return;
        }
        let lc = LOG[c.0 as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= EXP[lc + LOG[*s as usize] as usize];
            }
        }
    }

    /// `dst[i] = c * src[i]`, one dependent log→exp lookup per byte.
    pub fn mul_slice(dst: &mut [u8], src: &[u8], c: Gf256) {
        assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
        if c.0 == 0 {
            dst.fill(0);
            return;
        }
        if c.0 == 1 {
            dst.copy_from_slice(src);
            return;
        }
        let lc = LOG[c.0 as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            *d = if *s == 0 { 0 } else { EXP[lc + LOG[*s as usize] as usize] };
        }
    }

    /// `dst[i] ^= src[i]`, one byte at a time.
    pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // exp and log are mutually inverse on the multiplicative group.
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
        // The doubled half mirrors the first half.
        for i in 255..510 {
            assert_eq!(EXP[i], EXP[i - 255]);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g^i must enumerate all 255 nonzero elements.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = Gf256::exp(i).0;
            assert!(!seen[v as usize], "g^{i} repeats value {v}");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less "Russian peasant" multiplication as the oracle.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (PRIMITIVE_POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf256(a).mul(Gf256(b)).0, slow_mul(a, b), "mismatch at {a} * {b}");
            }
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let p = Gf256(a) * Gf256(b);
                assert_eq!(p / Gf256(b), Gf256(a));
            }
        }
    }

    #[test]
    fn inverse_works_for_all_nonzero() {
        for a in 1..=255u8 {
            assert_eq!(Gf256(a) * Gf256(a).inv(), Gf256::ONE);
        }
    }

    #[test]
    fn pow_basic_identities() {
        for a in 0..=255u8 {
            assert_eq!(Gf256(a).pow(0), Gf256::ONE);
            assert_eq!(Gf256(a).pow(1), Gf256(a));
            assert_eq!(Gf256(a).pow(2), Gf256(a) * Gf256(a));
        }
        // Fermat: a^255 == 1 for nonzero a (group order 255).
        for a in 1..=255u8 {
            assert_eq!(Gf256(a).pow(255), Gf256::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf256(5) / Gf256(0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn nibble_tables_match_log_exp_mul() {
        // Every split-nibble product agrees with the log/exp multiply,
        // cross-validating the two table constructions.
        for c in 0..=255u8 {
            let (lo, hi) = NIBBLE[c as usize].split_at(16);
            for b in 0..=255u8 {
                let fast = lo[(b & 0x0f) as usize] ^ hi[(b >> 4) as usize];
                assert_eq!(fast, (Gf256(c) * Gf256(b)).0, "mismatch at {c} * {b}");
            }
        }
    }

    #[test]
    fn slice_ops_match_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 3, 0x53, 0xff] {
            let mut dst = vec![0xAAu8; 256];
            let mut expect = dst.clone();
            mul_slice_acc(&mut dst, &src, Gf256(c));
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= (Gf256(c) * Gf256(*s)).0;
            }
            assert_eq!(dst, expect, "mul_acc c={c}");

            let mut dst2 = vec![0u8; 256];
            mul_slice(&mut dst2, &src, Gf256(c));
            let expect2: Vec<u8> = src.iter().map(|&s| (Gf256(c) * Gf256(s)).0).collect();
            assert_eq!(dst2, expect2, "mul c={c}");
        }
        let mut d = vec![0b1010u8; 16];
        xor_slice(&mut d, &vec![0b0110u8; 16]);
        assert!(d.iter().all(|&b| b == 0b1100));
    }

    #[test]
    fn fast_kernels_match_reference_at_all_tail_lengths() {
        // Exercise every alignment case of the 8-byte SWAR loop: empty,
        // shorter than one chunk, exact multiples, and odd tails.
        let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic PRNG
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        };
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 63, 257] {
            let src: Vec<u8> = (0..len).map(|_| next()).collect();
            let base: Vec<u8> = (0..len).map(|_| next()).collect();
            for c in [0u8, 1, 2, 0x1d, 0x8e, 0xff, next()] {
                let mut fast = base.clone();
                let mut slow = base.clone();
                mul_slice_acc(&mut fast, &src, Gf256(c));
                reference::mul_slice_acc(&mut slow, &src, Gf256(c));
                assert_eq!(fast, slow, "mul_slice_acc len={len} c={c}");

                let mut fast = base.clone();
                let mut slow = base.clone();
                mul_slice(&mut fast, &src, Gf256(c));
                reference::mul_slice(&mut slow, &src, Gf256(c));
                assert_eq!(fast, slow, "mul_slice len={len} c={c}");
            }
            let mut fast = base.clone();
            let mut slow = base.clone();
            xor_slice(&mut fast, &src);
            reference::xor_slice(&mut slow, &src);
            assert_eq!(fast, slow, "xor_slice len={len}");
        }
    }

    #[test]
    fn operators_delegate() {
        assert_eq!(Gf256(3) + Gf256(5), Gf256(6));
        assert_eq!(Gf256(3) - Gf256(5), Gf256(6));
        assert_eq!((Gf256(7) * Gf256(9)) / Gf256(9), Gf256(7));
        assert_eq!(u8::from(Gf256::from(42u8)), 42);
    }
}
