//! Arithmetic over the finite field GF(2^8).
//!
//! The field is constructed as GF(2)\[x\] modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same polynomial used by
//! AES-adjacent storage codes and the classic Rizzo FEC paper. Log/exp
//! tables are built at compile time by a `const fn`, so there is no lazy
//! initialization and no runtime branching on table readiness.

/// The primitive polynomial 0x11d, with the implicit x^8 term.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Generator of the multiplicative group used to build the tables.
pub const GENERATOR: u8 = 2;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the table so `exp[log a + log b]` never needs a mod-255.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();
/// `EXP[i] = g^i` for `i in 0..510` (doubled to avoid a modulo on lookup).
pub static EXP: [u8; 512] = TABLES.0;
/// `LOG[a] = log_g a` for `a in 1..=255`; `LOG[0]` is unused and 0.
pub static LOG: [u8; 256] = TABLES.1;

/// An element of GF(2^8).
///
/// Addition is XOR; multiplication goes through the log/exp tables. The
/// type is a transparent wrapper so slices of bytes can be reinterpreted
/// freely by the block routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// Additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// Multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Field addition (XOR; identical to subtraction in GF(2^8)).
    #[inline]
    pub fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }

    /// Field subtraction (same as addition in characteristic 2).
    #[inline]
    pub fn sub(self, rhs: Gf256) -> Gf256 {
        self.add(rhs)
    }

    /// Field multiplication via log/exp tables.
    #[inline]
    pub fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize;
        Gf256(EXP[idx])
    }

    /// Field division.
    ///
    /// # Panics
    /// Panics on division by zero, mirroring integer division semantics.
    #[inline]
    pub fn div(self, rhs: Gf256) -> Gf256 {
        assert!(rhs.0 != 0, "division by zero in GF(2^8)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + 255 - LOG[rhs.0 as usize] as usize;
        Gf256(EXP[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics for zero, which has no inverse.
    #[inline]
    pub fn inv(self) -> Gf256 {
        assert!(self.0 != 0, "zero has no inverse in GF(2^8)");
        Gf256(EXP[255 - LOG[self.0 as usize] as usize])
    }

    /// Exponentiation by a non-negative integer, `self^k`.
    pub fn pow(self, mut k: u32) -> Gf256 {
        if k == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        // log(a^k) = k * log(a) mod 255
        let l = LOG[self.0 as usize] as u64;
        k %= 255; // order of the multiplicative group
        let idx = (l * k as u64) % 255;
        Gf256(EXP[idx as usize])
    }

    /// `g^i` for the field generator.
    #[inline]
    pub fn exp(i: usize) -> Gf256 {
        Gf256(EXP[i % 255])
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> Self {
        v.0
    }
}

impl std::ops::Add for Gf256 {
    type Output = Gf256;
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256::add(self, rhs)
    }
}

impl std::ops::Sub for Gf256 {
    type Output = Gf256;
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256::sub(self, rhs)
    }
}

impl std::ops::Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256::mul(self, rhs)
    }
}

impl std::ops::Div for Gf256 {
    type Output = Gf256;
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256::div(self, rhs)
    }
}

// ---------------------------------------------------------------------------
// Block (slice) operations — the hot loops of encoding.
// ---------------------------------------------------------------------------

/// `dst[i] ^= c * src[i]` over whole slices. This is the inner loop of
/// Reed-Solomon encoding; it is written index-free so LLVM autovectorizes.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "mul_acc_slice length mismatch");
    if c.0 == 0 {
        return;
    }
    if c.0 == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
        return;
    }
    let lc = LOG[c.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[lc + LOG[*s as usize] as usize];
        }
    }
}

/// `dst[i] = c * src[i]` over whole slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    if c.0 == 0 {
        dst.fill(0);
        return;
    }
    if c.0 == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let lc = LOG[c.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        *d = if *s == 0 { 0 } else { EXP[lc + LOG[*s as usize] as usize] };
    }
}

/// `dst[i] ^= src[i]` — pure XOR accumulate (the RAID5 hot loop).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // exp and log are mutually inverse on the multiplicative group.
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
        // The doubled half mirrors the first half.
        for i in 255..510 {
            assert_eq!(EXP[i], EXP[i - 255]);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g^i must enumerate all 255 nonzero elements.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = Gf256::exp(i).0;
            assert!(!seen[v as usize], "g^{i} repeats value {v}");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less "Russian peasant" multiplication as the oracle.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (PRIMITIVE_POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    Gf256(a).mul(Gf256(b)).0,
                    slow_mul(a, b),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let p = Gf256(a) * Gf256(b);
                assert_eq!(p / Gf256(b), Gf256(a));
            }
        }
    }

    #[test]
    fn inverse_works_for_all_nonzero() {
        for a in 1..=255u8 {
            assert_eq!(Gf256(a) * Gf256(a).inv(), Gf256::ONE);
        }
    }

    #[test]
    fn pow_basic_identities() {
        for a in 0..=255u8 {
            assert_eq!(Gf256(a).pow(0), Gf256::ONE);
            assert_eq!(Gf256(a).pow(1), Gf256(a));
            assert_eq!(Gf256(a).pow(2), Gf256(a) * Gf256(a));
        }
        // Fermat: a^255 == 1 for nonzero a (group order 255).
        for a in 1..=255u8 {
            assert_eq!(Gf256(a).pow(255), Gf256::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf256(5) / Gf256(0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn slice_ops_match_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 3, 0x53, 0xff] {
            let mut dst = vec![0xAAu8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, Gf256(c));
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= (Gf256(c) * Gf256(*s)).0;
            }
            assert_eq!(dst, expect, "mul_acc c={c}");

            let mut dst2 = vec![0u8; 256];
            mul_slice(&mut dst2, &src, Gf256(c));
            let expect2: Vec<u8> = src.iter().map(|&s| (Gf256(c) * Gf256(s)).0).collect();
            assert_eq!(dst2, expect2, "mul c={c}");
        }
        let mut d = vec![0b1010u8; 16];
        xor_slice(&mut d, &vec![0b0110u8; 16]);
        assert!(d.iter().all(|&b| b == 0b1100));
    }

    #[test]
    fn operators_delegate() {
        assert_eq!(Gf256(3) + Gf256(5), Gf256(6));
        assert_eq!(Gf256(3) - Gf256(5), Gf256(6));
        assert_eq!((Gf256(7) * Gf256(9)) / Gf256(9), Gf256(7));
        assert_eq!(u8::from(Gf256::from(42u8)), 42);
    }
}
