//! # hyrd-gfec — erasure-coding substrate for HyRD
//!
//! Everything the HyRD Cloud-of-Clouds layer needs to turn an object into
//! redundant fragments and back, built from scratch:
//!
//! * [`gf256`] — arithmetic over GF(2^8) with compile-time log/exp tables.
//! * [`matrix`] — dense matrices over GF(2^8): multiplication, Gaussian
//!   inversion, Vandermonde and Cauchy constructions.
//! * [`rs`] — systematic Reed-Solomon codes `RS(m, n)`: any `m` of the `n`
//!   fragments reconstruct the object.
//! * [`raid5`] — the XOR-parity special case `RS(m, m+1)` the paper uses,
//!   with a fast path and read-modify-write partial updates.
//! * [`raid6`] — P+Q double parity (extension beyond the paper's RAID5).
//! * [`stripe`] — the fragment planner: how an object of arbitrary size is
//!   padded, split into stripes and mapped onto provider fragments.
//! * [`update`] — partial-update planning: which fragments a byte-range
//!   update must read and rewrite (the write-amplification the paper
//!   measures for RACS).
//! * [`parallel`] — rayon-parallel block encoding for large objects.
//!
//! The code-rate terminology follows the paper (§II-B): a code that splits
//! an object into `m` data fragments and stores `n` total fragments has
//! rate `r = m/n` and space overhead `1/r`.

pub mod gf256;
pub mod matrix;
pub mod parallel;
pub mod raid5;
pub mod raid6;
pub mod rs;
pub mod stripe;
pub mod update;

pub use gf256::Gf256;
pub use matrix::Matrix;
pub use raid5::Raid5;
pub use raid6::Raid6;
pub use rs::ReedSolomon;
pub use stripe::{FragmentLayout, StripePlanner};

/// Errors produced by the erasure-coding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GfecError {
    /// The requested code parameters are impossible (`m == 0`, `n <= m`,
    /// or `n > 255` which GF(2^8) cannot index).
    InvalidParams { m: usize, n: usize },
    /// Fewer than `m` fragments were supplied to a decode.
    NotEnoughFragments { have: usize, need: usize },
    /// Fragments passed to a single decode had differing lengths.
    FragmentSizeMismatch { expected: usize, got: usize },
    /// A fragment index was out of range for the code.
    BadFragmentIndex { index: usize, n: usize },
    /// The same fragment index appeared twice in a decode input.
    DuplicateFragment { index: usize },
    /// A matrix that must be invertible was singular. With Vandermonde /
    /// Cauchy constructions this indicates corrupted fragment indices.
    SingularMatrix,
    /// An update touched a byte range outside the encoded object.
    RangeOutOfBounds { offset: usize, len: usize, object: usize },
}

impl std::fmt::Display for GfecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GfecError::InvalidParams { m, n } => {
                write!(f, "invalid code parameters m={m}, n={n} (need 0 < m < n <= 255)")
            }
            GfecError::NotEnoughFragments { have, need } => {
                write!(f, "not enough fragments to decode: have {have}, need {need}")
            }
            GfecError::FragmentSizeMismatch { expected, got } => {
                write!(f, "fragment size mismatch: expected {expected} bytes, got {got}")
            }
            GfecError::BadFragmentIndex { index, n } => {
                write!(f, "fragment index {index} out of range for n={n}")
            }
            GfecError::DuplicateFragment { index } => {
                write!(f, "fragment index {index} supplied more than once")
            }
            GfecError::SingularMatrix => write!(f, "decode matrix is singular"),
            GfecError::RangeOutOfBounds { offset, len, object } => {
                write!(f, "update range {offset}+{len} outside object of {object} bytes")
            }
        }
    }
}

impl std::error::Error for GfecError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GfecError>;

/// A single erasure-coded fragment: its index within the code word plus
/// its bytes. Fragments are what HyRD ships to individual cloud providers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Position in the code word: `0..m` are data fragments (systematic),
    /// `m..n` are parity fragments.
    pub index: usize,
    /// Fragment payload. All fragments of one stripe have equal length.
    pub data: Vec<u8>,
}

impl Fragment {
    /// Creates a fragment.
    pub fn new(index: usize, data: Vec<u8>) -> Self {
        Fragment { index, data }
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Common interface over the concrete codes (RS, RAID5, RAID6) so the
/// dispatcher can switch the large-file tier's code (ablation §4.4 in
/// DESIGN.md) without caring which one is active.
pub trait ErasureCode: Send + Sync {
    /// Number of data fragments `m`.
    fn data_fragments(&self) -> usize;
    /// Total number of fragments `n`.
    fn total_fragments(&self) -> usize;
    /// Encodes equal-length data shards into `n - m` parity shards,
    /// returning the parity shards. `shards` must contain exactly `m`
    /// equal-length slices.
    fn encode(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>>;

    /// Encodes into caller-provided parity buffers, avoiding per-call
    /// allocation on repeated encodes. `parity` must hold exactly
    /// `n - m` vectors; each is resized to the shard length and fully
    /// overwritten (prior contents are discarded). The default
    /// implementation falls back to [`encode`](Self::encode) and moves
    /// the results into the buffers; the concrete codes override it with
    /// fused allocation-free kernels.
    fn encode_into(&self, shards: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<()> {
        assert_eq!(parity.len(), self.parity_fragments(), "parity buffer count must equal n - m");
        for (buf, row) in parity.iter_mut().zip(self.encode(shards)?) {
            *buf = row;
        }
        Ok(())
    }

    /// Reconstructs the `m` data shards from any `m` of the `n` fragments.
    fn reconstruct(&self, available: &[Fragment], shard_len: usize) -> Result<Vec<Vec<u8>>>;

    /// The parity generator coefficients: `coeffs[j][i]` is the factor
    /// applied to data shard `i` when computing parity shard `j`
    /// (`parity_j[pos] = sum_i coeffs[j][i] * data_i[pos]`). Because every
    /// code here is linear and positionwise, these coefficients also
    /// drive *range-granular* parity updates:
    /// `P_j'[pos] = P_j[pos] + c_ji * (old_i[pos] + new_i[pos])`.
    fn parity_coefficients(&self) -> Vec<Vec<gf256::Gf256>>;

    /// Number of parity fragments `n - m`.
    fn parity_fragments(&self) -> usize {
        self.total_fragments() - self.data_fragments()
    }

    /// Code rate `r = m / n` (paper §II-B); storage overhead is `1/r`.
    fn rate(&self) -> f64 {
        self.data_fragments() as f64 / self.total_fragments() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GfecError::InvalidParams { m: 0, n: 4 };
        assert!(e.to_string().contains("m=0"));
        let e = GfecError::NotEnoughFragments { have: 2, need: 3 };
        assert!(e.to_string().contains("have 2"));
        let e = GfecError::RangeOutOfBounds { offset: 10, len: 5, object: 12 };
        assert!(e.to_string().contains("10+5"));
    }

    #[test]
    fn fragment_basics() {
        let f = Fragment::new(3, vec![1, 2, 3]);
        assert_eq!(f.index, 3);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert!(Fragment::new(0, vec![]).is_empty());
    }
}
