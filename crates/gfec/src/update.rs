//! Partial-update planning: the read-modify-write cost model behind the
//! paper's core motivation.
//!
//! §I of the paper: "a small update in the RACS system will incur a total
//! of 4 accesses, including traffic of 2 reads and 2 writes over the
//! network." This module computes exactly which fragments a byte-range
//! update must read and rewrite under a single-parity (RAID5) layout, and
//! applies the update given those fragments — so both the simulator and
//! the real dispatcher share one authoritative amplification model.

use crate::gf256::xor_slice;
use crate::stripe::FragmentLayout;
use crate::{Fragment, GfecError, Result};

/// The I/O plan for one byte-range update of an erasure-coded object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePlan {
    /// Data-shard indices whose old contents must be read.
    pub reads: Vec<usize>,
    /// Parity fragment indices that must be read (old parity for RMW).
    pub parity_reads: Vec<usize>,
    /// Data-shard indices that will be rewritten.
    pub writes: Vec<usize>,
    /// Parity fragment indices that will be rewritten.
    pub parity_writes: Vec<usize>,
    /// The byte sub-ranges of each touched shard: `(shard, start, len)`.
    pub touched: Vec<(usize, usize, usize)>,
}

impl UpdatePlan {
    /// Total network accesses (reads + writes) the update costs — the
    /// write-amplification figure the paper quotes.
    pub fn total_accesses(&self) -> usize {
        self.reads.len() + self.parity_reads.len() + self.writes.len() + self.parity_writes.len()
    }

    /// Read amplification: bytes that must be fetched per byte updated.
    pub fn read_ops(&self) -> usize {
        self.reads.len() + self.parity_reads.len()
    }

    /// Number of write ops issued.
    pub fn write_ops(&self) -> usize {
        self.writes.len() + self.parity_writes.len()
    }
}

/// Plans a RAID5-style read-modify-write for updating
/// `new_data.len()` bytes at `offset` in an object with `layout`.
///
/// If the update covers *all* data shards the plan degenerates to a full
/// re-encode (no reads needed). Otherwise every touched shard and the
/// parity must be read and rewritten.
pub fn plan_update(layout: &FragmentLayout, offset: usize, len: usize) -> Result<UpdatePlan> {
    let touched = layout.shards_for_range(offset, len)?;
    let shards: Vec<usize> = touched.iter().map(|&(s, _, _)| s).collect();
    let parity: Vec<usize> = (layout.m..layout.n).collect();

    let full_rewrite = shards.len() == layout.m
        && touched.iter().all(|&(_, start, l)| start == 0 && l == layout.shard_len);

    if full_rewrite {
        Ok(UpdatePlan {
            reads: Vec::new(),
            parity_reads: Vec::new(),
            writes: shards,
            parity_writes: parity,
            touched,
        })
    } else {
        Ok(UpdatePlan {
            reads: shards.clone(),
            parity_reads: parity.clone(),
            writes: shards,
            parity_writes: parity,
            touched,
        })
    }
}

/// Applies a planned single-parity update: given the old touched data
/// fragments and the old parity fragment, produces the new fragments to
/// write (touched data shards and the parity), using the RAID5 identity
/// `P' = P ^ D_old ^ D_new` restricted to the touched byte ranges.
///
/// `old_data` must contain exactly the fragments named in `plan.reads`
/// (any order); `old_parity` is the single parity fragment. Returns
/// `(new_data_fragments, new_parity_fragment)`.
pub fn apply_update(
    layout: &FragmentLayout,
    plan: &UpdatePlan,
    old_data: &[Fragment],
    old_parity: &Fragment,
    offset: usize,
    new_bytes: &[u8],
) -> Result<(Vec<Fragment>, Fragment)> {
    if layout.n != layout.m + 1 {
        // The RMW identity below is single-parity only.
        return Err(GfecError::InvalidParams { m: layout.m, n: layout.n });
    }
    let mut by_index: Vec<Option<&Fragment>> = vec![None; layout.m];
    for f in old_data {
        if f.index >= layout.m {
            return Err(GfecError::BadFragmentIndex { index: f.index, n: layout.m });
        }
        if f.data.len() != layout.shard_len {
            return Err(GfecError::FragmentSizeMismatch {
                expected: layout.shard_len,
                got: f.data.len(),
            });
        }
        by_index[f.index] = Some(f);
    }
    for &r in &plan.reads {
        if by_index[r].is_none() {
            return Err(GfecError::NotEnoughFragments {
                have: old_data.len(),
                need: plan.reads.len(),
            });
        }
    }
    if old_parity.data.len() != layout.shard_len {
        return Err(GfecError::FragmentSizeMismatch {
            expected: layout.shard_len,
            got: old_parity.data.len(),
        });
    }

    let mut new_parity = old_parity.data.clone();
    let mut new_frags = Vec::with_capacity(plan.touched.len());
    let mut consumed = 0usize;
    for &(shard, start, len) in &plan.touched {
        let old = by_index[shard].expect("validated above");
        let mut updated = old.data.clone();
        updated[start..start + len].copy_from_slice(&new_bytes[consumed..consumed + len]);
        consumed += len;
        // P' = P ^ D_old ^ D_new (restricted to the touched range — the
        // untouched bytes cancel out, so XOR whole shards is equivalent
        // but touching only the range is less work).
        {
            let p = &mut new_parity[start..start + len];
            xor_slice(p, &old.data[start..start + len]);
            let upd = &updated[start..start + len];
            xor_slice(p, upd);
        }
        new_frags.push(Fragment::new(shard, updated));
    }
    debug_assert_eq!(consumed, new_bytes.len());
    let _ = offset; // offset already folded into plan.touched
    Ok((new_frags, Fragment::new(layout.m, new_parity)))
}

/// The parity byte-window `[lo, hi)` a set of touched segments dirties.
/// Every touched data range XORs into the parity at the same in-shard
/// offsets, so the parity I/O covers the union of the touched ranges.
pub fn parity_window(touched: &[(usize, usize, usize)]) -> (usize, usize) {
    let lo = touched.iter().map(|&(_, start, _)| start).min().unwrap_or(0);
    let hi = touched.iter().map(|&(_, start, len)| start + len).max().unwrap_or(0);
    (lo, hi)
}

/// Range-granular RAID5 read-modify-write: given the *old* bytes of each
/// touched data-shard segment (in `plan.touched` order), the old parity
/// bytes over [`parity_window`], and the new bytes, produces the new data
/// segments and the new parity window — exactly what gets `put_range`'d
/// back. Transfers only the touched bytes instead of whole fragments,
/// matching object stores' HTTP Range semantics.
pub fn apply_ranged_update(
    touched: &[(usize, usize, usize)],
    old_segments: &[Vec<u8>],
    old_parity_window: &[u8],
    new_bytes: &[u8],
) -> Result<(Vec<Vec<u8>>, Vec<u8>)> {
    if old_segments.len() != touched.len() {
        return Err(GfecError::NotEnoughFragments {
            have: old_segments.len(),
            need: touched.len(),
        });
    }
    let (lo, hi) = parity_window(touched);
    if old_parity_window.len() != hi - lo {
        return Err(GfecError::FragmentSizeMismatch {
            expected: hi - lo,
            got: old_parity_window.len(),
        });
    }
    let mut parity = old_parity_window.to_vec();
    let mut segments = Vec::with_capacity(touched.len());
    let mut consumed = 0usize;
    for (k, &(_, start, len)) in touched.iter().enumerate() {
        if old_segments[k].len() != len {
            return Err(GfecError::FragmentSizeMismatch {
                expected: len,
                got: old_segments[k].len(),
            });
        }
        let new_seg = &new_bytes[consumed..consumed + len];
        consumed += len;
        let w = &mut parity[start - lo..start - lo + len];
        xor_slice(w, &old_segments[k]);
        xor_slice(w, new_seg);
        segments.push(new_seg.to_vec());
    }
    debug_assert_eq!(consumed, new_bytes.len());
    Ok((segments, parity))
}

/// Multi-parity range-granular read-modify-write. Like
/// [`apply_ranged_update`] but updates *every* parity shard of a linear
/// code using its [`crate::ErasureCode::parity_coefficients`]:
/// `P_j'[pos] = P_j[pos] + c_js * (old_s[pos] + new_s[pos])`.
///
/// `old_parity_windows[j]` holds parity shard `j`'s bytes over
/// [`parity_window`]; returns the new data segments (in `touched` order)
/// and the new parity windows.
pub fn apply_ranged_update_multi(
    touched: &[(usize, usize, usize)],
    old_segments: &[Vec<u8>],
    old_parity_windows: &[Vec<u8>],
    new_bytes: &[u8],
    coeffs: &[Vec<crate::gf256::Gf256>],
) -> Result<(Vec<Vec<u8>>, Vec<Vec<u8>>)> {
    if old_segments.len() != touched.len() {
        return Err(GfecError::NotEnoughFragments {
            have: old_segments.len(),
            need: touched.len(),
        });
    }
    if old_parity_windows.len() != coeffs.len() {
        return Err(GfecError::NotEnoughFragments {
            have: old_parity_windows.len(),
            need: coeffs.len(),
        });
    }
    let (lo, hi) = parity_window(touched);
    for w in old_parity_windows {
        if w.len() != hi - lo {
            return Err(GfecError::FragmentSizeMismatch { expected: hi - lo, got: w.len() });
        }
    }
    let mut parities: Vec<Vec<u8>> = old_parity_windows.to_vec();
    let mut segments = Vec::with_capacity(touched.len());
    let mut consumed = 0usize;
    for (k, &(shard, start, len)) in touched.iter().enumerate() {
        if old_segments[k].len() != len {
            return Err(GfecError::FragmentSizeMismatch {
                expected: len,
                got: old_segments[k].len(),
            });
        }
        let new_seg = &new_bytes[consumed..consumed + len];
        consumed += len;
        // diff = old + new (XOR); each parity adds c_js * diff.
        let mut diff = old_segments[k].clone();
        xor_slice(&mut diff, new_seg);
        for (j, parity) in parities.iter_mut().enumerate() {
            let c = coeffs[j]
                .get(shard)
                .copied()
                .ok_or(GfecError::BadFragmentIndex { index: shard, n: coeffs[j].len() })?;
            let w = &mut parity[start - lo..start - lo + len];
            crate::gf256::mul_slice_acc(w, &diff, c);
        }
        segments.push(new_seg.to_vec());
    }
    debug_assert_eq!(consumed, new_bytes.len());
    Ok((segments, parities))
}

/// Recomputes parity windows from complete data windows (used by the
/// degraded update path, where the old parity may be unreachable):
/// `P_j[window] = sum_i c_ji * D_i[window]`. `data_windows` must contain
/// all `m` data shards' bytes over the same window.
pub fn recompute_parity_windows(
    data_windows: &[Vec<u8>],
    coeffs: &[Vec<crate::gf256::Gf256>],
) -> Result<Vec<Vec<u8>>> {
    let len = data_windows.first().map_or(0, |w| w.len());
    for w in data_windows {
        if w.len() != len {
            return Err(GfecError::FragmentSizeMismatch { expected: len, got: w.len() });
        }
    }
    let mut out = Vec::with_capacity(coeffs.len());
    for row in coeffs {
        if row.len() != data_windows.len() {
            return Err(GfecError::NotEnoughFragments {
                have: data_windows.len(),
                need: row.len(),
            });
        }
        let mut p = vec![0u8; len];
        for (i, w) in data_windows.iter().enumerate() {
            crate::gf256::mul_slice_acc(&mut p, w, row[i]);
        }
        out.push(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raid5::Raid5;
    use crate::stripe::StripePlanner;
    use crate::ErasureCode;

    fn setup(obj_len: usize) -> (StripePlanner, Raid5, Vec<u8>, FragmentLayout, Vec<Fragment>) {
        let p = StripePlanner::new(3, 4).unwrap();
        let code = Raid5::new(3).unwrap();
        let obj: Vec<u8> = (0..obj_len).map(|i| (i * 13 % 256) as u8).collect();
        let (layout, frags) = p.encode_object(&code, &obj).unwrap();
        (p, code, obj, layout, frags)
    }

    #[test]
    fn small_update_costs_four_accesses() {
        // The paper's headline number: small update = 2 reads + 2 writes.
        let (_, _, _, layout, _) = setup(64 * 1024);
        let plan = plan_update(&layout, 100, 64).unwrap();
        assert_eq!(plan.reads, vec![0]);
        assert_eq!(plan.parity_reads, vec![3]);
        assert_eq!(plan.writes, vec![0]);
        assert_eq!(plan.parity_writes, vec![3]);
        assert_eq!(plan.total_accesses(), 4);
        assert_eq!(plan.read_ops(), 2);
        assert_eq!(plan.write_ops(), 2);
    }

    #[test]
    fn boundary_crossing_update_touches_two_shards() {
        let (_, _, _, layout, _) = setup(64 * 1024);
        let plan = plan_update(&layout, layout.shard_len - 8, 16).unwrap();
        assert_eq!(plan.reads, vec![0, 1]);
        assert_eq!(plan.total_accesses(), 6); // 3 reads + 3 writes
    }

    #[test]
    fn full_rewrite_needs_no_reads() {
        let p = StripePlanner::new(3, 4).unwrap();
        // Exactly shard-aligned object: full-range update covers all shards.
        let obj_len = 3 * 64; // aligned to 64 * m
        let layout = p.plan(obj_len);
        assert_eq!(layout.padding(), 0);
        let plan = plan_update(&layout, 0, obj_len).unwrap();
        assert!(plan.reads.is_empty());
        assert!(plan.parity_reads.is_empty());
        assert_eq!(plan.writes.len(), 3);
        assert_eq!(plan.parity_writes, vec![3]);
    }

    #[test]
    fn apply_update_matches_full_reencode() {
        let (planner, code, mut obj, layout, frags) = setup(8192);
        for (offset, len) in
            [(0usize, 10usize), (5000, 200), (layout.shard_len - 3, 7), (8000, 192)]
        {
            let plan = plan_update(&layout, offset, len).unwrap();
            let new_bytes: Vec<u8> = (0..len).map(|i| (i * 91 + offset) as u8).collect();

            let old_data: Vec<Fragment> = plan.reads.iter().map(|&i| frags[i].clone()).collect();
            let (new_data, new_parity) =
                apply_update(&layout, &plan, &old_data, &frags[3], offset, &new_bytes).unwrap();

            // Oracle: patch the object and re-encode from scratch.
            obj[offset..offset + len].copy_from_slice(&new_bytes);
            let (_, oracle_frags) = planner.encode_object(&code, &obj).unwrap();
            for nf in &new_data {
                assert_eq!(nf.data, oracle_frags[nf.index].data, "data shard {}", nf.index);
            }
            assert_eq!(new_parity.data, oracle_frags[3].data, "parity after ({offset},{len})");

            // Note: we recompute from the ORIGINAL frags each iteration by
            // re-encoding, so refresh the baseline for the next loop turn.
            return; // single-iteration oracle is sufficient; multi covered below
        }
    }

    #[test]
    fn chained_updates_keep_parity_consistent() {
        let planner = StripePlanner::new(3, 4).unwrap();
        let code = Raid5::new(3).unwrap();
        let mut obj: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        let (layout, mut frags) = planner.encode_object(&code, &obj).unwrap();

        let updates = [(10usize, 30usize), (2000, 100), (4000, 96), (layout.shard_len - 1, 2)];
        for (k, &(offset, len)) in updates.iter().enumerate() {
            let plan = plan_update(&layout, offset, len).unwrap();
            let new_bytes: Vec<u8> = (0..len).map(|i| (i + k * 37) as u8).collect();
            let old_data: Vec<Fragment> = plan.reads.iter().map(|&i| frags[i].clone()).collect();
            let (new_data, new_parity) =
                apply_update(&layout, &plan, &old_data, &frags[3], offset, &new_bytes).unwrap();
            for nf in new_data {
                let idx = nf.index;
                frags[idx] = nf;
            }
            frags[3] = new_parity;
            obj[offset..offset + len].copy_from_slice(&new_bytes);
        }

        // After all updates, losing any fragment must still recover the
        // fully-updated object.
        for lost in 0..4 {
            let avail: Vec<Fragment> = frags.iter().filter(|f| f.index != lost).cloned().collect();
            let back = planner.decode_object(&code, &layout, &avail).unwrap();
            assert_eq!(back, obj, "lost={lost}");
        }
    }

    #[test]
    fn apply_update_validates_inputs() {
        let (_, _, _, layout, frags) = setup(1024);
        let plan = plan_update(&layout, 0, 10).unwrap();
        // Missing the required old data fragment.
        let err = apply_update(&layout, &plan, &[], &frags[3], 0, &[0u8; 10]).unwrap_err();
        assert!(matches!(err, GfecError::NotEnoughFragments { .. }));
        // Wrong parity length.
        let bad_parity = Fragment::new(3, vec![0u8; 3]);
        let err = apply_update(&layout, &plan, &[frags[0].clone()], &bad_parity, 0, &[0u8; 10])
            .unwrap_err();
        assert!(matches!(err, GfecError::FragmentSizeMismatch { .. }));
    }

    #[test]
    fn ranged_update_matches_whole_fragment_rmw() {
        let (planner, code, mut obj, layout, mut frags) = setup(8192);
        for (offset, len) in [(10usize, 30usize), (layout.shard_len - 5, 11), (7000, 192)] {
            let plan = plan_update(&layout, offset, len).unwrap();
            let new_bytes: Vec<u8> = (0..len).map(|i| (i * 37 + offset) as u8).collect();

            // Simulate the ranged reads.
            let old_segments: Vec<Vec<u8>> = plan
                .touched
                .iter()
                .map(|&(shard, start, l)| frags[shard].data[start..start + l].to_vec())
                .collect();
            let (lo, hi) = parity_window(&plan.touched);
            let old_parity_window = frags[3].data[lo..hi].to_vec();

            let (new_segs, new_parity) =
                apply_ranged_update(&plan.touched, &old_segments, &old_parity_window, &new_bytes)
                    .unwrap();

            // Apply the ranged writes locally.
            for (k, &(shard, start, l)) in plan.touched.iter().enumerate() {
                frags[shard].data[start..start + l].copy_from_slice(&new_segs[k]);
            }
            frags[3].data[lo..hi].copy_from_slice(&new_parity);

            // Oracle: full re-encode of the patched object.
            obj[offset..offset + len].copy_from_slice(&new_bytes);
            let (_, oracle) = planner.encode_object(&code, &obj).unwrap();
            for (got, want) in frags.iter().zip(&oracle) {
                assert_eq!(got.data, want.data, "after ({offset},{len})");
            }
        }
    }

    #[test]
    fn multi_parity_ranged_update_matches_reencode_for_every_code() {
        use crate::raid6::Raid6;
        use crate::rs::ReedSolomon;

        fn check<C: ErasureCode>(code: &C, planner: &StripePlanner) {
            let mut obj: Vec<u8> = (0..6000).map(|i| (i * 11 % 256) as u8).collect();
            let (layout, mut frags) = planner.encode_object(code, &obj).unwrap();
            let coeffs = code.parity_coefficients();

            for (offset, len) in [(0usize, 40usize), (2500, 300), (5990, 10)] {
                let plan = plan_update(&layout, offset, len).unwrap();
                let new_bytes: Vec<u8> = (0..len).map(|i| (i * 73 + offset) as u8).collect();
                let (lo, hi) = parity_window(&plan.touched);

                let old_segments: Vec<Vec<u8>> = plan
                    .touched
                    .iter()
                    .map(|&(s, st, l)| frags[s].data[st..st + l].to_vec())
                    .collect();
                let old_parities: Vec<Vec<u8>> =
                    (layout.m..layout.n).map(|p| frags[p].data[lo..hi].to_vec()).collect();

                let (new_segs, new_parities) = apply_ranged_update_multi(
                    &plan.touched,
                    &old_segments,
                    &old_parities,
                    &new_bytes,
                    &coeffs,
                )
                .unwrap();
                for (k, &(s, st, l)) in plan.touched.iter().enumerate() {
                    frags[s].data[st..st + l].copy_from_slice(&new_segs[k]);
                }
                for (j, w) in new_parities.iter().enumerate() {
                    frags[layout.m + j].data[lo..hi].copy_from_slice(w);
                }

                obj[offset..offset + len].copy_from_slice(&new_bytes);
                let (_, oracle) = planner.encode_object(code, &obj).unwrap();
                for (got, want) in frags.iter().zip(&oracle) {
                    assert_eq!(got.data, want.data, "offset={offset} len={len}");
                }
            }
        }

        check(&Raid5::new(3).unwrap(), &StripePlanner::new(3, 4).unwrap());
        check(&Raid6::new(3).unwrap(), &StripePlanner::new(3, 5).unwrap());
        check(&ReedSolomon::new(2, 4).unwrap(), &StripePlanner::new(2, 4).unwrap());
        check(&ReedSolomon::new(4, 7).unwrap(), &StripePlanner::new(4, 7).unwrap());
    }

    #[test]
    fn recompute_parity_windows_matches_encode() {
        use crate::rs::ReedSolomon;
        let code = ReedSolomon::new(3, 5).unwrap();
        let shards: Vec<Vec<u8>> = (0..3)
            .map(|i| (0..256).map(|b| (b as u8).wrapping_mul(i as u8 + 3)).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let full_parity = code.encode(&refs).unwrap();

        // Window [64, 160) recomputed from data windows must equal the
        // corresponding slice of the full parity.
        let windows: Vec<Vec<u8>> = shards.iter().map(|s| s[64..160].to_vec()).collect();
        let got = recompute_parity_windows(&windows, &code.parity_coefficients()).unwrap();
        for (j, w) in got.iter().enumerate() {
            assert_eq!(&w[..], &full_parity[j][64..160]);
        }
    }

    #[test]
    fn ranged_update_validates_inputs() {
        let touched = vec![(0usize, 4usize, 8usize)];
        // Wrong segment count.
        assert!(apply_ranged_update(&touched, &[], &[0u8; 8], &[0u8; 8]).is_err());
        // Wrong parity window size.
        assert!(apply_ranged_update(&touched, &[vec![0u8; 8]], &[0u8; 4], &[0u8; 8]).is_err());
        // Wrong segment size.
        assert!(apply_ranged_update(&touched, &[vec![0u8; 3]], &[0u8; 8], &[0u8; 8]).is_err());
    }

    #[test]
    fn parity_window_spans_touched_union() {
        let touched = vec![(0, 100, 20), (1, 0, 8)];
        assert_eq!(parity_window(&touched), (0, 120));
        assert_eq!(parity_window(&[]), (0, 0));
    }

    #[test]
    fn plan_rejects_out_of_bounds() {
        let (_, _, _, layout, _) = setup(100);
        assert!(matches!(plan_update(&layout, 90, 20), Err(GfecError::RangeOutOfBounds { .. })));
    }

    #[test]
    fn multi_parity_apply_is_rejected() {
        // apply_update's RMW identity is single-parity; RAID6 layouts must
        // take the full re-encode path instead.
        let layout = FragmentLayout { object_len: 128, m: 2, n: 4, shard_len: 64 };
        let plan = plan_update(&layout, 0, 8).unwrap();
        let old = Fragment::new(0, vec![0; 64]);
        let parity = Fragment::new(2, vec![0; 64]);
        assert!(matches!(
            apply_update(&layout, &plan, &[old], &parity, 0, &[0u8; 8]),
            Err(GfecError::InvalidParams { .. })
        ));
    }
}
