//! Striping: how an object of arbitrary size maps onto the fixed-shape
//! fragments of an erasure code.
//!
//! HyRD ships one fragment per cloud provider, so the layout here is the
//! simple contiguous one: shard `i` holds bytes
//! `[i * shard_len, (i+1) * shard_len)` of the (zero-padded) object. This
//! keeps byte ranges local to few shards, which is what makes partial
//! updates cheap to plan, and lets large reads fan out one Get per
//! provider in parallel (the paper's latency argument for large files).

use serde::{Deserialize, Serialize};

use crate::{ErasureCode, Fragment, GfecError, Result};

/// The geometry of one encoded object: everything needed to split, join
/// and plan updates. Stored in HyRD's metadata next to the fragment
/// locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentLayout {
    /// Original object length in bytes (before padding).
    pub object_len: usize,
    /// Data fragments `m`.
    pub m: usize,
    /// Total fragments `n`.
    pub n: usize,
    /// Bytes per fragment (object padded to `m * shard_len`).
    pub shard_len: usize,
}

impl FragmentLayout {
    /// Total padded length `m * shard_len`.
    pub fn padded_len(&self) -> usize {
        self.m * self.shard_len
    }

    /// Bytes of zero padding appended to the object.
    pub fn padding(&self) -> usize {
        self.padded_len() - self.object_len
    }

    /// Total bytes stored across all `n` fragments.
    pub fn stored_bytes(&self) -> usize {
        self.n * self.shard_len
    }

    /// Storage overhead factor versus the raw object (`>= n/m`; slightly
    /// more for tiny objects because of padding).
    pub fn overhead(&self) -> f64 {
        if self.object_len == 0 {
            return self.n as f64 / self.m as f64;
        }
        self.stored_bytes() as f64 / self.object_len as f64
    }

    /// Maps an absolute byte range of the object to the set of data
    /// shards it touches, as `(shard_index, start_within_shard, len)`.
    pub fn shards_for_range(
        &self,
        offset: usize,
        len: usize,
    ) -> Result<Vec<(usize, usize, usize)>> {
        if offset + len > self.object_len {
            return Err(GfecError::RangeOutOfBounds { offset, len, object: self.object_len });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let shard = pos / self.shard_len;
            let within = pos % self.shard_len;
            let take = (self.shard_len - within).min(end - pos);
            out.push((shard, within, take));
            pos += take;
        }
        Ok(out)
    }
}

/// Splits objects into shards and reassembles them, for a given code shape.
///
/// ```
/// use hyrd_gfec::{StripePlanner, Raid5, Fragment};
///
/// let planner = StripePlanner::new(3, 4).unwrap();
/// let code = Raid5::new(3).unwrap();
/// let object = vec![7u8; 10_000];
/// let (layout, fragments) = planner.encode_object(&code, &object).unwrap();
///
/// // Any single fragment may vanish (one cloud outage).
/// let survivors: Vec<Fragment> =
///     fragments.into_iter().filter(|f| f.index != 2).collect();
/// assert_eq!(planner.decode_object(&code, &layout, &survivors).unwrap(), object);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePlanner {
    m: usize,
    n: usize,
    /// Shard lengths are rounded up to a multiple of this (provider
    /// object stores and the GF block ops both like aligned sizes).
    align: usize,
}

impl StripePlanner {
    /// Default alignment for shard sizes (64 B keeps the XOR loops on
    /// cache-line boundaries without bloating tiny objects).
    pub const DEFAULT_ALIGN: usize = 64;

    /// Creates a planner for an `(m, n)` code shape.
    pub fn new(m: usize, n: usize) -> Result<Self> {
        if m == 0 || n <= m || n > 255 {
            return Err(GfecError::InvalidParams { m, n });
        }
        Ok(StripePlanner { m, n, align: Self::DEFAULT_ALIGN })
    }

    /// Overrides the shard alignment (must be nonzero).
    pub fn with_align(mut self, align: usize) -> Self {
        assert!(align > 0, "alignment must be nonzero");
        self.align = align;
        self
    }

    /// Computes the layout for an object of `object_len` bytes.
    pub fn plan(&self, object_len: usize) -> FragmentLayout {
        let raw = object_len.div_ceil(self.m).max(1);
        let shard_len = raw.div_ceil(self.align) * self.align;
        FragmentLayout { object_len, m: self.m, n: self.n, shard_len }
    }

    /// Splits an object into `m` zero-padded data shards per [`Self::plan`].
    pub fn split(&self, object: &[u8]) -> (FragmentLayout, Vec<Vec<u8>>) {
        let layout = self.plan(object.len());
        let mut shards = Vec::with_capacity(self.m);
        for i in 0..self.m {
            let start = (i * layout.shard_len).min(object.len());
            let end = ((i + 1) * layout.shard_len).min(object.len());
            let mut shard = vec![0u8; layout.shard_len];
            shard[..end - start].copy_from_slice(&object[start..end]);
            shards.push(shard);
        }
        (layout, shards)
    }

    /// Reassembles an object from its data shards, trimming padding.
    pub fn join(&self, layout: &FragmentLayout, shards: &[Vec<u8>]) -> Result<Vec<u8>> {
        if shards.len() != self.m {
            return Err(GfecError::NotEnoughFragments { have: shards.len(), need: self.m });
        }
        for s in shards {
            if s.len() != layout.shard_len {
                return Err(GfecError::FragmentSizeMismatch {
                    expected: layout.shard_len,
                    got: s.len(),
                });
            }
        }
        let mut out = Vec::with_capacity(layout.object_len);
        for s in shards {
            let remaining = layout.object_len - out.len();
            if remaining == 0 {
                break;
            }
            out.extend_from_slice(&s[..remaining.min(s.len())]);
        }
        Ok(out)
    }

    /// Convenience: split + encode in one call, returning all `n`
    /// fragments and the layout.
    pub fn encode_object<C: ErasureCode + ?Sized>(
        &self,
        code: &C,
        object: &[u8],
    ) -> Result<(FragmentLayout, Vec<Fragment>)> {
        assert_eq!(code.data_fragments(), self.m, "code/planner m mismatch");
        assert_eq!(code.total_fragments(), self.n, "code/planner n mismatch");
        let (layout, shards) = self.split(object);
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let parity = code.encode(&refs)?;
        let mut frags: Vec<Fragment> =
            shards.into_iter().enumerate().map(|(i, s)| Fragment::new(i, s)).collect();
        for (k, p) in parity.into_iter().enumerate() {
            frags.push(Fragment::new(self.m + k, p));
        }
        Ok((layout, frags))
    }

    /// Convenience: reconstruct data shards from any `m` fragments and
    /// reassemble the original object.
    pub fn decode_object<C: ErasureCode + ?Sized>(
        &self,
        code: &C,
        layout: &FragmentLayout,
        available: &[Fragment],
    ) -> Result<Vec<u8>> {
        let shards = code.reconstruct(available, layout.shard_len)?;
        self.join(layout, &shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raid5::Raid5;
    use crate::rs::ReedSolomon;

    #[test]
    fn plan_pads_and_aligns() {
        let p = StripePlanner::new(3, 4).unwrap();
        let l = p.plan(1000);
        assert_eq!(l.m, 3);
        assert_eq!(l.n, 4);
        assert!(l.shard_len % StripePlanner::DEFAULT_ALIGN == 0);
        assert!(l.padded_len() >= 1000);
        assert_eq!(l.padding(), l.padded_len() - 1000);
    }

    #[test]
    fn empty_object_still_has_one_aligned_shard() {
        let p = StripePlanner::new(2, 3).unwrap();
        let l = p.plan(0);
        assert_eq!(l.shard_len, StripePlanner::DEFAULT_ALIGN);
        let (l2, shards) = p.split(&[]);
        assert_eq!(l2, l);
        assert_eq!(shards.len(), 2);
        assert_eq!(p.join(&l2, &shards).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn split_join_roundtrip_various_sizes() {
        let p = StripePlanner::new(3, 4).unwrap();
        for size in [0usize, 1, 63, 64, 65, 191, 192, 193, 1000, 4096, 100_000] {
            let obj: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let (layout, shards) = p.split(&obj);
            assert!(shards.iter().all(|s| s.len() == layout.shard_len));
            let back = p.join(&layout, &shards).unwrap();
            assert_eq!(back, obj, "size={size}");
        }
    }

    #[test]
    fn encode_decode_object_with_raid5_any_loss() {
        let p = StripePlanner::new(3, 4).unwrap();
        let code = Raid5::new(3).unwrap();
        let obj: Vec<u8> = (0..10_000).map(|i| (i * 7 % 256) as u8).collect();
        let (layout, frags) = p.encode_object(&code, &obj).unwrap();
        assert_eq!(frags.len(), 4);
        for lost in 0..4 {
            let avail: Vec<Fragment> = frags.iter().filter(|f| f.index != lost).cloned().collect();
            let back = p.decode_object(&code, &layout, &avail).unwrap();
            assert_eq!(back, obj, "lost={lost}");
        }
    }

    #[test]
    fn encode_decode_object_with_rs() {
        let p = StripePlanner::new(4, 6).unwrap();
        let code = ReedSolomon::new(4, 6).unwrap();
        let obj = vec![0xC3u8; 5555];
        let (layout, frags) = p.encode_object(&code, &obj).unwrap();
        let avail: Vec<Fragment> = frags.iter().skip(2).cloned().collect();
        assert_eq!(p.decode_object(&code, &layout, &avail).unwrap(), obj);
    }

    #[test]
    fn shards_for_range_covers_exactly() {
        let p = StripePlanner::new(4, 5).unwrap();
        let l = p.plan(1024);
        // Range fully inside one shard.
        let r = l.shards_for_range(10, 20).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], (0, 10, 20));
        // Range crossing a shard boundary.
        let r = l.shards_for_range(l.shard_len - 4, 8).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], (0, l.shard_len - 4, 4));
        assert_eq!(r[1], (1, 0, 4));
        // Whole object.
        let r = l.shards_for_range(0, 1024).unwrap();
        let total: usize = r.iter().map(|&(_, _, len)| len).sum();
        assert_eq!(total, 1024);
        // Empty range.
        assert!(l.shards_for_range(5, 0).unwrap().is_empty());
        // Out of bounds.
        assert!(matches!(l.shards_for_range(1020, 10), Err(GfecError::RangeOutOfBounds { .. })));
    }

    #[test]
    fn overhead_approaches_code_rate_for_large_objects() {
        let p = StripePlanner::new(3, 4).unwrap();
        let l = p.plan(30 * 1024 * 1024);
        assert!((l.overhead() - 4.0 / 3.0).abs() < 0.01, "overhead={}", l.overhead());
        // Tiny objects pay padding overhead instead.
        let tiny = p.plan(10);
        assert!(tiny.overhead() > 4.0 / 3.0);
    }

    #[test]
    fn join_validates_inputs() {
        let p = StripePlanner::new(2, 3).unwrap();
        let (l, shards) = p.split(b"hello world");
        assert!(p.join(&l, &shards[..1].to_vec()).is_err());
        let bad = vec![vec![0u8; 1], vec![0u8; 1]];
        assert!(matches!(p.join(&l, &bad), Err(GfecError::FragmentSizeMismatch { .. })));
    }
}
