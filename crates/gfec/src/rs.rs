//! Systematic Reed-Solomon codes over GF(2^8).
//!
//! The encode matrix is built the way Plank's tutorial and production
//! systems (Backblaze, HDFS-EC) do it: take a distinct-row matrix
//! (Vandermonde or Cauchy-extended identity), normalize so its top `m`
//! rows are the identity, and use the bottom `n - m` rows as parity
//! generators. The systematic property means data fragments are verbatim
//! slices of the object — reads that lose no fragment never pay a decode.

use crate::gf256::Gf256;
use crate::matrix::Matrix;
use crate::{ErasureCode, Fragment, GfecError, Result};

/// Which matrix construction generates the parity rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixKind {
    /// Vandermonde matrix normalized to systematic form.
    Vandermonde,
    /// Identity stacked on a Cauchy matrix (already systematic; every
    /// square submatrix of a Cauchy matrix is invertible).
    #[default]
    Cauchy,
}

/// A systematic `RS(m, n)` code: `m` data fragments, `n - m` parity
/// fragments, tolerating any `n - m` erasures.
///
/// ```
/// use hyrd_gfec::{ReedSolomon, ErasureCode, Fragment};
///
/// let rs = ReedSolomon::new(3, 5).unwrap();
/// let shards: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 64]).collect();
/// let fragments = rs.encode_fragments(shards.clone()).unwrap();
///
/// // Lose any two of the five fragments — the data still decodes.
/// let survivors: Vec<Fragment> =
///     fragments.into_iter().filter(|f| f.index != 0 && f.index != 4).collect();
/// assert_eq!(rs.reconstruct(&survivors, 64).unwrap(), shards);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    m: usize,
    n: usize,
    /// Full `n x m` encode matrix; top `m` rows are the identity.
    encode_matrix: Matrix,
    /// The bottom `n - m` parity rows, pre-selected at construction so
    /// every encode goes straight into the fused kernel without an
    /// allocating `select_rows` per call.
    parity_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates an `RS(m, n)` code with the default (Cauchy) construction.
    pub fn new(m: usize, n: usize) -> Result<Self> {
        Self::with_kind(m, n, MatrixKind::default())
    }

    /// Creates an `RS(m, n)` code with an explicit matrix construction.
    pub fn with_kind(m: usize, n: usize, kind: MatrixKind) -> Result<Self> {
        if m == 0 || n <= m || n > 255 {
            return Err(GfecError::InvalidParams { m, n });
        }
        let encode_matrix = match kind {
            MatrixKind::Vandermonde => {
                // Normalize V (n x m) so the top m x m block becomes I:
                // E = V * inv(V_top). Any m rows of E stay independent
                // because row operations preserve that property.
                let v = Matrix::vandermonde(n, m);
                let top = v.select_rows(&(0..m).collect::<Vec<_>>());
                let top_inv = top.invert().map_err(|_| GfecError::SingularMatrix)?;
                v.mul(&top_inv)
            }
            MatrixKind::Cauchy => {
                let mut e = Matrix::zero(n, m);
                for i in 0..m {
                    e.set(i, i, Gf256::ONE);
                }
                let c = Matrix::cauchy(n - m, m);
                for i in 0..(n - m) {
                    for j in 0..m {
                        e.set(m + i, j, c.get(i, j));
                    }
                }
                e
            }
        };
        let parity_matrix = encode_matrix.select_rows(&(m..n).collect::<Vec<_>>());
        Ok(ReedSolomon { m, n, encode_matrix, parity_matrix })
    }

    /// The full `n x m` encode matrix (top `m` rows are the identity).
    pub fn encode_matrix(&self) -> &Matrix {
        &self.encode_matrix
    }

    /// Encodes `m` equal-length data shards into the full fragment set
    /// (data fragments first, verbatim, then parity). Takes the shards by
    /// value: the code is systematic, so each data shard is *moved* into
    /// its fragment rather than copied — only parity bytes are produced.
    pub fn encode_fragments(&self, shards: Vec<Vec<u8>>) -> Result<Vec<Fragment>> {
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let parity = self.encode(&refs)?;
        let mut out = Vec::with_capacity(self.n);
        for (i, s) in shards.into_iter().enumerate() {
            out.push(Fragment::new(i, s));
        }
        for (k, p) in parity.into_iter().enumerate() {
            out.push(Fragment::new(self.m + k, p));
        }
        Ok(out)
    }

    fn validate_shards(&self, shards: &[&[u8]]) -> Result<usize> {
        if shards.len() != self.m {
            return Err(GfecError::NotEnoughFragments { have: shards.len(), need: self.m });
        }
        let len = shards[0].len();
        for s in shards {
            if s.len() != len {
                return Err(GfecError::FragmentSizeMismatch { expected: len, got: s.len() });
            }
        }
        Ok(len)
    }

    /// Validates a decode input: exactly-once indices in range, equal
    /// lengths, at least `m` fragments. Returns the shard length.
    fn validate_fragments(&self, available: &[Fragment], shard_len: usize) -> Result<()> {
        if available.len() < self.m {
            return Err(GfecError::NotEnoughFragments { have: available.len(), need: self.m });
        }
        let mut seen = vec![false; self.n];
        for f in available {
            if f.index >= self.n {
                return Err(GfecError::BadFragmentIndex { index: f.index, n: self.n });
            }
            if seen[f.index] {
                return Err(GfecError::DuplicateFragment { index: f.index });
            }
            seen[f.index] = true;
            if f.data.len() != shard_len {
                return Err(GfecError::FragmentSizeMismatch {
                    expected: shard_len,
                    got: f.data.len(),
                });
            }
        }
        Ok(())
    }

    /// Reconstructs one specific missing fragment (data or parity) from
    /// any `m` available fragments — the degraded-read path for a single
    /// cloud outage where only the lost fragment matters.
    pub fn reconstruct_fragment(
        &self,
        available: &[Fragment],
        target_index: usize,
        shard_len: usize,
    ) -> Result<Fragment> {
        if target_index >= self.n {
            return Err(GfecError::BadFragmentIndex { index: target_index, n: self.n });
        }
        let data = self.reconstruct(available, shard_len)?;
        if target_index < self.m {
            return Ok(Fragment::new(target_index, data[target_index].clone()));
        }
        // Parity fragment: re-apply its generator row to the data shards.
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let row = self
            .encode_matrix
            .select_rows(&[target_index])
            .mul_shards(&refs)
            .pop()
            .expect("one selected row yields one shard");
        Ok(Fragment::new(target_index, row))
    }
}

impl ErasureCode for ReedSolomon {
    fn data_fragments(&self) -> usize {
        self.m
    }

    fn total_fragments(&self) -> usize {
        self.n
    }

    fn encode(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>> {
        self.validate_shards(shards)?;
        Ok(self.parity_matrix.mul_shards(shards))
    }

    fn encode_into(&self, shards: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<()> {
        self.validate_shards(shards)?;
        self.parity_matrix.mul_shards_into(shards, parity);
        Ok(())
    }

    fn parity_coefficients(&self) -> Vec<Vec<Gf256>> {
        (self.m..self.n)
            .map(|r| (0..self.m).map(|c| self.encode_matrix.get(r, c)).collect())
            .collect()
    }

    fn reconstruct(&self, available: &[Fragment], shard_len: usize) -> Result<Vec<Vec<u8>>> {
        self.validate_fragments(available, shard_len)?;

        // Fast path: all data fragments present — systematic, just copy.
        let mut by_index: Vec<Option<&Fragment>> = vec![None; self.n];
        for f in available {
            by_index[f.index] = Some(f);
        }
        if (0..self.m).all(|i| by_index[i].is_some()) {
            return Ok((0..self.m)
                .map(|i| by_index[i].expect("checked present").data.clone())
                .collect());
        }

        // General path: pick m fragments (prefer data fragments to keep
        // the decode matrix close to identity), invert, multiply.
        let mut picked: Vec<&Fragment> = Vec::with_capacity(self.m);
        for f in by_index.iter().flatten() {
            if picked.len() == self.m {
                break;
            }
            picked.push(f);
        }
        let rows: Vec<usize> = picked.iter().map(|f| f.index).collect();
        let decode = self
            .encode_matrix
            .select_rows(&rows)
            .invert()
            .map_err(|_| GfecError::SingularMatrix)?;
        let refs: Vec<&[u8]> = picked.iter().map(|f| f.data.as_slice()).collect();
        Ok(decode.mul_shards(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(m: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| {
                (0..len).map(|b| (b as u8).wrapping_mul(31).wrapping_add(seed + i as u8)).collect()
            })
            .collect()
    }

    fn roundtrip(kind: MatrixKind, m: usize, n: usize) {
        let rs = ReedSolomon::with_kind(m, n, kind).unwrap();
        let data = shards(m, 64, 7);
        let frags = rs.encode_fragments(data.clone()).unwrap();
        assert_eq!(frags.len(), n);

        // Every way of losing up to n-m fragments must still decode.
        for lost_a in 0..n {
            for lost_b in 0..n {
                let avail: Vec<Fragment> = frags
                    .iter()
                    .filter(|f| f.index != lost_a && f.index != lost_b)
                    .cloned()
                    .collect();
                if avail.len() < m {
                    continue;
                }
                let got = rs.reconstruct(&avail, 64).unwrap();
                assert_eq!(got, data, "kind={kind:?} m={m} n={n} lost=({lost_a},{lost_b})");
            }
        }
    }

    #[test]
    fn roundtrip_raid5_shape_cauchy() {
        roundtrip(MatrixKind::Cauchy, 3, 4);
    }

    #[test]
    fn roundtrip_raid5_shape_vandermonde() {
        roundtrip(MatrixKind::Vandermonde, 3, 4);
    }

    #[test]
    fn roundtrip_wide_codes() {
        roundtrip(MatrixKind::Cauchy, 4, 6);
        roundtrip(MatrixKind::Vandermonde, 4, 6);
        roundtrip(MatrixKind::Cauchy, 6, 9);
        roundtrip(MatrixKind::Cauchy, 10, 14);
    }

    #[test]
    fn systematic_top_is_identity() {
        for kind in [MatrixKind::Cauchy, MatrixKind::Vandermonde] {
            let rs = ReedSolomon::with_kind(4, 6, kind).unwrap();
            let e = rs.encode_matrix();
            for i in 0..4 {
                for j in 0..4 {
                    let want = if i == j { 1 } else { 0 };
                    assert_eq!(e.get(i, j).0, want, "kind={kind:?} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn data_fragments_are_verbatim() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let data = shards(3, 32, 1);
        let frags = rs.encode_fragments(data.clone()).unwrap();
        for i in 0..3 {
            assert_eq!(frags[i].data, data[i]);
        }
    }

    #[test]
    fn reconstruct_single_fragment_data_and_parity() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let data = shards(3, 48, 9);
        let frags = rs.encode_fragments(data).unwrap();
        for target in 0..5 {
            let avail: Vec<Fragment> =
                frags.iter().filter(|f| f.index != target).cloned().collect();
            let rebuilt = rs.reconstruct_fragment(&avail, target, 48).unwrap();
            assert_eq!(rebuilt, frags[target], "target={target}");
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(ReedSolomon::new(0, 4), Err(GfecError::InvalidParams { .. })));
        assert!(matches!(ReedSolomon::new(4, 4), Err(GfecError::InvalidParams { .. })));
        assert!(matches!(ReedSolomon::new(4, 3), Err(GfecError::InvalidParams { .. })));
        assert!(matches!(ReedSolomon::new(200, 256), Err(GfecError::InvalidParams { .. })));
    }

    #[test]
    fn decode_input_validation() {
        let rs = ReedSolomon::new(3, 4).unwrap();
        let data = shards(3, 16, 2);
        let frags = rs.encode_fragments(data).unwrap();

        // Too few.
        let err = rs.reconstruct(&frags[..2], 16).unwrap_err();
        assert!(matches!(err, GfecError::NotEnoughFragments { have: 2, need: 3 }));

        // Duplicate index.
        let dup = vec![frags[0].clone(), frags[0].clone(), frags[1].clone()];
        assert!(matches!(rs.reconstruct(&dup, 16), Err(GfecError::DuplicateFragment { index: 0 })));

        // Bad index.
        let bad = vec![frags[0].clone(), frags[1].clone(), Fragment::new(9, vec![0; 16])];
        assert!(matches!(
            rs.reconstruct(&bad, 16),
            Err(GfecError::BadFragmentIndex { index: 9, .. })
        ));

        // Ragged sizes.
        let ragged = vec![frags[0].clone(), frags[1].clone(), Fragment::new(2, vec![0; 8])];
        assert!(matches!(
            rs.reconstruct(&ragged, 16),
            Err(GfecError::FragmentSizeMismatch { expected: 16, got: 8 })
        ));
    }

    #[test]
    fn encode_shard_validation() {
        let rs = ReedSolomon::new(3, 4).unwrap();
        let a = vec![0u8; 8];
        let b = vec![0u8; 9];
        assert!(matches!(
            rs.encode(&[a.as_slice(), a.as_slice(), b.as_slice()]),
            Err(GfecError::FragmentSizeMismatch { .. })
        ));
        assert!(matches!(rs.encode(&[a.as_slice()]), Err(GfecError::NotEnoughFragments { .. })));
    }

    #[test]
    fn encode_into_matches_encode_with_dirty_buffers() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let data = shards(3, 100, 4);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expect = rs.encode(&refs).unwrap();
        let mut parity = vec![vec![0xDDu8; 3], vec![0u8; 1000]];
        rs.encode_into(&refs, &mut parity).unwrap();
        assert_eq!(parity, expect);
        // Validation errors surface before any buffer is touched.
        assert!(rs.encode_into(&refs[..2], &mut parity).is_err());
    }

    #[test]
    fn rate_and_overhead() {
        let rs = ReedSolomon::new(3, 4).unwrap();
        assert_eq!(rs.data_fragments(), 3);
        assert_eq!(rs.total_fragments(), 4);
        assert_eq!(rs.parity_fragments(), 1);
        assert!((rs.rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn constant_data_encodes_to_constant_fragments_vandermonde() {
        // The normalized Vandermonde rows are Lagrange basis evaluations,
        // which sum to 1 — so all-equal data shards must yield all-equal
        // fragments (the interpolating polynomial is constant).
        let rs = ReedSolomon::with_kind(3, 5, MatrixKind::Vandermonde).unwrap();
        let d = vec![0x5Au8; 16];
        let frags = rs.encode_fragments(vec![d.clone(), d.clone(), d.clone()]).unwrap();
        for f in &frags {
            assert_eq!(f.data, d, "fragment {} not constant", f.index);
        }
    }
}
