//! RAID5: the single-XOR-parity code `RS(m, m+1)` the paper uses for both
//! RACS and HyRD's large-file tier.
//!
//! A dedicated implementation (rather than routing through the generic
//! Reed-Solomon matrix machinery) buys two things:
//!
//! 1. a pure-XOR hot path — no table lookups at all, and
//! 2. the read-modify-write **partial update** the paper's motivation
//!    hinges on: a small update costs 2 reads + 2 writes (old data + old
//!    parity in, new data + new parity out), exactly the 4-access
//!    amplification quoted for RACS in §I.

use crate::gf256::xor_slice;
use crate::{ErasureCode, Fragment, GfecError, Result};

/// XOR-parity erasure code with `m` data fragments and one parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Raid5 {
    m: usize,
}

impl Raid5 {
    /// Creates a RAID5 code over `m` data fragments (n = m + 1).
    pub fn new(m: usize) -> Result<Self> {
        if m == 0 || m + 1 > 255 {
            return Err(GfecError::InvalidParams { m, n: m + 1 });
        }
        Ok(Raid5 { m })
    }

    /// XOR of all supplied equal-length shards.
    fn xor_all(shards: &[&[u8]]) -> Vec<u8> {
        let len = shards.first().map_or(0, |s| s.len());
        let mut parity = vec![0u8; len];
        for s in shards {
            xor_slice(&mut parity, s);
        }
        parity
    }

    /// Computes the new parity after an in-place update of one data
    /// fragment without touching the other data fragments:
    /// `P' = P ^ D_old ^ D_new` — the RAID5 read-modify-write identity.
    ///
    /// All three slices must have equal length.
    pub fn update_parity(old_parity: &[u8], old_data: &[u8], new_data: &[u8]) -> Result<Vec<u8>> {
        if old_data.len() != old_parity.len() || new_data.len() != old_parity.len() {
            return Err(GfecError::FragmentSizeMismatch {
                expected: old_parity.len(),
                got: old_data.len().max(new_data.len()),
            });
        }
        let mut p = old_parity.to_vec();
        xor_slice(&mut p, old_data);
        xor_slice(&mut p, new_data);
        Ok(p)
    }

    fn validate(&self, shards: &[&[u8]]) -> Result<usize> {
        if shards.len() != self.m {
            return Err(GfecError::NotEnoughFragments { have: shards.len(), need: self.m });
        }
        let len = shards[0].len();
        for s in shards {
            if s.len() != len {
                return Err(GfecError::FragmentSizeMismatch { expected: len, got: s.len() });
            }
        }
        Ok(len)
    }
}

impl ErasureCode for Raid5 {
    fn data_fragments(&self) -> usize {
        self.m
    }

    fn total_fragments(&self) -> usize {
        self.m + 1
    }

    fn encode(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>> {
        self.validate(shards)?;
        Ok(vec![Self::xor_all(shards)])
    }

    fn encode_into(&self, shards: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<()> {
        let len = self.validate(shards)?;
        assert_eq!(parity.len(), 1, "RAID5 produces exactly one parity shard");
        let p = &mut parity[0];
        // The first shard overwrites the row, so a dirty reused buffer
        // only needs its length fixed — no zero fill.
        p.resize(len, 0);
        for (i, s) in shards.iter().enumerate() {
            if i == 0 {
                p.copy_from_slice(s);
            } else {
                xor_slice(p, s);
            }
        }
        Ok(())
    }

    fn parity_coefficients(&self) -> Vec<Vec<crate::gf256::Gf256>> {
        vec![vec![crate::gf256::Gf256::ONE; self.m]]
    }

    fn reconstruct(&self, available: &[Fragment], shard_len: usize) -> Result<Vec<Vec<u8>>> {
        let n = self.m + 1;
        if available.len() < self.m {
            return Err(GfecError::NotEnoughFragments { have: available.len(), need: self.m });
        }
        let mut by_index: Vec<Option<&Fragment>> = vec![None; n];
        for f in available {
            if f.index >= n {
                return Err(GfecError::BadFragmentIndex { index: f.index, n });
            }
            if by_index[f.index].is_some() {
                return Err(GfecError::DuplicateFragment { index: f.index });
            }
            if f.data.len() != shard_len {
                return Err(GfecError::FragmentSizeMismatch {
                    expected: shard_len,
                    got: f.data.len(),
                });
            }
            by_index[f.index] = Some(f);
        }

        let missing: Vec<usize> = (0..n).filter(|&i| by_index[i].is_none()).collect();
        match missing.len() {
            0 | 1 => {}
            _ => {
                // More than one erasure: the survivors cannot span the data.
                return Err(GfecError::NotEnoughFragments {
                    have: n - missing.len(),
                    need: self.m,
                });
            }
        }

        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.m);
        if missing.first().is_some_and(|&lost| lost < self.m) {
            // A data fragment is lost: XOR of all survivors rebuilds it.
            let lost = missing[0];
            let mut rebuilt = vec![0u8; shard_len];
            for f in by_index.iter().flatten() {
                xor_slice(&mut rebuilt, &f.data);
            }
            for i in 0..self.m {
                if i == lost {
                    data.push(rebuilt.clone());
                } else {
                    data.push(by_index[i].expect("only `lost` is missing").data.clone());
                }
            }
        } else {
            // All data fragments present (parity may be the lost one).
            for i in 0..self.m {
                data.push(by_index[i].expect("data fragment present").data.clone());
            }
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_shards(m: usize, len: usize) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| (0..len).map(|b| (b as u8) ^ (i as u8).wrapping_mul(0x3b)).collect())
            .collect()
    }

    #[test]
    fn parity_is_xor_of_data() {
        let r = Raid5::new(3).unwrap();
        let d = mk_shards(3, 32);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let p = r.encode(&refs).unwrap();
        assert_eq!(p.len(), 1);
        for b in 0..32 {
            assert_eq!(p[0][b], d[0][b] ^ d[1][b] ^ d[2][b]);
        }
    }

    #[test]
    fn any_single_loss_recovers() {
        let r = Raid5::new(4).unwrap();
        let d = mk_shards(4, 64);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let parity = r.encode(&refs).unwrap().remove(0);
        let mut frags: Vec<Fragment> =
            d.iter().enumerate().map(|(i, x)| Fragment::new(i, x.clone())).collect();
        frags.push(Fragment::new(4, parity));

        for lost in 0..5 {
            let avail: Vec<Fragment> = frags.iter().filter(|f| f.index != lost).cloned().collect();
            let got = r.reconstruct(&avail, 64).unwrap();
            assert_eq!(got, d, "lost={lost}");
        }
    }

    #[test]
    fn double_loss_fails() {
        let r = Raid5::new(3).unwrap();
        let d = mk_shards(3, 16);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let parity = r.encode(&refs).unwrap().remove(0);
        let frags = vec![Fragment::new(0, d[0].clone()), Fragment::new(3, parity)];
        assert!(matches!(r.reconstruct(&frags, 16), Err(GfecError::NotEnoughFragments { .. })));
    }

    #[test]
    fn rmw_parity_update_matches_full_reencode() {
        let r = Raid5::new(3).unwrap();
        let mut d = mk_shards(3, 32);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let old_parity = r.encode(&refs).unwrap().remove(0);

        let new_d1: Vec<u8> = (0..32).map(|b| (b as u8).wrapping_mul(91)).collect();
        let updated = Raid5::update_parity(&old_parity, &d[1], &new_d1).unwrap();

        d[1] = new_d1;
        let refs2: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let full = r.encode(&refs2).unwrap().remove(0);
        assert_eq!(updated, full);
    }

    #[test]
    fn rmw_rejects_mismatched_lengths() {
        assert!(matches!(
            Raid5::update_parity(&[0; 8], &[0; 8], &[0; 4]),
            Err(GfecError::FragmentSizeMismatch { .. })
        ));
    }

    #[test]
    fn agrees_with_generic_rs_on_data_recovery() {
        use crate::rs::ReedSolomon;
        let raid = Raid5::new(3).unwrap();
        let rs = ReedSolomon::with_kind(3, 4, crate::rs::MatrixKind::Vandermonde).unwrap();
        let d = mk_shards(3, 48);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();

        let frags_rs = rs.encode_fragments(d.clone()).unwrap();
        let avail: Vec<Fragment> = frags_rs.iter().filter(|f| f.index != 1).cloned().collect();
        // Both codes recover identical data from index loss 1 (parity
        // encodings differ; the recovered *data* must not).
        let via_rs = rs.reconstruct(&avail, 48).unwrap();

        let parity = raid.encode(&refs).unwrap().remove(0);
        let mut frags_r5: Vec<Fragment> =
            d.iter().enumerate().map(|(i, x)| Fragment::new(i, x.clone())).collect();
        frags_r5.push(Fragment::new(3, parity));
        let avail5: Vec<Fragment> = frags_r5.iter().filter(|f| f.index != 1).cloned().collect();
        let via_r5 = raid.reconstruct(&avail5, 48).unwrap();

        assert_eq!(via_rs, via_r5);
        assert_eq!(via_r5, d);
    }

    #[test]
    fn encode_into_reuses_dirty_buffers() {
        let r = Raid5::new(3).unwrap();
        let d = mk_shards(3, 50);
        let refs: Vec<&[u8]> = d.iter().map(|x| x.as_slice()).collect();
        let expect = r.encode(&refs).unwrap();
        let mut parity = vec![vec![0xABu8; 9]];
        r.encode_into(&refs, &mut parity).unwrap();
        assert_eq!(parity, expect);
    }

    #[test]
    fn invalid_params() {
        assert!(Raid5::new(0).is_err());
        assert!(Raid5::new(255).is_err());
        assert!(Raid5::new(254).is_ok());
    }

    #[test]
    fn rate_reflects_single_parity() {
        let r = Raid5::new(4).unwrap();
        assert!((r.rate() - 0.8).abs() < 1e-12);
        assert_eq!(r.parity_fragments(), 1);
    }
}
