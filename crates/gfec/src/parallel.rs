//! Rayon-parallel encoding and decoding for large objects.
//!
//! The paper's large-file tier erasure-codes objects up to 100 MB; the
//! GF(2^8) parity loops are embarrassingly parallel across byte blocks,
//! so we chunk each shard into fixed-size blocks and encode blocks with
//! `par_iter`. Results are bit-identical to the sequential path (the code
//! is a per-byte linear map, so any partition of the byte axis commutes
//! with encoding). Decoding is the same linear map through the inverted
//! matrix, so [`reconstruct_parallel`] blocks it the same way.

use rayon::prelude::*;

use crate::stripe::{FragmentLayout, StripePlanner};
use crate::{ErasureCode, Fragment, GfecError, Result};

/// Block size for parallel encoding. Large enough that per-task overhead
/// vanishes, small enough to parallelize a few-MB object across cores.
pub const PARALLEL_BLOCK: usize = 256 * 1024;

/// Encodes the parity shards for `shards` in parallel blocks.
///
/// Falls back to the plain sequential encode for inputs below one block —
/// spawning tasks for a 4 KB shard costs more than the XORs themselves.
pub fn encode_parallel<C: ErasureCode + ?Sized>(
    code: &C,
    shards: &[&[u8]],
) -> Result<Vec<Vec<u8>>> {
    let len = shards.first().map_or(0, |s| s.len());
    if len <= PARALLEL_BLOCK {
        return code.encode(shards);
    }
    // Validate once up front via a zero-length probe encode of the first
    // block; per-block encodes then cannot fail differently.
    let block_count = len.div_ceil(PARALLEL_BLOCK);
    let blocks: Result<Vec<Vec<Vec<u8>>>> = (0..block_count)
        .into_par_iter()
        .map(|b| {
            let start = b * PARALLEL_BLOCK;
            let end = (start + PARALLEL_BLOCK).min(len);
            let views: Vec<&[u8]> = shards.iter().map(|s| &s[start..end]).collect();
            code.encode(&views)
        })
        .collect();
    let blocks = blocks?;

    // Stitch the per-block parity outputs back together.
    let parity_count = code.parity_fragments();
    let mut out = vec![Vec::with_capacity(len); parity_count];
    for block in blocks {
        debug_assert_eq!(block.len(), parity_count);
        for (acc, part) in out.iter_mut().zip(block) {
            acc.extend_from_slice(&part);
        }
    }
    Ok(out)
}

/// Reconstructs the `m` data shards from any `m` fragments, in parallel
/// byte blocks. Bit-identical to [`ErasureCode::reconstruct`]; falls back
/// to it outright for inputs below one block.
pub fn reconstruct_parallel<C: ErasureCode + ?Sized>(
    code: &C,
    available: &[Fragment],
    shard_len: usize,
) -> Result<Vec<Vec<u8>>> {
    if shard_len <= PARALLEL_BLOCK {
        return code.reconstruct(available, shard_len);
    }
    // Length validation must happen before slicing fragment views; index
    // validation is repeated (cheaply) by every per-block reconstruct.
    for f in available {
        if f.data.len() != shard_len {
            return Err(GfecError::FragmentSizeMismatch { expected: shard_len, got: f.data.len() });
        }
    }
    let block_count = shard_len.div_ceil(PARALLEL_BLOCK);
    let blocks: Result<Vec<Vec<Vec<u8>>>> = (0..block_count)
        .into_par_iter()
        .map(|b| {
            let start = b * PARALLEL_BLOCK;
            let end = (start + PARALLEL_BLOCK).min(shard_len);
            let views: Vec<Fragment> = available
                .iter()
                .map(|f| Fragment::new(f.index, f.data[start..end].to_vec()))
                .collect();
            code.reconstruct(&views, end - start)
        })
        .collect();
    let blocks = blocks?;

    let m = code.data_fragments();
    let mut out = vec![Vec::with_capacity(shard_len); m];
    for block in blocks {
        debug_assert_eq!(block.len(), m);
        for (acc, part) in out.iter_mut().zip(block) {
            acc.extend_from_slice(&part);
        }
    }
    Ok(out)
}

/// Convenience: parallel reconstruct + join back into the original object
/// — the large-object read path of the dispatcher.
pub fn decode_object_parallel<C: ErasureCode + ?Sized>(
    code: &C,
    planner: &StripePlanner,
    layout: &FragmentLayout,
    available: &[Fragment],
) -> Result<Vec<u8>> {
    let shards = reconstruct_parallel(code, available, layout.shard_len)?;
    planner.join(layout, &shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raid5::Raid5;
    use crate::rs::ReedSolomon;

    fn big_shards(m: usize, len: usize) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| (0..len).map(|b| ((b * 2654435761usize) >> 7) as u8 ^ (i as u8)).collect())
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_raid5() {
        let code = Raid5::new(3).unwrap();
        // Non-multiple of the block size to exercise the tail block.
        let len = 2 * PARALLEL_BLOCK + 12_345;
        let shards = big_shards(3, len);
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let seq = code.encode(&refs).unwrap();
        let par = encode_parallel(&code, &refs).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_matches_sequential_rs() {
        let code = ReedSolomon::new(4, 6).unwrap();
        let len = PARALLEL_BLOCK + 1;
        let shards = big_shards(4, len);
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        assert_eq!(code.encode(&refs).unwrap(), encode_parallel(&code, &refs).unwrap());
    }

    #[test]
    fn small_input_takes_sequential_path() {
        let code = Raid5::new(2).unwrap();
        let shards = big_shards(2, 128);
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        assert_eq!(code.encode(&refs).unwrap(), encode_parallel(&code, &refs).unwrap());
    }

    #[test]
    fn errors_propagate_from_blocks() {
        let code = Raid5::new(3).unwrap();
        let a = vec![0u8; 2 * PARALLEL_BLOCK];
        // Wrong shard count should error, not panic.
        assert!(encode_parallel(&code, &[a.as_slice()]).is_err());
    }

    #[test]
    fn parallel_reconstruct_matches_sequential() {
        let code = ReedSolomon::new(3, 5).unwrap();
        let shard_len = PARALLEL_BLOCK + 4_321;
        let shards = big_shards(3, shard_len);
        let frags = code.encode_fragments(shards).unwrap();
        // Drop two fragments (one data, one parity) — a degraded read.
        let avail: Vec<Fragment> =
            frags.into_iter().filter(|f| f.index != 1 && f.index != 4).collect();
        let seq = code.reconstruct(&avail, shard_len).unwrap();
        let par = reconstruct_parallel(&code, &avail, shard_len).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_reconstruct_validates_lengths() {
        let code = Raid5::new(2).unwrap();
        let shard_len = PARALLEL_BLOCK + 1;
        let frags = vec![Fragment::new(0, vec![0u8; shard_len]), Fragment::new(1, vec![0u8; 16])];
        assert!(matches!(
            reconstruct_parallel(&code, &frags, shard_len),
            Err(GfecError::FragmentSizeMismatch { .. })
        ));
    }

    #[test]
    fn parallel_decode_object_roundtrips() {
        let planner = StripePlanner::new(3, 4).unwrap();
        let code = Raid5::new(3).unwrap();
        let obj: Vec<u8> =
            (0..(3 * PARALLEL_BLOCK + 777)).map(|i| ((i * 31) % 251) as u8).collect();
        let (layout, frags) = planner.encode_object(&code, &obj).unwrap();
        for lost in 0..4 {
            let avail: Vec<Fragment> = frags.iter().filter(|f| f.index != lost).cloned().collect();
            let seq = planner.decode_object(&code, &layout, &avail).unwrap();
            let par = decode_object_parallel(&code, &planner, &layout, &avail).unwrap();
            assert_eq!(par, seq, "lost={lost}");
            assert_eq!(par, obj, "lost={lost}");
        }
    }
}
