//! Property-based tests for the erasure-coding substrate (DESIGN.md §5).

use proptest::collection::vec as pvec;
use proptest::prelude::*;

use hyrd_gfec::gf256::{mul_slice_acc, Gf256};
use hyrd_gfec::raid5::Raid5;
use hyrd_gfec::raid6::Raid6;
use hyrd_gfec::rs::{MatrixKind, ReedSolomon};
use hyrd_gfec::stripe::StripePlanner;
use hyrd_gfec::update::{apply_update, plan_update};
use hyrd_gfec::{ErasureCode, Fragment, Matrix};

proptest! {
    // ---------------- field axioms ----------------

    #[test]
    fn gf_add_is_commutative_associative(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + Gf256::ZERO, a);
        prop_assert_eq!(a + a, Gf256::ZERO); // characteristic 2
    }

    #[test]
    fn gf_mul_is_commutative_associative(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * Gf256::ONE, a);
        prop_assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
    }

    #[test]
    fn gf_distributes(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn gf_div_mul_roundtrip(a: u8, b in 1u8..=255) {
        let (a, b) = (Gf256(a), Gf256(b));
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn gf_pow_adds_exponents(a in 1u8..=255, i in 0u32..600, j in 0u32..600) {
        let a = Gf256(a);
        prop_assert_eq!(a.pow(i) * a.pow(j), a.pow(i + j));
    }

    // ---------------- matrices ----------------

    #[test]
    fn random_invertible_matrix_roundtrips(seed in pvec(any::<u8>(), 16)) {
        // Perturb the identity with random upper entries — always invertible
        // (unit triangular times unit triangular).
        let n = 4;
        let mut upper = Matrix::identity(n);
        let mut lower = Matrix::identity(n);
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                upper.set(i, j, Gf256(seed[k % seed.len()]));
                lower.set(j, i, Gf256(seed[(k + 7) % seed.len()]));
                k += 1;
            }
        }
        let m = lower.mul(&upper);
        let inv = m.invert().expect("unit-triangular product is invertible");
        prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
    }

    #[test]
    fn mul_acc_is_linear(data in pvec(any::<u8>(), 1..256), c1: u8, c2: u8) {
        // (c1 + c2) * x == c1 * x + c2 * x applied to whole slices.
        let mut lhs = vec![0u8; data.len()];
        mul_slice_acc(&mut lhs, &data, Gf256(c1) + Gf256(c2));
        let mut rhs = vec![0u8; data.len()];
        mul_slice_acc(&mut rhs, &data, Gf256(c1));
        mul_slice_acc(&mut rhs, &data, Gf256(c2));
        prop_assert_eq!(lhs, rhs);
    }

    // ---------------- codes ----------------

    #[test]
    fn rs_recovers_from_any_allowed_erasure(
        payload in pvec(any::<u8>(), 1..2048),
        m in 2usize..6,
        extra in 1usize..4,
        kind in prop_oneof![Just(MatrixKind::Cauchy), Just(MatrixKind::Vandermonde)],
        lose_seed: u64,
    ) {
        let n = m + extra;
        let planner = StripePlanner::new(m, n).unwrap();
        let code = ReedSolomon::with_kind(m, n, kind).unwrap();
        let (layout, frags) = planner.encode_object(&code, &payload).unwrap();

        // Deterministically pick `extra` fragments to lose.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = lose_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let lost: Vec<usize> = order[..extra].to_vec();
        let avail: Vec<Fragment> =
            frags.iter().filter(|f| !lost.contains(&f.index)).cloned().collect();

        let back = planner.decode_object(&code, &layout, &avail).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn raid5_rmw_equals_full_reencode(
        payload in pvec(any::<u8>(), 64..4096),
        offset_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let planner = StripePlanner::new(3, 4).unwrap();
        let code = Raid5::new(3).unwrap();
        let mut obj = payload;
        let (layout, mut frags) = planner.encode_object(&code, &obj).unwrap();

        let offset = ((obj.len() - 1) as f64 * offset_frac) as usize;
        let max_len = obj.len() - offset;
        let len = 1 + ((max_len - 1) as f64 * len_frac) as usize;
        let new_bytes: Vec<u8> = (0..len).map(|i| (i * 151 % 256) as u8).collect();

        let plan = plan_update(&layout, offset, len).unwrap();
        let old: Vec<Fragment> = plan.reads.iter().map(|&i| frags[i].clone()).collect();
        let (new_data, new_parity) =
            apply_update(&layout, &plan, &old, &frags[3], offset, &new_bytes).unwrap();
        for nf in new_data {
            let i = nf.index;
            frags[i] = nf;
        }
        frags[3] = new_parity;

        obj[offset..offset + len].copy_from_slice(&new_bytes);
        let (_, oracle) = planner.encode_object(&code, &obj).unwrap();
        for (got, want) in frags.iter().zip(&oracle) {
            prop_assert_eq!(&got.data, &want.data);
        }
    }

    #[test]
    fn raid6_survives_any_two_losses(
        payload in pvec(any::<u8>(), 1..1024),
        m in 2usize..6,
        a_pick: usize,
        b_pick: usize,
    ) {
        let n = m + 2;
        let planner = StripePlanner::new(m, n).unwrap();
        let code = Raid6::new(m).unwrap();
        let (layout, frags) = planner.encode_object(&code, &payload).unwrap();
        let a = a_pick % n;
        let mut b = b_pick % n;
        if b == a { b = (b + 1) % n; }
        let avail: Vec<Fragment> =
            frags.iter().filter(|f| f.index != a && f.index != b).cloned().collect();
        let back = planner.decode_object(&code, &layout, &avail).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn multi_parity_ranged_update_matches_reencode(
        payload in pvec(any::<u8>(), 256..4096),
        m in 2usize..5,
        parities in 1usize..3,
        offset_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        use hyrd_gfec::update::{apply_ranged_update_multi, parity_window, plan_update};
        let n = m + parities;
        let planner = StripePlanner::new(m, n).unwrap();
        let code = ReedSolomon::new(m, n).unwrap();
        let mut obj = payload;
        let (layout, mut frags) = planner.encode_object(&code, &obj).unwrap();
        let coeffs = code.parity_coefficients();

        let offset = ((obj.len() - 1) as f64 * offset_frac) as usize;
        let len = (1 + ((obj.len() - offset - 1) as f64 * len_frac) as usize).max(1);
        let new_bytes: Vec<u8> = (0..len).map(|i| (i * 131 + offset) as u8).collect();

        let plan = plan_update(&layout, offset, len).unwrap();
        let (lo, hi) = parity_window(&plan.touched);
        let old_segments: Vec<Vec<u8>> = plan
            .touched
            .iter()
            .map(|&(sh, st, l)| frags[sh].data[st..st + l].to_vec())
            .collect();
        let old_parities: Vec<Vec<u8>> =
            (m..n).map(|p| frags[p].data[lo..hi].to_vec()).collect();
        let (new_segs, new_pars) = apply_ranged_update_multi(
            &plan.touched, &old_segments, &old_parities, &new_bytes, &coeffs,
        )
        .unwrap();
        for (k, &(sh, st, l)) in plan.touched.iter().enumerate() {
            frags[sh].data[st..st + l].copy_from_slice(&new_segs[k]);
        }
        for (j, w) in new_pars.iter().enumerate() {
            frags[m + j].data[lo..hi].copy_from_slice(w);
        }
        obj[offset..offset + len].copy_from_slice(&new_bytes);
        let (_, oracle) = planner.encode_object(&code, &obj).unwrap();
        for (got, want) in frags.iter().zip(&oracle) {
            prop_assert_eq!(&got.data, &want.data);
        }
    }

    #[test]
    fn stripe_roundtrip_any_size(payload in pvec(any::<u8>(), 0..8192), m in 1usize..8) {
        let planner = StripePlanner::new(m, m + 1).unwrap();
        let (layout, shards) = planner.split(&payload);
        prop_assert_eq!(planner.join(&layout, &shards).unwrap(), payload);
    }

    #[test]
    fn update_plan_access_count_is_bounded(
        obj_len in 64usize..100_000,
        offset_frac in 0.0f64..1.0,
        len in 1usize..512,
    ) {
        let planner = StripePlanner::new(3, 4).unwrap();
        let layout = planner.plan(obj_len);
        let offset = ((obj_len - 1) as f64 * offset_frac) as usize;
        let len = len.min(obj_len - offset).max(1);
        let plan = plan_update(&layout, offset, len).unwrap();
        // RMW touches at most m data shards + 1 parity, read and write.
        prop_assert!(plan.total_accesses() <= 2 * (3 + 1));
        // And a sub-shard-size update touches at most 2 data shards.
        if len <= layout.shard_len {
            prop_assert!(plan.reads.len() <= 2);
        }
    }
}
