//! Bit-identity proofs for the fast GF(2^8) kernels (DESIGN.md §8).
//!
//! The seed's naive log/exp slice routines are preserved verbatim in
//! `gf256::reference` as the oracle. Every property here drives a fast
//! path — split-nibble SWAR kernels, the fused cache-blocked matrix
//! encode, `encode_into`, RAID5/RAID6 parity, decode, and the ranged
//! partial update — with randomized coefficients and lengths (including
//! empty slices and odd tails shorter than one 8-byte SWAR chunk) and
//! demands byte equality with the naive computation.

use proptest::collection::vec as pvec;
use proptest::prelude::*;

use hyrd_gfec::gf256::{self, reference, Gf256, FUSED_BLOCK};
use hyrd_gfec::raid5::Raid5;
use hyrd_gfec::raid6::Raid6;
use hyrd_gfec::rs::{MatrixKind, ReedSolomon};
use hyrd_gfec::update::{parity_window, plan_update};
use hyrd_gfec::{ErasureCode, Fragment, Matrix, StripePlanner};

/// Lengths that stress every SWAR alignment case: empty, sub-chunk tails,
/// exact multiples of 8, and odd sizes just past a multiple.
fn kernel_len() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), 1usize..8, Just(8usize), Just(16usize), 9usize..300,]
}

proptest! {
    // ---------------- slice kernels vs naive reference ----------------

    #[test]
    fn mul_slice_acc_matches_reference(
        len in kernel_len(),
        c: u8,
        seed in pvec(any::<u8>(), 2),
    ) {
        let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37) ^ seed[0]).collect();
        let base: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_add(seed[1])).collect();
        let mut fast = base.clone();
        let mut slow = base;
        gf256::mul_slice_acc(&mut fast, &src, Gf256(c));
        reference::mul_slice_acc(&mut slow, &src, Gf256(c));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn mul_slice_matches_reference(
        len in kernel_len(),
        c: u8,
        seed: u8,
    ) {
        let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(113) ^ seed).collect();
        let mut fast = vec![0xA5u8; len];
        let mut slow = vec![0x5Au8; len];
        gf256::mul_slice(&mut fast, &src, Gf256(c));
        reference::mul_slice(&mut slow, &src, Gf256(c));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn xor_slice_matches_reference(len in kernel_len(), seed in pvec(any::<u8>(), 2)) {
        let src: Vec<u8> = (0..len).map(|i| (i as u8) ^ seed[0]).collect();
        let base: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(seed[1] | 1)).collect();
        let mut fast = base.clone();
        let mut slow = base;
        gf256::xor_slice(&mut fast, &src);
        reference::xor_slice(&mut slow, &src);
        prop_assert_eq!(fast, slow);
    }

    // ---------------- fused matrix encode vs row-at-a-time naive ----------------

    #[test]
    fn fused_mul_shards_matches_naive_sweep(
        m in 1usize..6,
        p in 1usize..4,
        len in kernel_len(),
        seed: u8,
    ) {
        let a = Matrix::cauchy(p, m);
        let shards: Vec<Vec<u8>> = (0..m)
            .map(|j| (0..len).map(|b| (b as u8).wrapping_mul(j as u8 + 2) ^ seed).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        // The seed algorithm: one full naive sweep per output row.
        let mut expect = vec![vec![0u8; len]; p];
        for (i, row) in expect.iter_mut().enumerate() {
            for (j, shard) in refs.iter().enumerate() {
                reference::mul_slice_acc(row, shard, a.get(i, j));
            }
        }
        prop_assert_eq!(a.mul_shards(&refs), expect);
    }

    #[test]
    fn fused_encode_straddles_block_boundary(
        m in 1usize..4,
        off in 0usize..32,
        seed: u8,
    ) {
        // Lengths around FUSED_BLOCK exercise multi-block accumulation.
        let len = FUSED_BLOCK - 16 + off;
        let code = ReedSolomon::new(m, m + 2).unwrap();
        let shards: Vec<Vec<u8>> = (0..m)
            .map(|j| (0..len).map(|b| ((b >> 3) as u8) ^ seed.wrapping_add(j as u8)).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let coeffs = code.parity_coefficients();
        let mut expect = vec![vec![0u8; len]; 2];
        for (j, row) in coeffs.iter().enumerate() {
            for (i, shard) in refs.iter().enumerate() {
                reference::mul_slice_acc(&mut expect[j], shard, row[i]);
            }
        }
        prop_assert_eq!(code.encode(&refs).unwrap(), expect);
    }

    // ---------------- encode / encode_into / fragments agree ----------------

    #[test]
    fn encode_into_matches_encode_for_all_codes(
        m in 2usize..5,
        len in kernel_len(),
        garbage in pvec(any::<u8>(), 0..16),
    ) {
        let shards: Vec<Vec<u8>> = (0..m)
            .map(|j| (0..len).map(|b| (b as u8) ^ (j as u8 * 29)).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let codes: Vec<Box<dyn ErasureCode>> = vec![
            Box::new(Raid5::new(m).unwrap()),
            Box::new(Raid6::new(m).unwrap()),
            Box::new(ReedSolomon::new(m, m + 2).unwrap()),
            Box::new(ReedSolomon::with_kind(m, m + 2, MatrixKind::Vandermonde).unwrap()),
        ];
        for code in &codes {
            let expect = code.encode(&refs).unwrap();
            // Dirty, wrong-size reused buffers must not leak into output.
            let mut parity = vec![garbage.clone(); code.parity_fragments()];
            code.encode_into(&refs, &mut parity).unwrap();
            prop_assert_eq!(&parity, &expect);
        }
    }

    #[test]
    fn encode_fragments_is_systematic_and_matches_encode(
        m in 2usize..5,
        len in kernel_len(),
        seed: u8,
    ) {
        let rs = ReedSolomon::new(m, m + 2).unwrap();
        let shards: Vec<Vec<u8>> = (0..m)
            .map(|j| (0..len).map(|b| (b as u8).wrapping_add(seed) ^ (j as u8)).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let frags = rs.encode_fragments(shards.clone()).unwrap();
        prop_assert_eq!(frags.len(), m + 2);
        for (i, f) in frags.iter().enumerate() {
            prop_assert_eq!(f.index, i);
            let want = if i < m { &shards[i] } else { &parity[i - m] };
            prop_assert_eq!(&f.data, want);
        }
    }

    // ---------------- decode through the fast kernels ----------------

    #[test]
    fn decode_recovers_exact_bytes_after_kernel_swap(
        payload in pvec(any::<u8>(), 1..2048),
        m in 2usize..5,
        lose_seed: u64,
    ) {
        // End-to-end: encode with fused kernels, lose two fragments,
        // reconstruct through the inverted-matrix path (also on the fast
        // kernels) and demand the original bytes back.
        let n = m + 2;
        let planner = StripePlanner::new(m, n).unwrap();
        let code = ReedSolomon::new(m, n).unwrap();
        let (layout, frags) = planner.encode_object(&code, &payload).unwrap();
        let a = (lose_seed % n as u64) as usize;
        let b = ((lose_seed >> 17) % n as u64) as usize;
        let avail: Vec<Fragment> = frags
            .iter()
            .filter(|f| f.index != a && f.index != b)
            .cloned()
            .collect();
        let back = planner.decode_object(&code, &layout, &avail).unwrap();
        prop_assert_eq!(back, payload);
    }

    // ---------------- partial update vs naive recompute ----------------

    #[test]
    fn ranged_update_windows_match_naive_recompute(
        payload in pvec(any::<u8>(), 128..2048),
        m in 2usize..4,
        parities in 1usize..3,
        offset_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        use hyrd_gfec::update::apply_ranged_update_multi;
        let n = m + parities;
        let planner = StripePlanner::new(m, n).unwrap();
        let code = ReedSolomon::new(m, n).unwrap();
        let mut obj = payload;
        let (layout, mut frags) = planner.encode_object(&code, &obj).unwrap();
        let coeffs = code.parity_coefficients();

        let offset = ((obj.len() - 1) as f64 * offset_frac) as usize;
        let len = (1 + ((obj.len() - offset - 1) as f64 * len_frac) as usize).max(1);
        let new_bytes: Vec<u8> = (0..len).map(|i| (i * 89 + offset) as u8).collect();

        let plan = plan_update(&layout, offset, len).unwrap();
        let (lo, hi) = parity_window(&plan.touched);
        let old_segments: Vec<Vec<u8>> = plan
            .touched
            .iter()
            .map(|&(sh, st, l)| frags[sh].data[st..st + l].to_vec())
            .collect();
        let old_parities: Vec<Vec<u8>> =
            (m..n).map(|p| frags[p].data[lo..hi].to_vec()).collect();
        let (new_segs, new_pars) = apply_ranged_update_multi(
            &plan.touched, &old_segments, &old_parities, &new_bytes, &coeffs,
        )
        .unwrap();
        for (k, &(sh, st, l)) in plan.touched.iter().enumerate() {
            frags[sh].data[st..st + l].copy_from_slice(&new_segs[k]);
        }

        // Naive oracle: recompute each parity window from the (updated)
        // data shards with the reference kernel, byte by byte.
        obj[offset..offset + len].copy_from_slice(&new_bytes);
        let (_, new_shards) = planner.split(&obj);
        for (j, row) in coeffs.iter().enumerate() {
            let mut want = vec![0u8; hi - lo];
            for (i, shard) in new_shards.iter().enumerate() {
                reference::mul_slice_acc(&mut want, &shard[lo..hi], row[i]);
            }
            prop_assert_eq!(&new_pars[j], &want, "parity {} window", j);
        }
    }
}
