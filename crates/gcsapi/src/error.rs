//! Error taxonomy of the GCS-API.
//!
//! The distinction that matters for HyRD is `Unavailable` (the provider
//! is in a service outage — the event the whole paper is about) versus
//! everything else: outages trigger degraded reads and update logging,
//! other errors are client bugs or transient faults. The hardened
//! dispatcher additionally distinguishes `Corrupted` (integrity failure:
//! the bytes came back wrong — repaired by scrub) and `Timeout` (the
//! retry budget ran out — counts against the provider's health score).

use std::time::Duration;

use crate::types::{ObjectKey, ProviderId};

/// Errors returned by cloud storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The provider is in a service outage. Persistent until the outage
    /// ends; retrying does not help, failover does.
    Unavailable {
        /// The unavailable provider.
        provider: ProviderId,
    },
    /// The container does not exist.
    NoSuchContainer {
        /// Offending container name.
        container: String,
    },
    /// The object does not exist.
    NoSuchObject {
        /// Offending key.
        key: ObjectKey,
    },
    /// The container already exists (Create is not idempotent on real
    /// object stores; we mirror that).
    ContainerExists {
        /// Offending container name.
        container: String,
    },
    /// A transient fault (packet loss, throttling). Retrying may help.
    Transient {
        /// Provider that produced the fault.
        provider: ProviderId,
        /// Short description for logs.
        reason: &'static str,
    },
    /// The returned bytes failed an integrity check. Synthesized by the
    /// client (providers do not know the checksums); handled by failover
    /// to another replica/fragment and repaired by the scrub pass, not
    /// by retrying the same corrupted copy.
    Corrupted {
        /// Provider that served the corrupt bytes.
        provider: ProviderId,
        /// The object whose bytes mismatched.
        key: ObjectKey,
    },
    /// The operation (including its retries) exhausted its deadline
    /// budget before succeeding.
    Timeout {
        /// Provider the operation targeted.
        provider: ProviderId,
        /// Backoff time spent before giving up.
        waited: Duration,
    },
    /// The *client* process died at this operation boundary. Synthesized
    /// by the crash-injection harness ([`CrashPlan`] in the simulator):
    /// once armed, the fleet returns this from every subsequent op, and
    /// the dispatcher escalates it to an immediate simulated process
    /// death — no retry, no failover, no cleanup code may run.
    Crashed {
        /// Provider whose op boundary the crash landed on.
        provider: ProviderId,
    },
}

impl CloudError {
    /// Whether a retry on the same provider is worthwhile.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CloudError::Transient { .. })
    }

    /// Whether this error means the provider is down (failover needed).
    pub fn is_outage(&self) -> bool {
        matches!(self, CloudError::Unavailable { .. })
    }

    /// Whether this error should count against the provider's health
    /// score (circuit breaker). Only the "up but failing" faults do —
    /// transient storms and exhausted retry budgets. `Unavailable` does
    /// not: outages are already modeled by the outage schedule and
    /// handled by failover plus the update log, and a breaker that
    /// re-punished them would keep rejecting a provider after its outage
    /// ended. Client errors (missing object/container) and integrity
    /// failures do not either — corruption is repaired by scrub, not
    /// avoided by tripping the breaker. `Crashed` is exempt too: it is
    /// the *client* dying, not the provider misbehaving, and the restart
    /// path must find the breakers in their persisted-truth state.
    pub fn counts_against_health(&self) -> bool {
        matches!(self, CloudError::Transient { .. } | CloudError::Timeout { .. })
    }

    /// The provider the error concerns, when it names one.
    pub fn provider(&self) -> Option<ProviderId> {
        match self {
            CloudError::Unavailable { provider }
            | CloudError::Transient { provider, .. }
            | CloudError::Corrupted { provider, .. }
            | CloudError::Timeout { provider, .. }
            | CloudError::Crashed { provider } => Some(*provider),
            CloudError::NoSuchContainer { .. }
            | CloudError::NoSuchObject { .. }
            | CloudError::ContainerExists { .. } => None,
        }
    }
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::Unavailable { provider } => {
                write!(f, "{provider} is unavailable (service outage)")
            }
            CloudError::NoSuchContainer { container } => {
                write!(f, "container '{container}' does not exist")
            }
            CloudError::NoSuchObject { key } => write!(f, "object '{key}' does not exist"),
            CloudError::ContainerExists { container } => {
                write!(f, "container '{container}' already exists")
            }
            CloudError::Transient { provider, reason } => {
                write!(f, "transient fault on {provider}: {reason}")
            }
            CloudError::Corrupted { provider, key } => {
                write!(f, "object '{key}' from {provider} failed its integrity check")
            }
            CloudError::Timeout { provider, waited } => {
                write!(
                    f,
                    "operation on {provider} exceeded its deadline budget after {:.3}s of backoff",
                    waited.as_secs_f64()
                )
            }
            CloudError::Crashed { provider } => {
                write!(f, "client crashed at an op boundary on {provider}")
            }
        }
    }
}

impl std::error::Error for CloudError {}

/// Result alias for cloud operations.
pub type CloudResult<T> = Result<T, CloudError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        let t = CloudError::Transient { provider: ProviderId(0), reason: "throttled" };
        assert!(t.is_retryable());
        assert!(!t.is_outage());

        let u = CloudError::Unavailable { provider: ProviderId(0) };
        assert!(!u.is_retryable());
        assert!(u.is_outage());

        let n = CloudError::NoSuchObject { key: ObjectKey::new("c", "o") };
        assert!(!n.is_retryable());
        assert!(!n.is_outage());

        let c = CloudError::Corrupted { provider: ProviderId(1), key: ObjectKey::new("c", "o") };
        assert!(!c.is_retryable(), "corruption is handled by failover + scrub, not retry");
        assert!(!c.is_outage());

        let d = CloudError::Timeout { provider: ProviderId(1), waited: Duration::from_secs(9) };
        assert!(!d.is_retryable(), "the deadline budget is already spent");
        assert!(!d.is_outage());

        let k = CloudError::Crashed { provider: ProviderId(2) };
        assert!(!k.is_retryable(), "a dead client cannot retry anything");
        assert!(!k.is_outage(), "the providers are fine; the client died");
    }

    #[test]
    fn health_accounting_classification() {
        let flaky = [
            CloudError::Transient { provider: ProviderId(0), reason: "burst" },
            CloudError::Timeout { provider: ProviderId(0), waited: Duration::from_secs(1) },
        ];
        for e in flaky {
            assert!(e.counts_against_health(), "{e} should count against health");
            assert_eq!(e.provider(), Some(ProviderId(0)));
        }
        let exempt = [
            CloudError::Unavailable { provider: ProviderId(0) },
            CloudError::NoSuchContainer { container: "c".into() },
            CloudError::NoSuchObject { key: ObjectKey::new("c", "o") },
            CloudError::ContainerExists { container: "c".into() },
            CloudError::Corrupted { provider: ProviderId(0), key: ObjectKey::new("c", "o") },
            CloudError::Crashed { provider: ProviderId(0) },
        ];
        for e in exempt {
            assert!(!e.counts_against_health(), "{e} should not count against health");
        }
    }

    #[test]
    fn display_mentions_the_subject() {
        let e = CloudError::NoSuchContainer { container: "photos".into() };
        assert!(e.to_string().contains("photos"));
        let e = CloudError::Unavailable { provider: ProviderId(2) };
        assert!(e.to_string().contains("provider#2"));
        let e = CloudError::Corrupted { provider: ProviderId(1), key: ObjectKey::new("c", "o") };
        assert!(e.to_string().contains("integrity"));
        let e = CloudError::Timeout { provider: ProviderId(3), waited: Duration::from_secs(2) };
        assert!(e.to_string().contains("deadline"));
        let e = CloudError::Crashed { provider: ProviderId(1) };
        assert!(e.to_string().contains("crashed"));
        assert!(e.to_string().contains("provider#1"));
    }
}
