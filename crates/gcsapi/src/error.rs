//! Error taxonomy of the GCS-API.
//!
//! The distinction that matters for HyRD is `Unavailable` (the provider
//! is in a service outage — the event the whole paper is about) versus
//! everything else: outages trigger degraded reads and update logging,
//! other errors are client bugs or transient faults.

use crate::types::{ObjectKey, ProviderId};

/// Errors returned by cloud storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The provider is in a service outage. Persistent until the outage
    /// ends; retrying does not help, failover does.
    Unavailable {
        /// The unavailable provider.
        provider: ProviderId,
    },
    /// The container does not exist.
    NoSuchContainer {
        /// Offending container name.
        container: String,
    },
    /// The object does not exist.
    NoSuchObject {
        /// Offending key.
        key: ObjectKey,
    },
    /// The container already exists (Create is not idempotent on real
    /// object stores; we mirror that).
    ContainerExists {
        /// Offending container name.
        container: String,
    },
    /// A transient fault (packet loss, throttling). Retrying may help.
    Transient {
        /// Provider that produced the fault.
        provider: ProviderId,
        /// Short description for logs.
        reason: &'static str,
    },
}

impl CloudError {
    /// Whether a retry on the same provider is worthwhile.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CloudError::Transient { .. })
    }

    /// Whether this error means the provider is down (failover needed).
    pub fn is_outage(&self) -> bool {
        matches!(self, CloudError::Unavailable { .. })
    }
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::Unavailable { provider } => {
                write!(f, "{provider} is unavailable (service outage)")
            }
            CloudError::NoSuchContainer { container } => {
                write!(f, "container '{container}' does not exist")
            }
            CloudError::NoSuchObject { key } => write!(f, "object '{key}' does not exist"),
            CloudError::ContainerExists { container } => {
                write!(f, "container '{container}' already exists")
            }
            CloudError::Transient { provider, reason } => {
                write!(f, "transient fault on {provider}: {reason}")
            }
        }
    }
}

impl std::error::Error for CloudError {}

/// Result alias for cloud operations.
pub type CloudResult<T> = Result<T, CloudError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        let t = CloudError::Transient { provider: ProviderId(0), reason: "throttled" };
        assert!(t.is_retryable());
        assert!(!t.is_outage());

        let u = CloudError::Unavailable { provider: ProviderId(0) };
        assert!(!u.is_retryable());
        assert!(u.is_outage());

        let n = CloudError::NoSuchObject { key: ObjectKey::new("c", "o") };
        assert!(!n.is_retryable());
        assert!(!n.is_outage());
    }

    #[test]
    fn display_mentions_the_subject() {
        let e = CloudError::NoSuchContainer { container: "photos".into() };
        assert!(e.to_string().contains("photos"));
        let e = CloudError::Unavailable { provider: ProviderId(2) };
        assert!(e.to_string().contains("provider#2"));
    }
}
