//! Per-provider operation statistics, accumulated lock-free.
//!
//! The ablation experiments (DESIGN.md §4.5, `ablation_update_recovery`)
//! need exact op/byte counts per provider to show write amplification and
//! recovery traffic. `Instrumented<C>` wraps any [`CloudStorage`] and
//! counts everything that passes through, using relaxed atomics — counts
//! are monotonic tallies with no cross-counter invariants to order, so
//! `Relaxed` is the correct (and cheapest) ordering per the Rust memory
//! model.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use crate::error::CloudResult;
use crate::storage::CloudStorage;
use crate::types::{ObjectKey, OpKind, OpOutcome, ProviderId};

/// Lock-free tally of operations through one provider.
#[derive(Debug, Default)]
pub struct OpStats {
    list: AtomicU64,
    get: AtomicU64,
    create: AtomicU64,
    put: AtomicU64,
    remove: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency_ns: AtomicU64,
}

/// A point-in-time copy of [`OpStats`], cheap to diff and print.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// List op count.
    pub list: u64,
    /// Get op count.
    pub get: u64,
    /// Create op count.
    pub create: u64,
    /// Put op count.
    pub put: u64,
    /// Remove op count.
    pub remove: u64,
    /// Failed op count (any kind).
    pub errors: u64,
    /// Total bytes uploaded.
    pub bytes_in: u64,
    /// Total bytes downloaded.
    pub bytes_out: u64,
    /// Sum of op latencies in nanoseconds (virtual time in simulation).
    pub latency_ns: u64,
}

impl StatsSnapshot {
    /// Total successful op count.
    pub fn total_ops(&self) -> u64 {
        self.list + self.get + self.create + self.put + self.remove
    }

    /// Ops in Table II's Put/Copy/Post/List billing class.
    pub fn put_class_ops(&self) -> u64 {
        self.list + self.create + self.put
    }

    /// Ops in Table II's "Get and others" billing class.
    pub fn get_class_ops(&self) -> u64 {
        self.get + self.remove
    }

    /// Element-wise difference (`self - earlier`), for interval deltas.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            list: self.list - earlier.list,
            get: self.get - earlier.get,
            create: self.create - earlier.create,
            put: self.put - earlier.put,
            remove: self.remove - earlier.remove,
            errors: self.errors - earlier.errors,
            bytes_in: self.bytes_in - earlier.bytes_in,
            bytes_out: self.bytes_out - earlier.bytes_out,
            latency_ns: self.latency_ns - earlier.latency_ns,
        }
    }
}

impl OpStats {
    fn counter(&self, kind: OpKind) -> &AtomicU64 {
        match kind {
            OpKind::List => &self.list,
            OpKind::Get => &self.get,
            OpKind::Create => &self.create,
            OpKind::Put => &self.put,
            OpKind::Remove => &self.remove,
        }
    }

    /// Records a successful operation's report.
    pub fn record_ok(&self, report: &crate::types::OpReport) {
        self.counter(report.kind).fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(report.bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(report.bytes_out, Ordering::Relaxed);
        self.latency_ns.fetch_add(report.latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records a failed operation.
    pub fn record_err(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Credits back the unused portion of a cancelled op that was
    /// previously recorded via [`OpStats::record_ok`]: the op count
    /// stands (the request was issued), but `bytes_out` were never
    /// delivered and only part of the latency elapsed before the abort.
    pub fn credit_cancelled(&self, bytes_out: u64, latency_ns: u64) {
        self.bytes_out.fetch_sub(bytes_out, Ordering::Relaxed);
        self.latency_ns.fetch_sub(latency_ns, Ordering::Relaxed);
    }

    fn record<T>(&self, kind: OpKind, result: &CloudResult<OpOutcome<T>>) {
        match result {
            Ok(out) => {
                debug_assert_eq!(out.report.kind, kind);
                self.record_ok(&out.report);
            }
            Err(_) => self.record_err(),
        }
    }

    /// Copies the current tallies.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            list: self.list.load(Ordering::Relaxed),
            get: self.get.load(Ordering::Relaxed),
            create: self.create.load(Ordering::Relaxed),
            put: self.put.load(Ordering::Relaxed),
            remove: self.remove.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            latency_ns: self.latency_ns.load(Ordering::Relaxed),
        }
    }
}

/// Transparent statistics-collecting wrapper around any provider.
pub struct Instrumented<C> {
    inner: C,
    stats: OpStats,
}

impl<C: CloudStorage> Instrumented<C> {
    /// Wraps a provider.
    pub fn new(inner: C) -> Self {
        Instrumented { inner, stats: OpStats::default() }
    }

    /// Access to the accumulated statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Access to the wrapped provider.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: CloudStorage> CloudStorage for Instrumented<C> {
    fn id(&self) -> ProviderId {
        self.inner.id()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn create(&self, container: &str) -> CloudResult<OpOutcome<()>> {
        let r = self.inner.create(container);
        self.stats.record(OpKind::Create, &r);
        r
    }

    fn put(&self, key: &ObjectKey, data: Bytes) -> CloudResult<OpOutcome<()>> {
        let r = self.inner.put(key, data);
        self.stats.record(OpKind::Put, &r);
        r
    }

    fn get(&self, key: &ObjectKey) -> CloudResult<OpOutcome<Bytes>> {
        let r = self.inner.get(key);
        self.stats.record(OpKind::Get, &r);
        r
    }

    fn list(&self, container: &str) -> CloudResult<OpOutcome<Vec<String>>> {
        let r = self.inner.list(container);
        self.stats.record(OpKind::List, &r);
        r
    }

    fn remove(&self, key: &ObjectKey) -> CloudResult<OpOutcome<()>> {
        let r = self.inner.remove(key);
        self.stats.record(OpKind::Remove, &r);
        r
    }

    fn get_range(&self, key: &ObjectKey, offset: u64, len: u64) -> CloudResult<OpOutcome<Bytes>> {
        let r = self.inner.get_range(key, offset, len);
        self.stats.record(OpKind::Get, &r);
        r
    }

    fn put_range(&self, key: &ObjectKey, offset: u64, data: Bytes) -> CloudResult<OpOutcome<()>> {
        let r = self.inner.put_range(key, offset, data);
        self.stats.record(OpKind::Put, &r);
        r
    }

    fn is_available(&self) -> bool {
        self.inner.is_available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryCloud;

    #[test]
    fn counts_every_op_kind_and_bytes() {
        let c = Instrumented::new(MemoryCloud::new(ProviderId(0), "mem"));
        c.create("data").unwrap();
        let key = ObjectKey::new("data", "k");
        c.put(&key, Bytes::from(vec![0u8; 100])).unwrap();
        c.get(&key).unwrap();
        c.get(&key).unwrap();
        c.list("data").unwrap();
        c.remove(&key).unwrap();

        let s = c.stats();
        assert_eq!(s.create, 1);
        assert_eq!(s.put, 1);
        assert_eq!(s.get, 2);
        assert_eq!(s.list, 1);
        assert_eq!(s.remove, 1);
        assert_eq!(s.total_ops(), 6);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.bytes_out, 200);
        assert_eq!(s.errors, 0);
        assert_eq!(s.put_class_ops(), 3);
        assert_eq!(s.get_class_ops(), 3);
    }

    #[test]
    fn errors_counted_separately() {
        let c = Instrumented::new(MemoryCloud::new(ProviderId(0), "mem"));
        let key = ObjectKey::new("missing", "k");
        assert!(c.get(&key).is_err());
        assert!(c.remove(&key).is_err());
        let s = c.stats();
        assert_eq!(s.errors, 2);
        assert_eq!(s.total_ops(), 0);
    }

    #[test]
    fn delta_since_isolates_an_interval() {
        let c = Instrumented::new(MemoryCloud::new(ProviderId(0), "mem"));
        c.create("data").unwrap();
        let before = c.stats();
        c.put(&ObjectKey::new("data", "a"), Bytes::from(vec![1u8; 10])).unwrap();
        let d = c.stats().delta_since(&before);
        assert_eq!(d.put, 1);
        assert_eq!(d.create, 0);
        assert_eq!(d.bytes_in, 10);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        use std::sync::Arc;
        let c = Arc::new(Instrumented::new(MemoryCloud::new(ProviderId(0), "mem")));
        c.create("data").unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let key = ObjectKey::new("data", format!("{t}-{i}"));
                        c.put(&key, Bytes::from(vec![0u8; 8])).unwrap();
                        c.get(&key).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.put, 800);
        assert_eq!(s.get, 800);
        assert_eq!(s.bytes_in, 6400);
        assert_eq!(s.bytes_out, 6400);
    }
}
