//! Virtual-time composition of operation reports.
//!
//! HyRD's performance argument is about *who waits for what*: an
//! erasure-coded large read issues one Get per provider **in parallel**,
//! so the user waits for the slowest branch (max), while a RAID5
//! read-modify-write needs a read round **then** a write round (sum of
//! two maxes). These combinators are the single place that arithmetic
//! lives, shared by every scheme and every experiment.

use std::time::Duration;

use crate::types::OpReport;

/// Latency of a set of operations issued concurrently: the slowest branch.
pub fn parallel_latency(reports: &[OpReport]) -> Duration {
    reports.iter().map(|r| r.latency).max().unwrap_or(Duration::ZERO)
}

/// Latency of operations issued back-to-back: the sum.
pub fn serial_latency(reports: &[OpReport]) -> Duration {
    reports.iter().map(|r| r.latency).sum()
}

/// Aggregated view of a batch of op reports — the unit the experiments
/// collect (one batch per user-visible request).
///
/// ```
/// use std::time::Duration;
/// use hyrd_gcsapi::{BatchReport, OpKind, OpReport, ProviderId};
///
/// let op = |ms| OpReport {
///     provider: ProviderId(0),
///     kind: OpKind::Get,
///     latency: Duration::from_millis(ms),
///     bytes_in: 0,
///     bytes_out: 0,
/// };
/// // A parallel fragment fan-out waits for the slowest branch...
/// let reads = BatchReport::parallel(vec![op(10), op(25), op(15)]);
/// assert_eq!(reads.latency, Duration::from_millis(25));
/// // ...and a read-modify-write adds its write round on top.
/// let writes = BatchReport::parallel(vec![op(30), op(20)]);
/// assert_eq!(reads.then(writes).latency, Duration::from_millis(55));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// User-perceived latency of the whole batch.
    pub latency: Duration,
    /// All underlying reports, for byte/op accounting.
    pub ops: Vec<OpReport>,
}

impl BatchReport {
    /// An empty batch (zero latency, no ops).
    pub fn empty() -> Self {
        BatchReport::default()
    }

    /// Builds a batch whose ops ran concurrently.
    pub fn parallel(ops: Vec<OpReport>) -> Self {
        let latency = parallel_latency(&ops);
        BatchReport { latency, ops }
    }

    /// Builds a batch whose ops ran serially.
    pub fn serial(ops: Vec<OpReport>) -> Self {
        let latency = serial_latency(&ops);
        BatchReport { latency, ops }
    }

    /// Appends another batch that ran *after* this one (latencies add).
    pub fn then(mut self, next: BatchReport) -> Self {
        self.latency += next.latency;
        self.ops.extend(next.ops);
        self
    }

    /// Merges another batch that ran *concurrently* with this one
    /// (latency is the max of the two).
    pub fn alongside(mut self, other: BatchReport) -> Self {
        self.latency = self.latency.max(other.latency);
        self.ops.extend(other.ops);
        self
    }

    /// Merges ops that ran in the *background* (they cost bytes and
    /// transactions but do not extend the user-perceived latency) —
    /// e.g. HyRD's hot-file cache fills or recovery replay traffic
    /// charged against a foreground request.
    pub fn with_background(mut self, other: BatchReport) -> Self {
        self.ops.extend(other.ops);
        self
    }

    /// Total bytes uploaded across all ops.
    pub fn bytes_in(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes_in).sum()
    }

    /// Total bytes downloaded across all ops.
    pub fn bytes_out(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes_out).sum()
    }

    /// Number of underlying provider operations (the paper's
    /// "4 accesses" write-amplification metric).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OpKind, ProviderId};

    fn rep(ms: u64, bytes_in: u64, bytes_out: u64) -> OpReport {
        OpReport {
            provider: ProviderId(0),
            kind: OpKind::Get,
            latency: Duration::from_millis(ms),
            bytes_in,
            bytes_out,
        }
    }

    #[test]
    fn parallel_takes_max() {
        let ops = vec![rep(10, 0, 0), rep(30, 0, 0), rep(20, 0, 0)];
        assert_eq!(parallel_latency(&ops), Duration::from_millis(30));
        let b = BatchReport::parallel(ops);
        assert_eq!(b.latency, Duration::from_millis(30));
        assert_eq!(b.op_count(), 3);
    }

    #[test]
    fn serial_takes_sum() {
        let ops = vec![rep(10, 0, 0), rep(30, 0, 0)];
        assert_eq!(serial_latency(&ops), Duration::from_millis(40));
        assert_eq!(BatchReport::serial(ops).latency, Duration::from_millis(40));
    }

    #[test]
    fn empty_batches_are_zero() {
        assert_eq!(parallel_latency(&[]), Duration::ZERO);
        assert_eq!(serial_latency(&[]), Duration::ZERO);
        assert_eq!(BatchReport::empty().latency, Duration::ZERO);
    }

    #[test]
    fn then_adds_alongside_maxes() {
        let a = BatchReport::parallel(vec![rep(10, 1, 0), rep(20, 2, 0)]);
        let b = BatchReport::parallel(vec![rep(15, 0, 4)]);
        let serial = a.clone().then(b.clone());
        assert_eq!(serial.latency, Duration::from_millis(35));
        assert_eq!(serial.bytes_in(), 3);
        assert_eq!(serial.bytes_out(), 4);
        let conc = a.alongside(b);
        assert_eq!(conc.latency, Duration::from_millis(20));
        assert_eq!(conc.op_count(), 3);
    }

    #[test]
    fn background_ops_do_not_extend_latency() {
        let fg = BatchReport::parallel(vec![rep(10, 0, 8)]);
        let bg = BatchReport::parallel(vec![rep(500, 64, 0)]);
        let combined = fg.with_background(bg);
        assert_eq!(combined.latency, Duration::from_millis(10));
        assert_eq!(combined.op_count(), 2);
        assert_eq!(combined.bytes_in(), 64);
    }

    #[test]
    fn rmw_pattern_is_two_rounds() {
        // Model the paper's small update: read(data, parity) then
        // write(data, parity): latency = max(reads) + max(writes).
        let reads = BatchReport::parallel(vec![rep(12, 0, 64), rep(18, 0, 64)]);
        let writes = BatchReport::parallel(vec![rep(25, 64, 0), rep(22, 64, 0)]);
        let total = reads.then(writes);
        assert_eq!(total.latency, Duration::from_millis(43));
        assert_eq!(total.op_count(), 4); // the famous 4 accesses
    }
}
