//! Core vocabulary of the GCS-API: who (provider), what (object key),
//! which op, and what it cost.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Identifies one cloud storage provider within a fleet. Cheap to copy;
/// the human-readable name lives on the provider object itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProviderId(pub u16);

impl std::fmt::Display for ProviderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "provider#{}", self.0)
    }
}

/// Fully-qualified object name: container plus object name, mirroring the
/// bucket/key model every RESTful object store exposes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectKey {
    /// Container (bucket) name.
    pub container: String,
    /// Object name within the container.
    pub name: String,
}

impl ObjectKey {
    /// Builds a key from container and name.
    pub fn new(container: impl Into<String>, name: impl Into<String>) -> Self {
        ObjectKey { container: container.into(), name: name.into() }
    }
}

impl std::fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.container, self.name)
    }
}

/// The five functions of the paper's passive storage entity, plus the
/// transaction class each maps to in Table II's price sheet:
/// Put/Copy/Post/List are billed together ("3Ps + List"), Get and
/// everything else are billed as "Get and others".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Lists the objects of a container.
    List,
    /// Reads an object.
    Get,
    /// Creates a container.
    Create,
    /// Writes or modifies an object in a container.
    Put,
    /// Deletes an object.
    Remove,
}

impl OpKind {
    /// Whether Table II bills this op in the Put/Copy/Post/List class
    /// (the expensive class on Amazon S3).
    pub fn is_put_class(self) -> bool {
        matches!(self, OpKind::Put | OpKind::Create | OpKind::List)
    }

    /// All op kinds, for exhaustive iteration in stats tables.
    pub const ALL: [OpKind; 5] =
        [OpKind::List, OpKind::Get, OpKind::Create, OpKind::Put, OpKind::Remove];
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::List => "List",
            OpKind::Get => "Get",
            OpKind::Create => "Create",
            OpKind::Put => "Put",
            OpKind::Remove => "Remove",
        };
        f.write_str(s)
    }
}

/// What one operation cost: the observable every experiment in the paper
/// is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpReport {
    /// Which provider served the op.
    pub provider: ProviderId,
    /// Operation class.
    pub kind: OpKind,
    /// Wall latency of the op. In simulation this is virtual time; in the
    /// real-thread mode it is measured.
    pub latency: Duration,
    /// Bytes uploaded to the provider (data-in; free on all of Table II).
    pub bytes_in: u64,
    /// Bytes downloaded from the provider (data-out; billed on S3/Aliyun).
    pub bytes_out: u64,
}

impl OpReport {
    /// A zero-cost report stub, useful for ops resolved from local state.
    pub fn free(provider: ProviderId, kind: OpKind) -> Self {
        OpReport { provider, kind, latency: Duration::ZERO, bytes_in: 0, bytes_out: 0 }
    }
}

/// An operation result paired with its cost report.
#[derive(Debug, Clone)]
pub struct OpOutcome<T> {
    /// The operation's value (object bytes for Get, listing for List, …).
    pub value: T,
    /// What the operation cost.
    pub report: OpReport,
}

impl<T> OpOutcome<T> {
    /// Pairs a value with its report.
    pub fn new(value: T, report: OpReport) -> Self {
        OpOutcome { value, report }
    }

    /// Maps the value, preserving the report.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> OpOutcome<U> {
        OpOutcome { value: f(self.value), report: self.report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_billing_classes_match_table2() {
        assert!(OpKind::Put.is_put_class());
        assert!(OpKind::Create.is_put_class());
        assert!(OpKind::List.is_put_class());
        assert!(!OpKind::Get.is_put_class());
        assert!(!OpKind::Remove.is_put_class());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProviderId(3).to_string(), "provider#3");
        assert_eq!(ObjectKey::new("bucket", "a/b.txt").to_string(), "bucket/a/b.txt");
        assert_eq!(OpKind::Put.to_string(), "Put");
    }

    #[test]
    fn outcome_map_preserves_report() {
        let r = OpReport::free(ProviderId(1), OpKind::Get);
        let o = OpOutcome::new(41u32, r).map(|v| v + 1);
        assert_eq!(o.value, 42);
        assert_eq!(o.report.provider, ProviderId(1));
    }

    #[test]
    fn all_kinds_is_exhaustive() {
        assert_eq!(OpKind::ALL.len(), 5);
        let mut set = std::collections::HashSet::new();
        for k in OpKind::ALL {
            set.insert(format!("{k}"));
        }
        assert_eq!(set.len(), 5);
    }
}
