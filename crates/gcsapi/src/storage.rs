//! The [`CloudStorage`] trait — the paper's five-function passive storage
//! entity — and [`MemoryCloud`], a zero-latency in-memory implementation
//! used as the reference semantics for conformance tests.

use std::collections::BTreeMap;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::{CloudError, CloudResult};
use crate::types::{ObjectKey, OpKind, OpOutcome, OpReport, ProviderId};

/// A cloud storage provider as seen through the GCS-API middleware.
///
/// The trait is deliberately minimal and synchronous: the paper models
/// providers as passive entities reachable over REST, and HyRD composes
/// parallelism *above* this interface (see [`crate::compose`]). All
/// methods take `&self`; implementations use interior mutability so a
/// provider can be shared across scheme components.
pub trait CloudStorage: Send + Sync {
    /// Stable identity of this provider within the fleet.
    fn id(&self) -> ProviderId;

    /// Human-readable provider name ("Amazon S3", …).
    fn name(&self) -> &str;

    /// Creates a container.
    fn create(&self, container: &str) -> CloudResult<OpOutcome<()>>;

    /// Writes or replaces an object.
    fn put(&self, key: &ObjectKey, data: Bytes) -> CloudResult<OpOutcome<()>>;

    /// Reads an object.
    fn get(&self, key: &ObjectKey) -> CloudResult<OpOutcome<Bytes>>;

    /// Lists object names in a container (sorted).
    fn list(&self, container: &str) -> CloudResult<OpOutcome<Vec<String>>>;

    /// Deletes an object. Deleting a missing object is an error, matching
    /// strict REST semantics.
    fn remove(&self, key: &ObjectKey) -> CloudResult<OpOutcome<()>>;

    /// Reads `len` bytes at `offset` (HTTP `Range` header). Only the
    /// requested bytes are transferred/billed. The default implementation
    /// fetches the whole object and slices — providers with native range
    /// support override it.
    fn get_range(&self, key: &ObjectKey, offset: u64, len: u64) -> CloudResult<OpOutcome<Bytes>> {
        let out = self.get(key)?;
        let end = ((offset + len) as usize).min(out.value.len());
        let start = (offset as usize).min(end);
        Ok(OpOutcome::new(out.value.slice(start..end), out.report))
    }

    /// Overwrites `data.len()` bytes at `offset` within an existing
    /// object (the "modifies a file" half of the paper's Put function).
    /// Only the written bytes are transferred/billed. The default
    /// implementation performs a whole-object read-modify-write.
    fn put_range(&self, key: &ObjectKey, offset: u64, data: Bytes) -> CloudResult<OpOutcome<()>> {
        let old = self.get(key)?;
        let mut content = old.value.to_vec();
        let end = offset as usize + data.len();
        if content.len() < end {
            content.resize(end, 0);
        }
        content[offset as usize..end].copy_from_slice(&data);
        self.put(key, Bytes::from(content))
    }

    /// Whether the provider currently answers requests. Defaults to true;
    /// simulated providers override this during outage windows.
    fn is_available(&self) -> bool {
        true
    }
}

/// In-memory reference implementation with zero latency and exact REST
/// semantics. The simulator (`hyrd-cloudsim`) wraps the same map behind a
/// latency/pricing model; unit tests use this directly.
pub struct MemoryCloud {
    id: ProviderId,
    name: String,
    containers: RwLock<BTreeMap<String, BTreeMap<String, Bytes>>>,
}

impl MemoryCloud {
    /// Creates an empty in-memory provider.
    pub fn new(id: ProviderId, name: impl Into<String>) -> Self {
        MemoryCloud { id, name: name.into(), containers: RwLock::new(BTreeMap::new()) }
    }

    /// Total bytes currently stored, for space-overhead assertions.
    pub fn stored_bytes(&self) -> u64 {
        self.containers.read().values().flat_map(|c| c.values()).map(|b| b.len() as u64).sum()
    }

    /// Number of objects stored across all containers.
    pub fn object_count(&self) -> usize {
        self.containers.read().values().map(|c| c.len()).sum()
    }

    fn report(&self, kind: OpKind, bytes_in: u64, bytes_out: u64) -> OpReport {
        OpReport {
            provider: self.id,
            kind,
            latency: std::time::Duration::ZERO,
            bytes_in,
            bytes_out,
        }
    }
}

impl CloudStorage for MemoryCloud {
    fn id(&self) -> ProviderId {
        self.id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn create(&self, container: &str) -> CloudResult<OpOutcome<()>> {
        let mut c = self.containers.write();
        if c.contains_key(container) {
            return Err(CloudError::ContainerExists { container: container.to_string() });
        }
        c.insert(container.to_string(), BTreeMap::new());
        Ok(OpOutcome::new((), self.report(OpKind::Create, 0, 0)))
    }

    fn put(&self, key: &ObjectKey, data: Bytes) -> CloudResult<OpOutcome<()>> {
        let mut c = self.containers.write();
        let container = c
            .get_mut(&key.container)
            .ok_or_else(|| CloudError::NoSuchContainer { container: key.container.clone() })?;
        let len = data.len() as u64;
        container.insert(key.name.clone(), data);
        Ok(OpOutcome::new((), self.report(OpKind::Put, len, 0)))
    }

    fn get(&self, key: &ObjectKey) -> CloudResult<OpOutcome<Bytes>> {
        let c = self.containers.read();
        let container = c
            .get(&key.container)
            .ok_or_else(|| CloudError::NoSuchContainer { container: key.container.clone() })?;
        let data = container
            .get(&key.name)
            .cloned()
            .ok_or_else(|| CloudError::NoSuchObject { key: key.clone() })?;
        let len = data.len() as u64;
        Ok(OpOutcome::new(data, self.report(OpKind::Get, 0, len)))
    }

    fn list(&self, container: &str) -> CloudResult<OpOutcome<Vec<String>>> {
        let c = self.containers.read();
        let cont = c
            .get(container)
            .ok_or_else(|| CloudError::NoSuchContainer { container: container.to_string() })?;
        let names: Vec<String> = cont.keys().cloned().collect();
        Ok(OpOutcome::new(names, self.report(OpKind::List, 0, 0)))
    }

    fn remove(&self, key: &ObjectKey) -> CloudResult<OpOutcome<()>> {
        let mut c = self.containers.write();
        let container = c
            .get_mut(&key.container)
            .ok_or_else(|| CloudError::NoSuchContainer { container: key.container.clone() })?;
        container.remove(&key.name).ok_or_else(|| CloudError::NoSuchObject { key: key.clone() })?;
        Ok(OpOutcome::new((), self.report(OpKind::Remove, 0, 0)))
    }

    fn get_range(&self, key: &ObjectKey, offset: u64, len: u64) -> CloudResult<OpOutcome<Bytes>> {
        let c = self.containers.read();
        let container = c
            .get(&key.container)
            .ok_or_else(|| CloudError::NoSuchContainer { container: key.container.clone() })?;
        let data = container
            .get(&key.name)
            .ok_or_else(|| CloudError::NoSuchObject { key: key.clone() })?;
        let end = ((offset + len) as usize).min(data.len());
        let start = (offset as usize).min(end);
        let slice = data.slice(start..end);
        let n = slice.len() as u64;
        Ok(OpOutcome::new(slice, self.report(OpKind::Get, 0, n)))
    }

    fn put_range(&self, key: &ObjectKey, offset: u64, data: Bytes) -> CloudResult<OpOutcome<()>> {
        let mut c = self.containers.write();
        let container = c
            .get_mut(&key.container)
            .ok_or_else(|| CloudError::NoSuchContainer { container: key.container.clone() })?;
        let existing = container
            .get_mut(&key.name)
            .ok_or_else(|| CloudError::NoSuchObject { key: key.clone() })?;
        let mut content = existing.to_vec();
        let end = offset as usize + data.len();
        if content.len() < end {
            content.resize(end, 0);
        }
        content[offset as usize..end].copy_from_slice(&data);
        *existing = Bytes::from(content);
        Ok(OpOutcome::new((), self.report(OpKind::Put, data.len() as u64, 0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> MemoryCloud {
        let c = MemoryCloud::new(ProviderId(0), "mem");
        c.create("data").unwrap();
        c
    }

    #[test]
    fn put_get_roundtrip() {
        let c = cloud();
        let key = ObjectKey::new("data", "hello");
        c.put(&key, Bytes::from_static(b"world")).unwrap();
        let got = c.get(&key).unwrap();
        assert_eq!(&got.value[..], b"world");
        assert_eq!(got.report.bytes_out, 5);
        assert_eq!(got.report.kind, OpKind::Get);
    }

    #[test]
    fn put_overwrites() {
        let c = cloud();
        let key = ObjectKey::new("data", "k");
        c.put(&key, Bytes::from_static(b"v1")).unwrap();
        c.put(&key, Bytes::from_static(b"longer-v2")).unwrap();
        assert_eq!(&c.get(&key).unwrap().value[..], b"longer-v2");
        assert_eq!(c.object_count(), 1);
        assert_eq!(c.stored_bytes(), 9);
    }

    #[test]
    fn list_is_sorted_and_scoped() {
        let c = cloud();
        c.create("other").unwrap();
        for name in ["zeta", "alpha", "mid"] {
            c.put(&ObjectKey::new("data", name), Bytes::new()).unwrap();
        }
        c.put(&ObjectKey::new("other", "elsewhere"), Bytes::new()).unwrap();
        let names = c.list("data").unwrap().value;
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn remove_then_get_fails() {
        let c = cloud();
        let key = ObjectKey::new("data", "gone");
        c.put(&key, Bytes::from_static(b"x")).unwrap();
        c.remove(&key).unwrap();
        assert!(matches!(c.get(&key), Err(CloudError::NoSuchObject { .. })));
        assert!(matches!(c.remove(&key), Err(CloudError::NoSuchObject { .. })));
    }

    #[test]
    fn missing_container_errors() {
        let c = MemoryCloud::new(ProviderId(1), "empty");
        let key = ObjectKey::new("nope", "k");
        assert!(matches!(c.get(&key), Err(CloudError::NoSuchContainer { .. })));
        assert!(matches!(c.put(&key, Bytes::new()), Err(CloudError::NoSuchContainer { .. })));
        assert!(matches!(c.list("nope"), Err(CloudError::NoSuchContainer { .. })));
    }

    #[test]
    fn duplicate_create_errors() {
        let c = cloud();
        assert!(matches!(c.create("data"), Err(CloudError::ContainerExists { .. })));
    }

    #[test]
    fn put_reports_ingress_bytes() {
        let c = cloud();
        let out = c.put(&ObjectKey::new("data", "k"), Bytes::from(vec![0u8; 1234])).unwrap();
        assert_eq!(out.report.bytes_in, 1234);
        assert_eq!(out.report.bytes_out, 0);
    }

    #[test]
    fn default_availability_is_up() {
        assert!(cloud().is_available());
    }
}
