//! Bounded retry with capped exponential backoff for transient faults.
//!
//! Outages are *not* retried — the paper's recovery design (§III-C)
//! handles those with degraded reads and update logging. Retry only makes
//! sense for throttling/packet-loss style [`CloudError::Transient`]
//! failures, and only a bounded number of times so a misclassified outage
//! cannot stall the dispatcher.
//!
//! Attempt spacing is explicit: attempt `k` (1-based) is followed by a
//! delay of `base_delay * 2^(k-1)`, capped at `max_delay`, multiplied by
//! a deterministic jitter factor in `[0.5, 1.5)` derived from
//! `jitter_seed` — reproducible down to the nanosecond, which is what the
//! virtual-clock simulation needs. A per-operation `deadline` bounds the
//! *total* backoff an operation may accumulate before giving up with
//! `timed_out` set.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{CloudError, CloudResult};

/// How (and how often) to re-attempt a transiently-failing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts (>= 1). 1 means "no retries".
    pub max_attempts: u32,
    /// Delay after the first failed attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on any single inter-attempt delay (after jitter).
    pub max_delay: Duration,
    /// Budget on the *summed* backoff across the whole operation. When a
    /// pending delay would exceed it, the operation fails with
    /// `timed_out` instead of sleeping. `None` means unbounded.
    pub deadline: Option<Duration>,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(200),
            max_delay: Duration::from_secs(10),
            deadline: Some(Duration::from_secs(60)),
            jitter_seed: 0x9E3779B9,
        }
    }
}

impl RetryPolicy {
    /// Policy that never retries (and therefore never sleeps).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            deadline: None,
            jitter_seed: 0,
        }
    }

    /// The delay scheduled after failed attempt `attempt` (1-based):
    /// capped exponential backoff with deterministic jitter.
    pub fn delay_for_attempt(&self, attempt: u32) -> Duration {
        if self.base_delay.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        // Cap the shift so the multiplier cannot overflow; max_delay
        // clamps the result anyway.
        let exp = (attempt - 1).min(20);
        let raw = self.base_delay.saturating_mul(1u32 << exp).min(self.max_delay);
        // SplitMix64 over (seed, attempt) → factor in [0.5, 1.5).
        let mut z = self.jitter_seed ^ (attempt as u64).wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let factor = 0.5 + (z % 1000) as f64 / 1000.0;
        raw.mul_f64(factor).min(self.max_delay)
    }

    /// Runs `op` until it succeeds, fails non-retryably, or attempts or
    /// the deadline budget run out. Returns the last error on exhaustion.
    ///
    /// Compatibility entry point: delays are computed (and counted
    /// against the deadline) but not slept — use [`Self::run_with`] with
    /// a sleep hook to actually advance a clock between attempts.
    pub fn run<T>(&self, op: impl FnMut() -> CloudResult<T>) -> CloudResult<T> {
        self.run_with(|_| {}, op).map_err(|e| e.error)
    }

    /// Runs `op` with explicit attempt spacing: `sleep` is invoked with
    /// each inter-attempt delay (the dispatcher advances the virtual
    /// clock there). The returned [`RetryError`] carries the attempt
    /// count, the total backoff, and the last underlying error.
    pub fn run_with<T>(
        &self,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut() -> CloudResult<T>,
    ) -> Result<T, RetryError> {
        assert!(self.max_attempts >= 1, "max_attempts must be at least 1");
        let mut attempts = 0u32;
        let mut waited = Duration::ZERO;
        loop {
            attempts += 1;
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempts < self.max_attempts => {
                    let delay = self.delay_for_attempt(attempts);
                    if let Some(budget) = self.deadline {
                        if waited + delay > budget {
                            return Err(RetryError { attempts, waited, error: e, timed_out: true });
                        }
                    }
                    waited += delay;
                    sleep(delay);
                }
                Err(e) => return Err(RetryError { attempts, waited, error: e, timed_out: false }),
            }
        }
    }
}

/// A failed (possibly multi-attempt) operation, with its retry context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryError {
    /// Attempts made (including the final failing one).
    pub attempts: u32,
    /// Total backoff accumulated before giving up.
    pub waited: Duration,
    /// The last underlying error.
    pub error: CloudError,
    /// Whether the deadline budget (not the attempt count) ended the
    /// operation.
    pub timed_out: bool,
}

impl RetryError {
    /// Collapses the retry context back into a [`CloudError`]: deadline
    /// exhaustion becomes [`CloudError::Timeout`], anything else passes
    /// the last error through.
    pub fn into_cloud_error(self) -> CloudError {
        if self.timed_out {
            if let Some(provider) = self.error.provider() {
                return CloudError::Timeout { provider, waited: self.waited };
            }
        }
        self.error
    }
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gave up after {} attempt(s) ({:.3}s backoff{}): {}",
            self.attempts,
            self.waited.as_secs_f64(),
            if self.timed_out { ", deadline exhausted" } else { "" },
            self.error
        )
    }
}

impl std::error::Error for RetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ObjectKey, ProviderId};

    fn transient() -> CloudError {
        CloudError::Transient { provider: ProviderId(0), reason: "throttled" }
    }

    #[test]
    fn succeeds_first_try() {
        let calls = std::cell::Cell::new(0);
        let r = RetryPolicy::default().run(|| {
            calls.set(calls.get() + 1);
            Ok::<_, CloudError>(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn retries_transient_until_success() {
        let calls = std::cell::Cell::new(0);
        let r = RetryPolicy { max_attempts: 5, ..RetryPolicy::default() }.run(|| {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let calls = std::cell::Cell::new(0);
        let r: CloudResult<()> =
            RetryPolicy { max_attempts: 4, ..RetryPolicy::default() }.run(|| {
                calls.set(calls.get() + 1);
                Err(transient())
            });
        assert!(matches!(r, Err(CloudError::Transient { .. })));
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn outage_is_not_retried() {
        let calls = std::cell::Cell::new(0);
        let r: CloudResult<()> =
            RetryPolicy { max_attempts: 10, ..RetryPolicy::default() }.run(|| {
                calls.set(calls.get() + 1);
                Err(CloudError::Unavailable { provider: ProviderId(1) })
            });
        assert!(matches!(r, Err(CloudError::Unavailable { .. })));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn not_found_is_not_retried() {
        let calls = std::cell::Cell::new(0);
        let r: CloudResult<()> = RetryPolicy::default().run(|| {
            calls.set(calls.get() + 1);
            Err(CloudError::NoSuchObject { key: ObjectKey::new("c", "o") })
        });
        assert!(r.is_err());
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn none_policy_is_single_shot() {
        let calls = std::cell::Cell::new(0);
        let _: CloudResult<()> = RetryPolicy::none().run(|| {
            calls.set(calls.get() + 1);
            Err(transient())
        });
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn attempt_spacing_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
            deadline: None,
            jitter_seed: 42,
        };
        let mut slept: Vec<Duration> = Vec::new();
        let r: Result<(), _> = policy.run_with(|d| slept.push(d), || Err(transient()));
        let err = r.unwrap_err();
        assert_eq!(err.attempts, 8, "attempt counter surfaced in the error");
        assert!(!err.timed_out);
        assert_eq!(slept.len(), 7, "one delay between each pair of attempts");
        // Each observed delay matches the policy's published schedule.
        for (i, d) in slept.iter().enumerate() {
            assert_eq!(*d, policy.delay_for_attempt(i as u32 + 1));
        }
        assert_eq!(err.waited, slept.iter().sum::<Duration>());
        // Jitter stays within [0.5, 1.5) of the capped exponential base,
        // and the cap binds the tail of the schedule.
        for (i, d) in slept.iter().enumerate() {
            let raw =
                Duration::from_millis(100).saturating_mul(1u32 << i).min(Duration::from_secs(2));
            assert!(*d >= raw.mul_f64(0.5) && *d <= Duration::from_secs(2), "attempt {i}: {d:?}");
        }
        // Same seed → identical schedule.
        let mut again: Vec<Duration> = Vec::new();
        let _: Result<(), _> = policy.run_with(|d| again.push(d), || Err(transient()));
        assert_eq!(slept, again);
        // Different seed → different schedule (with overwhelming odds).
        let other = RetryPolicy { jitter_seed: 43, ..policy };
        let mut third: Vec<Duration> = Vec::new();
        let _: Result<(), _> = other.run_with(|d| third.push(d), || Err(transient()));
        assert_ne!(slept, third);
    }

    #[test]
    fn deadline_budget_stops_before_attempts_run_out() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_secs(1),
            max_delay: Duration::from_secs(1),
            deadline: Some(Duration::ZERO),
            jitter_seed: 7,
        };
        let calls = std::cell::Cell::new(0u32);
        let r: Result<(), _> = policy.run_with(
            |_| panic!("must not sleep past a zero deadline"),
            || {
                calls.set(calls.get() + 1);
                Err(transient())
            },
        );
        let err = r.unwrap_err();
        assert!(err.timed_out);
        assert_eq!(err.attempts, 1);
        assert_eq!(calls.get(), 1);
        assert_eq!(err.waited, Duration::ZERO);
        assert!(matches!(
            err.clone().into_cloud_error(),
            CloudError::Timeout { provider: ProviderId(0), .. }
        ));
        // Non-timeout exhaustion passes the last error through.
        let plain = RetryError {
            attempts: 3,
            waited: Duration::from_secs(1),
            error: transient(),
            timed_out: false,
        };
        assert!(matches!(plain.into_cloud_error(), CloudError::Transient { .. }));
    }

    #[test]
    fn retry_error_exposes_source_and_context() {
        let policy = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
        let r: Result<(), _> = policy.run_with(|_| {}, || Err(transient()));
        let err = r.unwrap_err();
        assert_eq!(err.attempts, 2);
        let msg = err.to_string();
        assert!(msg.contains("2 attempt"), "attempt count in the message: {msg}");
        let src = std::error::Error::source(&err).expect("source chains to the cloud error");
        assert!(src.to_string().contains("throttled"));
    }
}
