//! Bounded retry for transient faults.
//!
//! Outages are *not* retried — the paper's recovery design (§III-C)
//! handles those with degraded reads and update logging. Retry only makes
//! sense for throttling/packet-loss style [`CloudError::Transient`]
//! failures, and only a bounded number of times so a misclassified outage
//! cannot stall the dispatcher.

use crate::error::{CloudError, CloudResult};

/// How many times to re-attempt a transiently-failing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (>= 1). 1 means "no retries".
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

impl RetryPolicy {
    /// Policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1 }
    }

    /// Runs `op` until it succeeds, fails non-retryably, or attempts run
    /// out. Returns the last error on exhaustion.
    pub fn run<T>(&self, mut op: impl FnMut() -> CloudResult<T>) -> CloudResult<T> {
        assert!(self.max_attempts >= 1, "max_attempts must be at least 1");
        let mut last: Option<CloudError> = None;
        for _ in 0..self.max_attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("loop ran at least once"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ObjectKey, ProviderId};

    fn transient() -> CloudError {
        CloudError::Transient { provider: ProviderId(0), reason: "throttled" }
    }

    #[test]
    fn succeeds_first_try() {
        let calls = std::cell::Cell::new(0);
        let r = RetryPolicy::default().run(|| {
            calls.set(calls.get() + 1);
            Ok::<_, CloudError>(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn retries_transient_until_success() {
        let calls = std::cell::Cell::new(0);
        let r = RetryPolicy { max_attempts: 5 }.run(|| {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let calls = std::cell::Cell::new(0);
        let r: CloudResult<()> = RetryPolicy { max_attempts: 4 }.run(|| {
            calls.set(calls.get() + 1);
            Err(transient())
        });
        assert!(matches!(r, Err(CloudError::Transient { .. })));
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn outage_is_not_retried() {
        let calls = std::cell::Cell::new(0);
        let r: CloudResult<()> = RetryPolicy { max_attempts: 10 }.run(|| {
            calls.set(calls.get() + 1);
            Err(CloudError::Unavailable { provider: ProviderId(1) })
        });
        assert!(matches!(r, Err(CloudError::Unavailable { .. })));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn not_found_is_not_retried() {
        let calls = std::cell::Cell::new(0);
        let r: CloudResult<()> = RetryPolicy::default().run(|| {
            calls.set(calls.get() + 1);
            Err(CloudError::NoSuchObject { key: ObjectKey::new("c", "o") })
        });
        assert!(r.is_err());
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn none_policy_is_single_shot() {
        let calls = std::cell::Cell::new(0);
        let _: CloudResult<()> = RetryPolicy::none().run(|| {
            calls.set(calls.get() + 1);
            Err(transient())
        });
        assert_eq!(calls.get(), 1);
    }
}
