//! # hyrd-gcsapi — the General Cloud Storage API middleware
//!
//! The paper (§III-D): *"To interact with multiple cloud storage
//! providers, we have implemented a middleware of general cloud storage
//! API, short for GCS-API. The GCS-API middleware hides the complexity of
//! the cloud storage providers at the system level."*
//!
//! Each provider is a **passive storage functional entity** supporting
//! exactly five functions — List, Get, Create, Put, Remove — expressed
//! here as the [`CloudStorage`] trait. Every operation returns an
//! [`OpReport`] describing what it cost (latency, bytes moved, op class),
//! which is how the cost simulator and the latency experiments observe
//! the system without the providers knowing anything about HyRD.
//!
//! * [`types`] — provider ids, object keys, op kinds, op reports.
//! * [`error`] — the error taxonomy (`Unavailable` is what a cloud outage
//!   looks like to a client).
//! * [`storage`] — the [`CloudStorage`] trait plus an in-memory reference
//!   implementation used by unit tests.
//! * [`instrument`] — a transparent wrapper accumulating per-op statistics
//!   with atomics (op counts, bytes, latency), used by the ablation
//!   benches to count write-amplification and recovery traffic.
//! * [`retry`] — bounded retry policy for transient failures: capped
//!   exponential backoff with deterministic jitter and a deadline budget.
//! * [`compose`] — virtual-time composition of op reports: parallel
//!   fan-out takes the max of branch latencies, serial rounds sum.

pub mod compose;
pub mod error;
pub mod instrument;
pub mod retry;
pub mod storage;
pub mod types;

pub use compose::{parallel_latency, serial_latency, BatchReport};
pub use error::{CloudError, CloudResult};
pub use instrument::{Instrumented, OpStats, StatsSnapshot};
pub use retry::{RetryError, RetryPolicy};
pub use storage::{CloudStorage, MemoryCloud};
pub use types::{ObjectKey, OpKind, OpOutcome, OpReport, ProviderId};
