//! Criterion micro-benchmarks for the erasure-coding substrate: the hot
//! loops behind every large-file operation in the system.
//!
//! Besides the Criterion groups, this binary maintains the machine-
//! readable baseline `BENCH_gfec.json` at the repo root (DESIGN.md §8).
//! Set `BENCH_JSON_ONLY=1` to skip Criterion and only refresh the JSON —
//! the mode CI's bench-smoke job runs.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};

use hyrd_bench::summary;
use hyrd_gfec::gf256::{mul_slice_acc, reference, xor_slice, Gf256};
use hyrd_gfec::parallel::encode_parallel;
use hyrd_gfec::stripe::StripePlanner;
use hyrd_gfec::update::{apply_ranged_update_multi, parity_window, plan_update};
use hyrd_gfec::{ErasureCode, Fragment, Raid5, Raid6, ReedSolomon};

const MB: usize = 1 << 20;

fn shards(m: usize, len: usize) -> Vec<Vec<u8>> {
    (0..m).map(|i| (0..len).map(|b| ((b * 31 + i * 7) % 251) as u8).collect()).collect()
}

fn bench_gf_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256-kernels");
    let src = vec![0xA7u8; MB];
    let mut dst = vec![0x5Cu8; MB];
    g.throughput(Throughput::Bytes(MB as u64));
    g.bench_function("xor_slice/1MiB", |b| b.iter(|| xor_slice(&mut dst, &src)));
    g.bench_function("mul_slice_acc/1MiB", |b| {
        b.iter(|| mul_slice_acc(&mut dst, &src, Gf256(0x53)))
    });
    // The seed's naive log/exp loop, kept as the correctness oracle —
    // benched here so the nibble-kernel speedup stays visible.
    g.bench_function("mul_slice_acc-naive/1MiB", |b| {
        b.iter(|| reference::mul_slice_acc(&mut dst, &src, Gf256(0x53)))
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for len in [64 * 1024usize, 1 << 20, 4 << 20] {
        let data = shards(3, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        g.throughput(Throughput::Bytes(3 * len as u64));

        let raid5 = Raid5::new(3).expect("valid shape");
        g.bench_with_input(BenchmarkId::new("raid5(3+1)", len), &refs, |b, refs| {
            b.iter(|| raid5.encode(refs).expect("valid shards"))
        });
        let rs = ReedSolomon::new(3, 5).expect("valid shape");
        g.bench_with_input(BenchmarkId::new("rs(3,5)", len), &refs, |b, refs| {
            b.iter(|| rs.encode(refs).expect("valid shards"))
        });
        let mut parity = vec![Vec::new(); 2];
        g.bench_with_input(BenchmarkId::new("rs(3,5)-into", len), &refs, |b, refs| {
            b.iter(|| rs.encode_into(refs, &mut parity).expect("valid shards"))
        });
        let raid6 = Raid6::new(3).expect("valid shape");
        g.bench_with_input(BenchmarkId::new("raid6(3+2)", len), &refs, |b, refs| {
            b.iter(|| raid6.encode(refs).expect("valid shards"))
        });
        g.bench_with_input(BenchmarkId::new("raid5-rayon", len), &refs, |b, refs| {
            b.iter(|| encode_parallel(&raid5, refs).expect("valid shards"))
        });
    }
    g.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconstruct");
    let len = 1usize << 20;
    let planner = StripePlanner::new(3, 4).expect("valid shape");
    let code = Raid5::new(3).expect("valid shape");
    let object: Vec<u8> = (0..3 * len).map(|i| (i % 251) as u8).collect();
    let (layout, frags) = planner.encode_object(&code, &object).expect("encodes");
    g.throughput(Throughput::Bytes(object.len() as u64));

    // Losing a data fragment forces the XOR rebuild.
    let degraded: Vec<Fragment> = frags.iter().filter(|f| f.index != 1).cloned().collect();
    g.bench_function("raid5-degraded/3MiB", |b| {
        b.iter(|| code.reconstruct(&degraded, layout.shard_len).expect("decodable"))
    });
    // All data fragments present: the systematic fast path.
    let healthy: Vec<Fragment> = frags.iter().filter(|f| f.index != 3).cloned().collect();
    g.bench_function("raid5-systematic/3MiB", |b| {
        b.iter(|| code.reconstruct(&healthy, layout.shard_len).expect("decodable"))
    });

    let rs = ReedSolomon::new(3, 5).expect("valid shape");
    let (layout5, frags5) = StripePlanner::new(3, 5)
        .expect("valid shape")
        .encode_object(&rs, &object)
        .expect("encodes");
    let two_lost: Vec<Fragment> =
        frags5.iter().filter(|f| f.index != 0 && f.index != 2).cloned().collect();
    g.bench_function("rs(3,5)-two-erasures/3MiB", |b| {
        b.iter(|| rs.reconstruct(&two_lost, layout5.shard_len).expect("decodable"))
    });
    g.finish();
}

fn bench_update_planning(c: &mut Criterion) {
    let planner = StripePlanner::new(3, 4).expect("valid shape");
    let layout = planner.plan(100 << 20);
    c.bench_function("plan_update/4KB-in-100MB", |b| {
        b.iter(|| plan_update(&layout, 12_345_678, 4096).expect("in bounds"))
    });
}

/// Refreshes the repo-root `BENCH_gfec.json` with wall-clock MB/s for
/// each hot path, fast kernels and the naive log/exp reference side by
/// side. `BENCH_JSON_ONLY` shortens the per-measurement time box so the
/// CI smoke run finishes in seconds.
fn write_summary() {
    let t =
        if summary::json_only() { Duration::from_millis(120) } else { Duration::from_millis(400) };

    // Raw slice kernels, 1 MiB.
    let src = vec![0xA7u8; MB];
    let mut dst = vec![0x5Cu8; MB];
    let mul_fast = summary::throughput_mbps(MB, t, || mul_slice_acc(&mut dst, &src, Gf256(0x53)));
    let mul_naive =
        summary::throughput_mbps(MB, t, || reference::mul_slice_acc(&mut dst, &src, Gf256(0x53)));
    let xor = summary::throughput_mbps(MB, t, || xor_slice(&mut dst, &src));

    // Encode, 3 × 1 MiB shards.
    let data = shards(3, MB);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let rs = ReedSolomon::new(3, 5).expect("valid shape");
    let rs_fast = summary::throughput_mbps(3 * MB, t, || {
        black_box(rs.encode(&refs).expect("valid shards"));
    });
    // Reused caller buffers: no per-call allocation, no page faults —
    // the number the dispatcher's hot paths see.
    let mut parity_bufs = vec![Vec::new(); 2];
    let rs_into = summary::throughput_mbps(3 * MB, t, || {
        rs.encode_into(&refs, &mut parity_bufs).expect("valid shards");
        black_box(&parity_bufs);
    });
    // The seed algorithm: one naive log/exp sweep per parity row, with
    // per-call allocation (as the seed's encode had) and warm-buffer.
    let coeffs = rs.parity_coefficients();
    let rs_naive = summary::throughput_mbps(3 * MB, t, || {
        let mut parity = vec![vec![0u8; MB]; coeffs.len()];
        for (row, cs) in parity.iter_mut().zip(&coeffs) {
            for (shard, &c) in refs.iter().zip(cs.iter()) {
                reference::mul_slice_acc(row, shard, c);
            }
        }
        black_box(parity);
    });
    let mut naive_bufs = vec![vec![0u8; MB]; coeffs.len()];
    let rs_naive_warm = summary::throughput_mbps(3 * MB, t, || {
        for (row, cs) in naive_bufs.iter_mut().zip(&coeffs) {
            row.fill(0);
            for (shard, &c) in refs.iter().zip(cs.iter()) {
                reference::mul_slice_acc(row, shard, c);
            }
        }
        black_box(&naive_bufs);
    });
    let raid5 = Raid5::new(3).expect("valid shape");
    let raid5_enc = summary::throughput_mbps(3 * MB, t, || {
        black_box(raid5.encode(&refs).expect("valid shards"));
    });
    let raid6 = Raid6::new(3).expect("valid shape");
    let raid6_enc = summary::throughput_mbps(3 * MB, t, || {
        black_box(raid6.encode(&refs).expect("valid shards"));
    });

    // Decode, 3 MiB object.
    let object: Vec<u8> = (0..3 * MB).map(|i| (i % 251) as u8).collect();
    let planner5 = StripePlanner::new(3, 5).expect("valid shape");
    let (layout5, frags5) = planner5.encode_object(&rs, &object).expect("encodes");
    let two_lost: Vec<Fragment> =
        frags5.iter().filter(|f| f.index != 0 && f.index != 3).cloned().collect();
    let rs_dec = summary::throughput_mbps(3 * MB, t, || {
        black_box(rs.reconstruct(&two_lost, layout5.shard_len).expect("decodable"));
    });
    let planner4 = StripePlanner::new(3, 4).expect("valid shape");
    let (layout4, frags4) = planner4.encode_object(&raid5, &object).expect("encodes");
    let degraded: Vec<Fragment> = frags4.iter().filter(|f| f.index != 1).cloned().collect();
    let raid5_dec = summary::throughput_mbps(3 * MB, t, || {
        black_box(raid5.reconstruct(&degraded, layout4.shard_len).expect("decodable"));
    });

    // Ranged partial update: 4 KiB rewritten inside the 3 MiB object.
    let plan = plan_update(&layout5, 1_234_567, 4096).expect("in bounds");
    let (lo, hi) = parity_window(&plan.touched);
    let old_segments: Vec<Vec<u8>> =
        plan.touched.iter().map(|&(sh, st, l)| frags5[sh].data[st..st + l].to_vec()).collect();
    let old_parities: Vec<Vec<u8>> = (3..5).map(|p| frags5[p].data[lo..hi].to_vec()).collect();
    let new_bytes: Vec<u8> = (0..4096).map(|i| (i * 89) as u8).collect();
    let upd = summary::throughput_mbps(4096, t, || {
        black_box(
            apply_ranged_update_multi(
                &plan.touched,
                &old_segments,
                &old_parities,
                &new_bytes,
                &coeffs,
            )
            .expect("consistent update"),
        );
    });

    summary::merge(&[
        ("shard_bytes", serde_json::json!(MB)),
        ("mul_slice_acc_mbps", summary::round1(mul_fast)),
        ("mul_slice_acc_naive_mbps", summary::round1(mul_naive)),
        ("xor_slice_mbps", summary::round1(xor)),
        ("rs_3_5_encode_mbps", summary::round1(rs_fast)),
        ("rs_3_5_encode_into_mbps", summary::round1(rs_into)),
        ("rs_3_5_encode_naive_mbps", summary::round1(rs_naive)),
        ("rs_3_5_encode_naive_warm_mbps", summary::round1(rs_naive_warm)),
        // Warm-vs-warm is the kernel comparison; the alloc-inclusive
        // pair above shows how much page faults cost either path.
        (
            "rs_3_5_encode_speedup",
            serde_json::json!(((rs_into / rs_naive_warm) * 100.0).round() / 100.0),
        ),
        ("raid5_encode_mbps", summary::round1(raid5_enc)),
        ("raid6_encode_mbps", summary::round1(raid6_enc)),
        ("rs_3_5_decode_two_erasures_mbps", summary::round1(rs_dec)),
        ("raid5_degraded_decode_mbps", summary::round1(raid5_dec)),
        ("ranged_update_4k_mbps", summary::round1(upd)),
    ]);
}

criterion_group!(benches, bench_gf_kernels, bench_encode, bench_reconstruct, bench_update_planning);

fn main() {
    if summary::json_only() {
        write_summary();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
    write_summary();
}
