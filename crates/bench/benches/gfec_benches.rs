//! Criterion micro-benchmarks for the erasure-coding substrate: the hot
//! loops behind every large-file operation in the system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hyrd_gfec::gf256::{mul_acc_slice, xor_slice, Gf256};
use hyrd_gfec::parallel::encode_parallel;
use hyrd_gfec::stripe::StripePlanner;
use hyrd_gfec::update::plan_update;
use hyrd_gfec::{ErasureCode, Fragment, Raid5, Raid6, ReedSolomon};

fn shards(m: usize, len: usize) -> Vec<Vec<u8>> {
    (0..m)
        .map(|i| (0..len).map(|b| ((b * 31 + i * 7) % 251) as u8).collect())
        .collect()
}

fn bench_gf_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256-kernels");
    let src = vec![0xA7u8; 1 << 20];
    let mut dst = vec![0x5Cu8; 1 << 20];
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("xor_slice/1MiB", |b| b.iter(|| xor_slice(&mut dst, &src)));
    g.bench_function("mul_acc_slice/1MiB", |b| {
        b.iter(|| mul_acc_slice(&mut dst, &src, Gf256(0x53)))
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for len in [64 * 1024usize, 1 << 20, 4 << 20] {
        let data = shards(3, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        g.throughput(Throughput::Bytes(3 * len as u64));

        let raid5 = Raid5::new(3).expect("valid shape");
        g.bench_with_input(BenchmarkId::new("raid5(3+1)", len), &refs, |b, refs| {
            b.iter(|| raid5.encode(refs).expect("valid shards"))
        });
        let rs = ReedSolomon::new(3, 5).expect("valid shape");
        g.bench_with_input(BenchmarkId::new("rs(3,5)", len), &refs, |b, refs| {
            b.iter(|| rs.encode(refs).expect("valid shards"))
        });
        let raid6 = Raid6::new(3).expect("valid shape");
        g.bench_with_input(BenchmarkId::new("raid6(3+2)", len), &refs, |b, refs| {
            b.iter(|| raid6.encode(refs).expect("valid shards"))
        });
        g.bench_with_input(BenchmarkId::new("raid5-rayon", len), &refs, |b, refs| {
            b.iter(|| encode_parallel(&raid5, refs).expect("valid shards"))
        });
    }
    g.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconstruct");
    let len = 1usize << 20;
    let planner = StripePlanner::new(3, 4).expect("valid shape");
    let code = Raid5::new(3).expect("valid shape");
    let object: Vec<u8> = (0..3 * len).map(|i| (i % 251) as u8).collect();
    let (layout, frags) = planner.encode_object(&code, &object).expect("encodes");
    g.throughput(Throughput::Bytes(object.len() as u64));

    // Losing a data fragment forces the XOR rebuild.
    let degraded: Vec<Fragment> = frags.iter().filter(|f| f.index != 1).cloned().collect();
    g.bench_function("raid5-degraded/3MiB", |b| {
        b.iter(|| code.reconstruct(&degraded, layout.shard_len).expect("decodable"))
    });
    // All data fragments present: the systematic fast path.
    let healthy: Vec<Fragment> = frags.iter().filter(|f| f.index != 3).cloned().collect();
    g.bench_function("raid5-systematic/3MiB", |b| {
        b.iter(|| code.reconstruct(&healthy, layout.shard_len).expect("decodable"))
    });

    let rs = ReedSolomon::new(3, 5).expect("valid shape");
    let (layout5, frags5) = StripePlanner::new(3, 5)
        .expect("valid shape")
        .encode_object(&rs, &object)
        .expect("encodes");
    let two_lost: Vec<Fragment> =
        frags5.iter().filter(|f| f.index != 0 && f.index != 2).cloned().collect();
    g.bench_function("rs(3,5)-two-erasures/3MiB", |b| {
        b.iter(|| rs.reconstruct(&two_lost, layout5.shard_len).expect("decodable"))
    });
    g.finish();
}

fn bench_update_planning(c: &mut Criterion) {
    let planner = StripePlanner::new(3, 4).expect("valid shape");
    let layout = planner.plan(100 << 20);
    c.bench_function("plan_update/4KB-in-100MB", |b| {
        b.iter(|| plan_update(&layout, 12_345_678, 4096).expect("in bounds"))
    });
}

criterion_group!(
    benches,
    bench_gf_kernels,
    bench_encode,
    bench_reconstruct,
    bench_update_planning
);
criterion_main!(benches);
