//! Criterion benchmarks for the scheme layer: dispatcher overhead and
//! end-to-end PostMark replay throughput (virtual time is free — these
//! measure the *client-side CPU cost* of the placement machinery, not
//! the simulated network).
//!
//! Like `gfec_benches`, contributes its keys to the repo-root
//! `BENCH_gfec.json`; `BENCH_JSON_ONLY=1` skips Criterion entirely.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, Criterion, Throughput};

use hyrd_bench::summary;

use hyrd::driver::{replay, replay_with_state, synth_content, ReplayOptions, ReplayState};
use hyrd::prelude::*;
use hyrd_baselines::{DuraCloud, Racs};
use hyrd_workloads::{FsOp, PostMark, PostMarkConfig};

/// System allocator with an allocation counter, backing the telemetry
/// disabled-path guard below.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The telemetry zero-cost contract: a disabled [`Collector`] must not
/// allocate on any instrumentation call — spans, events, field chains, or
/// metrics. Run before the benchmarks so a regression fails loudly instead
/// of silently taxing every instrumented hot path.
fn assert_disabled_telemetry_never_allocates() {
    let tel = hyrd::telemetry::Collector::disabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let _guard = tel.span_labeled("bench.span", "provider");
        let inner = tel.span_with("bench.inner").field("iter", i).field("tag", "t").start();
        tel.event("bench.event").field("iter", i).field("tag", "t").emit();
        tel.inc("bench.counter", 1);
        tel.inc_labeled("bench.counter", "provider", 1);
        tel.observe("bench.hist", i);
        tel.observe_labeled("bench.hist", "provider", i);
        black_box(tel.enabled());
        inner.end();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated {} times in 1000 iterations",
        after - before
    );
    println!("telemetry disabled-path guard: 0 allocations across 1000 iterations");
}

/// Allocation-diet guard for the replay hot loop: once the pool, the
/// synth-content scratch buffer and the caches are warm, a steady-state
/// lap of reads and in-place updates must stay inside a fixed allocation
/// budget per op. The budget is deliberately loose — it exists to catch
/// per-op blowups (re-serializing unchanged metadata, O(n) cache
/// shuffles), not to freeze the exact count.
fn assert_replay_allocation_budget() {
    let (ops, _) = PostMark::new(small_postmark(2)).generate();
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let opts = ReplayOptions::default();
    let mut state = ReplayState::default();
    replay_with_state(&mut h, &ops, &clock, &opts, &mut state);

    // Steady state: no pool growth, just reads and small updates over
    // the surviving files (every file is ≥ 1 KB, so offset+len fit).
    let paths: Vec<String> = state.expected_paths().iter().map(|s| s.to_string()).collect();
    assert!(!paths.is_empty(), "warmup left no live files");
    let steady: Vec<FsOp> = paths
        .iter()
        .cycle()
        .take(300)
        .enumerate()
        .map(|(i, p)| {
            if i % 3 == 0 {
                FsOp::Update { path: p.clone(), offset: (i as u64 % 8) * 64, len: 64 }
            } else {
                FsOp::Read { path: p.clone() }
            }
        })
        .collect();

    // One warm lap, then the measured lap.
    let warm = replay_with_state(&mut h, &steady, &clock, &opts, &mut state);
    assert_eq!(warm.errors, 0, "steady-state warm lap errored");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let measured = replay_with_state(&mut h, &steady, &clock, &opts, &mut state);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(measured.errors, 0, "steady-state measured lap errored");
    let per_op = (after - before) / steady.len() as u64;
    assert!(per_op <= 1000, "steady-state replay allocates {per_op} times/op (budget 1000)");
    println!(
        "replay allocation guard: {per_op} allocations/op across {} steady-state ops",
        steady.len()
    );
}

fn small_postmark(seed: u64) -> PostMarkConfig {
    PostMarkConfig {
        initial_files: 30,
        transactions: 100,
        size_dist: hyrd_workloads::FileSizeDist::log_uniform(1024, 256 * 1024),
        seed,
        ..PostMarkConfig::default()
    }
}

fn bench_dispatcher_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatcher");
    let small = synth_content("/s", 0, 16 << 10);
    let large = synth_content("/l", 0, 4 << 20);

    g.throughput(Throughput::Bytes(small.len() as u64));
    g.bench_function("hyrd-create-small/16KB", |b| {
        b.iter_batched(
            || {
                let fleet = Fleet::standard_four(SimClock::new());
                Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config")
            },
            |mut h| h.create_file("/s", &small).expect("fleet up"),
            criterion::BatchSize::SmallInput,
        )
    });

    g.throughput(Throughput::Bytes(large.len() as u64));
    g.bench_function("hyrd-create-large/4MB", |b| {
        b.iter_batched(
            || {
                let fleet = Fleet::standard_four(SimClock::new());
                for p in fleet.providers() {
                    p.set_ghost_mode(true);
                }
                Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config")
            },
            |mut h| h.create_file("/l", &large).expect("fleet up"),
            criterion::BatchSize::SmallInput,
        )
    });

    g.bench_function("hyrd-read-large/4MB", |b| {
        b.iter_batched(
            || {
                let fleet = Fleet::standard_four(SimClock::new());
                let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
                h.create_file("/l", &large).expect("fleet up");
                h
            },
            |mut h| h.read_file("/l").expect("fleet up"),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("postmark-replay");
    g.sample_size(10);
    let (ops, _) = PostMark::new(small_postmark(1)).generate();
    g.throughput(Throughput::Elements(ops.len() as u64));

    g.bench_function("hyrd/160-files-230-txn", |b| {
        b.iter_batched(
            || {
                let clock = SimClock::new();
                let fleet = Fleet::standard_four(clock.clone());
                for p in fleet.providers() {
                    p.set_ghost_mode(true);
                }
                (clock, Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config"))
            },
            |(clock, mut h)| replay(&mut h, &ops, &clock, &ReplayOptions::default()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("racs/160-files-230-txn", |b| {
        b.iter_batched(
            || {
                let clock = SimClock::new();
                let fleet = Fleet::standard_four(clock.clone());
                for p in fleet.providers() {
                    p.set_ghost_mode(true);
                }
                (clock, Racs::new(&fleet).expect("4-provider fleet"))
            },
            |(clock, mut r)| replay(&mut r, &ops, &clock, &ReplayOptions::default()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("duracloud/160-files-230-txn", |b| {
        b.iter_batched(
            || {
                let clock = SimClock::new();
                let fleet = Fleet::standard_four(clock.clone());
                for p in fleet.providers() {
                    p.set_ghost_mode(true);
                }
                (clock, DuraCloud::standard(&fleet).expect("standard fleet"))
            },
            |(clock, mut d)| replay(&mut d, &ops, &clock, &ReplayOptions::default()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Wall-clock MB/s for the dispatcher's large-file write and read paths
/// (ghost-mode providers, so this is pure client CPU: striping, the
/// fused encode, and the zero-copy fragment plumbing).
fn write_summary() {
    let t =
        if summary::json_only() { Duration::from_millis(120) } else { Duration::from_millis(400) };
    let large = synth_content("/l", 0, 4 << 20);

    let create = summary::throughput_mbps(large.len(), t, || {
        let fleet = Fleet::standard_four(SimClock::new());
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        black_box(h.create_file("/l", &large).expect("fleet up"));
    });

    let fleet = Fleet::standard_four(SimClock::new());
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    h.create_file("/l", &large).expect("fleet up");
    let read = summary::throughput_mbps(large.len(), t, || {
        black_box(h.read_file("/l").expect("fleet up"));
    });

    summary::merge(&[
        ("dispatcher_create_4mb_mbps", summary::round1(create)),
        ("dispatcher_read_4mb_mbps", summary::round1(read)),
    ]);
}

criterion_group!(benches, bench_dispatcher_ops, bench_replay);

fn main() {
    assert_disabled_telemetry_never_allocates();
    assert_replay_allocation_budget();
    if summary::json_only() {
        write_summary();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
    write_summary();
}
