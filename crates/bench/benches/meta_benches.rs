//! Metastore scalability benchmarks for the sharded OCC metastore.
//!
//! Three questions, answered with free-running OS threads (real lock
//! contention, not the deterministic engine — the engine serializes
//! execution, so it can never show a scaling win):
//!
//! 1. **Contention collapses with shards.** The same 16-writer hammer
//!    runs against `shards = 1` (the old single-stripe world, emulated)
//!    and `shards = 16` (the default); blocked lock acquisitions, OCC
//!    conflicts and aggregate throughput are recorded for both.
//! 2. **Throughput scales with writers.** With 16 shards, the hammer
//!    runs at 1 and 16 threads; aggregate namespace ops/s for each is
//!    the scaling record. (On a single-core host the ratio is bounded
//!    by the core count — the contention collapse above is the
//!    machine-independent signal.)
//! 3. **Diff flushes are small.** A 1 000-entry directory is flushed
//!    once (full block), then one entry changes and the next flush
//!    ships an incremental diff; the byte ratio is the price a
//!    many-writer deployment pays per metadata checkpoint.
//!
//! Results land in the repo-root `BENCH_meta.json` (`just bench-meta`).

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use hyrd_bench::summary;
use hyrd_metastore::{FlushKind, MetaOccStats, NormPath, ShardedMetaStore};

struct Lap {
    secs: f64,
    /// Namespace operations performed (create + stat + remove).
    ops: u64,
    stats: MetaOccStats,
}

/// `threads` free-running writers hammer a store with `shards` shards.
///
/// Each writer works mostly in a private directory (the many-writer
/// steady state) but sends every fourth transaction through one shared
/// directory, so the single-shard configuration exhibits the cross-writer
/// conflicts the OCC path exists to absorb.
fn hammer(shards: usize, threads: usize, txns_per_thread: usize) -> Lap {
    let store = Arc::new(ShardedMetaStore::with_shards(shards));
    store.mkdir_all(&NormPath::parse("/shared").expect("valid path"));
    for t in 0..threads {
        store.mkdir_all(&NormPath::parse(&format!("/client{t}")).expect("valid path"));
    }

    let t0 = Instant::now();
    let mut ops = 0u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let private = NormPath::parse(&format!("/client{t}")).expect("valid path");
                let shared = NormPath::parse("/shared").expect("valid path");
                let mut ops = 0u64;
                for i in 0..txns_per_thread {
                    let dir = if i % 4 == 0 { &shared } else { &private };
                    let path = dir.join(&format!("f{t}_{i}")).expect("valid name");
                    let now = Duration::from_nanos((t * txns_per_thread + i) as u64);
                    store.create_file(&path, 4096, now).expect("create");
                    store.inode(&path).expect("stat");
                    ops += 2;
                    if i % 2 == 0 {
                        store.remove_file(&path).expect("remove");
                        ops += 1;
                    }
                }
                ops
            })
        })
        .collect();
    for h in handles {
        ops += h.join().expect("writer thread panicked");
    }
    Lap { secs: t0.elapsed().as_secs_f64(), ops, stats: store.occ_stats() }
}

/// Full-block vs incremental-diff flush bytes for a 1 000-entry
/// directory with a single changed entry.
fn flush_efficiency() -> (u64, u64) {
    let store = ShardedMetaStore::with_shards(16);
    let dir = NormPath::parse("/bigdir").expect("valid path");
    for i in 0..1_000u64 {
        let path = dir.join(&format!("f{i:04}")).expect("valid name");
        store.create_file(&path, 1024, Duration::from_nanos(i)).expect("create");
    }
    let full = store.flush_dirty_encoded();
    assert_eq!(full.len(), 1, "one dirty directory");
    assert_eq!(full[0].kind, FlushKind::Block, "first flush ships a full block");
    let full_bytes = full[0].bytes.len() as u64;

    let hot = dir.join("hot").expect("valid name");
    store.create_file(&hot, 1024, Duration::from_nanos(2_000)).expect("create");
    let diff = store.flush_dirty_encoded();
    assert_eq!(diff.len(), 1, "one dirty directory");
    assert_eq!(diff[0].kind, FlushKind::Diff, "second flush ships a diff");
    assert_eq!(diff[0].records, 1, "exactly the changed entry");
    (full_bytes, diff[0].bytes.len() as u64)
}

fn main() {
    let txns = if summary::json_only() { 2_000 } else { 10_000 };

    let coarse = hammer(1, 16, txns);
    let sharded = hammer(16, 16, txns);
    let solo = hammer(16, 1, txns);

    let rate = |l: &Lap| l.ops as f64 / l.secs.max(1e-9);
    let collapse = coarse.stats.contended as f64 / sharded.stats.contended.max(1) as f64;
    println!(
        "16 writers, 1 shard : {:.0} ops/s, {} contended, {} conflicts, {} retries",
        rate(&coarse),
        coarse.stats.contended,
        coarse.stats.conflicts,
        coarse.stats.retries
    );
    println!(
        "16 writers, 16 shards: {:.0} ops/s, {} contended, {} conflicts, {} retries \
         -> contention collapse {:.1}x",
        rate(&sharded),
        sharded.stats.contended,
        sharded.stats.conflicts,
        sharded.stats.retries,
        collapse
    );
    println!(
        "1 writer,  16 shards: {:.0} ops/s -> 16-writer scaling {:.2}x",
        rate(&solo),
        rate(&sharded) / rate(&solo).max(1e-9)
    );

    let (full_bytes, diff_bytes) = flush_efficiency();
    println!(
        "flush: full block {full_bytes} B, single-entry diff {diff_bytes} B \
         -> {:.1}x smaller",
        full_bytes as f64 / diff_bytes.max(1) as f64
    );

    // This bench is BENCH_meta.json's only producer, so it writes the
    // whole flat object itself (values pre-rendered as JSON literals).
    let r1 = |v: f64| format!("{:.1}", (v * 10.0).round() / 10.0);
    write_baseline(&[
        ("meta_txns_per_thread", txns.to_string()),
        ("meta_opspersec_16w_1shard", r1(rate(&coarse))),
        ("meta_opspersec_16w_16shard", r1(rate(&sharded))),
        ("meta_opspersec_1w_16shard", r1(rate(&solo))),
        ("meta_writer_scaling_1_to_16", r1(rate(&sharded) / rate(&solo).max(1e-9))),
        ("meta_contended_16w_1shard", coarse.stats.contended.to_string()),
        ("meta_contended_16w_16shard", sharded.stats.contended.to_string()),
        ("meta_contention_collapse", r1(collapse)),
        ("meta_occ_conflicts_16w_1shard", coarse.stats.conflicts.to_string()),
        ("meta_occ_conflicts_16w_16shard", sharded.stats.conflicts.to_string()),
        ("meta_flush_full_block_bytes", full_bytes.to_string()),
        ("meta_flush_single_entry_diff_bytes", diff_bytes.to_string()),
        ("meta_flush_diff_shrink", r1(full_bytes as f64 / diff_bytes.max(1) as f64)),
    ]);
}

/// Writes the baseline as a flat JSON object, one key per line.
fn write_baseline(entries: &[(&str, String)]) {
    let path = summary::repo_root_file("BENCH_meta.json");
    let mut body = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        body.push_str(&format!("  \"{k}\": {v}{sep}\n"));
    }
    body.push_str("}\n");
    std::fs::write(&path, body).expect("write BENCH_meta.json");
    println!("[bench summary written to {}]", path.display());
}
