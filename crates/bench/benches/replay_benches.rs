//! Criterion micro-benchmarks for the replay-throughput overhaul: the
//! SHA-256 kernels behind dedup fingerprinting and read verification,
//! the single-thread replay hot loop, and the parallel sweep engine.
//!
//! Besides the Criterion groups, this binary maintains the machine-
//! readable baseline `BENCH_replay.json` at the repo root (DESIGN.md
//! §10). Set `BENCH_JSON_ONLY=1` to skip Criterion and only refresh the
//! JSON — the mode CI's bench-smoke job runs.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion, Throughput};

use hyrd::driver::{effective_jobs, replay, replay_sweep, ReplayOptions};
use hyrd::prelude::*;
use hyrd_bench::summary;
use hyrd_dedup::sha256;
use hyrd_workloads::{PostMark, PostMarkConfig};

const MB: usize = 1 << 20;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect()
}

fn bench_sha_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256-kernels");
    let data = payload(MB);
    g.throughput(Throughput::Bytes(MB as u64));
    for kernel in sha256::Kernel::available() {
        g.bench_function(format!("{}/1MiB", kernel.name()), |b| {
            b.iter(|| sha256::sha256_with_kernel(kernel, black_box(&data)))
        });
    }
    // The seed's straight-line compress, kept as the correctness oracle —
    // benched here so the kernel speedup stays visible.
    g.bench_function("reference/1MiB", |b| b.iter(|| sha256::reference::sha256(black_box(&data))));
    g.finish();
}

fn replay_config(seed: u64) -> PostMarkConfig {
    PostMarkConfig {
        initial_files: 30,
        transactions: 120,
        size_dist: hyrd_workloads::FileSizeDist::log_uniform(1024, 512 * 1024),
        seed,
        ..PostMarkConfig::default()
    }
}

/// One sweep cell: a fresh ghost-mode fleet replaying one PostMark run.
fn run_cell(seed: u64) -> u64 {
    let (ops, _) = PostMark::new(replay_config(seed)).generate();
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let stats = replay(&mut h, &ops, &clock, &ReplayOptions::default());
    stats.provider_ops
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay-sweep");
    g.sample_size(10);
    for jobs in [1usize, effective_jobs(0)] {
        g.bench_function(format!("8-cells/jobs-{jobs}"), |b| {
            b.iter(|| {
                let cells: Vec<Box<dyn FnOnce() -> u64 + Send>> =
                    (0..8u64).map(|s| Box::new(move || run_cell(s)) as _).collect();
                replay_sweep(cells, jobs)
            })
        });
    }
    g.finish();
}

/// Wall-clock numbers for the repo-root baseline: SHA-256 kernel MB/s
/// (fast path vs the seed's reference), single-thread replay ops/s, and
/// the 8-cell sweep at jobs=1 vs jobs=8. On a single-core host the
/// sweep ratio is ~1 by construction; `host_cores` records the context.
fn write_summary() {
    let t =
        if summary::json_only() { Duration::from_millis(120) } else { Duration::from_millis(400) };
    let data = payload(MB);

    let fast_kernel = sha256::Kernel::detect();
    let fast = summary::throughput_mbps(MB, t, || {
        black_box(sha256::sha256(black_box(&data)));
    });
    let reference = summary::throughput_mbps(MB, t, || {
        black_box(sha256::reference::sha256(black_box(&data)));
    });

    // Single-thread replay: ops per wall-clock second through the full
    // dispatcher (ghost-mode providers — pure client CPU).
    let (ops, _) = PostMark::new(replay_config(1)).generate();
    let lap = || {
        let clock = SimClock::new();
        let fleet = Fleet::standard_four(clock.clone());
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        black_box(replay(&mut h, &ops, &clock, &ReplayOptions::default()));
    };
    lap();
    let start = Instant::now();
    let mut laps = 0u64;
    while laps < 3 || start.elapsed() < t {
        lap();
        laps += 1;
    }
    let replay_ops_per_sec =
        ops.len() as f64 * laps as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let sweep_secs = |jobs: usize| {
        let start = Instant::now();
        let cells: Vec<Box<dyn FnOnce() -> u64 + Send>> =
            (0..8u64).map(|s| Box::new(move || run_cell(s)) as _).collect();
        black_box(replay_sweep(cells, jobs));
        start.elapsed().as_secs_f64()
    };
    let jobs1 = sweep_secs(1);
    let jobs8 = sweep_secs(8);

    summary::merge_into(
        &summary::replay_summary_path(),
        &[
            ("sha256_kernel", serde_json::json!(fast_kernel.name())),
            ("sha256_fast_1mib_mbps", summary::round1(fast)),
            ("sha256_reference_1mib_mbps", summary::round1(reference)),
            ("sha256_speedup", summary::round1(fast / reference.max(1e-9))),
            ("replay_ops_per_sec", summary::round1(replay_ops_per_sec)),
            ("sweep_8cells_jobs1_secs", serde_json::json!((jobs1 * 1000.0).round() / 1000.0)),
            ("sweep_8cells_jobs8_secs", serde_json::json!((jobs8 * 1000.0).round() / 1000.0)),
            ("sweep_speedup", summary::round1(jobs1 / jobs8.max(1e-9))),
            (
                "host_cores",
                serde_json::json!(std::thread::available_parallelism().map_or(1, |n| n.get())),
            ),
        ],
    );
}

criterion_group!(benches, bench_sha_kernels, bench_sweep);

fn main() {
    if summary::json_only() {
        write_summary();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
    write_summary();
}
