//! Observability-overhead benchmarks for the availability observatory.
//!
//! Three questions, answered with a counting allocator and the virtual
//! clock (ghost-mode providers, so everything measured is client CPU):
//!
//! 1. **Disabled is free.** With a disabled [`Collector`] every
//!    instrumentation call — spans, events, metrics — must allocate
//!    exactly zero times. Asserted, not just measured.
//! 2. **Enabled is cheap.** The same seeded PostMark replay runs once
//!    with telemetry off and once with the full observatory attached
//!    (JSONL sink + live tap); the wall-clock delta and the extra
//!    allocations per op are the price of watching.
//! 3. **Offline analysis is fast.** Parsing the captured trace back
//!    through [`hyrd::observatory::from_trace`] is timed at one and
//!    four parser workers.
//!
//! Results land in the repo-root `BENCH_obs.json` (`just bench-obs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hyrd_bench::summary;

use hyrd::driver::replay;
use hyrd::observatory::{self, SharedObservatory};
use hyrd::prelude::*;
use hyrd::telemetry::{Collector, SharedBuf};
use hyrd_workloads::{PostMark, PostMarkConfig};

/// System allocator with an allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The zero-cost contract the observatory inherits from the telemetry
/// layer: when observability is off, the instrumented hot paths pay
/// nothing — not a single allocation across spans, events, counters and
/// histograms.
fn assert_disabled_observability_never_allocates() {
    let tel = Collector::disabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let _guard = tel.span_labeled("obs.span", "provider");
        let inner = tel.span_with("obs.inner").field("iter", i).field("op", "Get").start();
        tel.event("obs.event").field("iter", i).field("provider", "S3").emit();
        tel.inc("obs.counter", 1);
        tel.observe_labeled("obs.hist", "provider", i);
        black_box(tel.enabled());
        inner.end();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled observability allocated {} times in 1000 iterations",
        after - before
    );
    println!("observability disabled-path guard: 0 allocations across 1000 iterations");
}

fn workload() -> PostMarkConfig {
    PostMarkConfig {
        initial_files: 40,
        transactions: if summary::json_only() { 150 } else { 400 },
        size_dist: hyrd_workloads::FileSizeDist::log_uniform(4 * 1024, 2 * 1024 * 1024),
        seed: 11,
        ..PostMarkConfig::default()
    }
}

struct Lap {
    secs: f64,
    allocs: u64,
    ops: usize,
    trace: Vec<u8>,
}

/// One seeded replay, with or without the observatory watching.
fn lap(observed: bool) -> Lap {
    let (ops, _) = PostMark::new(workload()).generate();
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let buf = SharedBuf::new();
    let obs = SharedObservatory::new();
    let telemetry = if observed {
        Collector::builder(clock.clone())
            .clock_label("virtual")
            .jsonl(buf.clone())
            .tap(obs.tap())
            .build()
    } else {
        Collector::disabled()
    };
    let mut h =
        Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone()).expect("valid");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let stats = replay(&mut h, &ops, &clock, &ReplayOptions::default());
    let secs = t0.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(stats.errors, 0, "replay errored under the overhead bench");
    telemetry.flush();
    if observed {
        black_box(obs.report());
    }
    Lap { secs, allocs, ops: ops.len(), trace: buf.contents() }
}

/// Time one offline parse+fold of `text` at `jobs` workers; returns MB/s.
fn parse_mbps(text: &str, jobs: usize) -> f64 {
    let t0 = Instant::now();
    let obs = observatory::from_trace(text, jobs).expect("parse bench trace");
    let secs = t0.elapsed().as_secs_f64();
    black_box(obs.report());
    (text.len() as f64 / 1e6) / secs.max(1e-9)
}

fn main() {
    assert_disabled_observability_never_allocates();

    let off = lap(false);
    let on = lap(true);
    assert_eq!(off.ops, on.ops);
    let overhead_pct = (on.secs - off.secs) / off.secs.max(1e-9) * 100.0;
    let extra_allocs_per_op = (on.allocs.saturating_sub(off.allocs)) as f64 / on.ops as f64;
    println!(
        "replay {} ops: telemetry off {:.3}s ({} allocs), observatory on {:.3}s ({} allocs) \
         -> {:.1}% overhead, {:.1} extra allocs/op",
        on.ops, off.secs, off.allocs, on.secs, on.allocs, overhead_pct, extra_allocs_per_op
    );

    let text = String::from_utf8(on.trace).expect("trace is utf-8");
    let (j1, j4) = (parse_mbps(&text, 1), parse_mbps(&text, 4));
    println!(
        "trace {:.2} MB: offline parse+fold {:.1} MB/s (1 worker), {:.1} MB/s (4 workers)",
        text.len() as f64 / 1e6,
        j1,
        j4
    );

    summary::merge_into(
        &summary::repo_root_file("BENCH_obs.json"),
        &[
            ("replay_ops", serde_json::json!(on.ops)),
            ("trace_mb", summary::round1(text.len() as f64 / 1e6)),
            ("obs_overhead_pct", summary::round1(overhead_pct)),
            ("obs_extra_allocs_per_op", summary::round1(extra_allocs_per_op)),
            ("trace_parse_mbps_1worker", summary::round1(j1)),
            ("trace_parse_mbps_4workers", summary::round1(j4)),
        ],
    );
}
