//! Deterministic trace analyzer: turns a telemetry JSONL trace into the
//! full availability-observatory report.
//!
//! Sections, in order:
//!
//! 1. The observatory's own SLI / exposure / read-ledger report
//!    (`hyrd::observatory`, DESIGN.md §14).
//! 2. **Availability cross-check**: empirical per-read availability from
//!    the read ledger versus the paper's analytical HyRD model
//!    (`hyrd_costsim::hyrd_availability`) fed with the *measured*
//!    per-provider availability and small-read fraction. `--check-model`
//!    turns a mismatch beyond `--tolerance` into a hard failure.
//! 3. **Critical-path waterfalls**: the top `--top` root spans by
//!    duration, each rendered as an indented bar chart of its sub-spans.
//! 4. **Flame aggregation**: span name-paths (root;child;...) with call
//!    count, total and self time, hottest first.
//! 5. **Provider heatmap**: provider-op activity over `--buckets` equal
//!    time slices of the trace horizon, one glyph per cell.
//! 6. **SLO burn**: per-slice replay-op latency violations against
//!    `--slo-ms`, reported as burn rate against a 99% objective.
//!
//! Determinism: parsing fans out across `--jobs` threads but re-joins in
//! line order, and every aggregation below is a pure fold over that
//! sequence — the output bytes are identical for any `--jobs` value (CI
//! `cmp`s the jobs=1 and jobs=4 reports; `--selfcheck` does the same
//! in-process).
//!
//! Usage: `trace_report --trace PATH [--jobs N] [--out PATH]
//! [--check-model] [--tolerance F] [--slo-ms N] [--top N] [--buckets N]
//! [--rep R] [--m M] [--n N] [--selfcheck]`

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hyrd::observatory::{self, ObservatoryReport};
use hyrd::telemetry::TraceRecord;
use hyrd_costsim::hyrd_availability;

/// Shading ramp for the heatmap and burn bars, blank to dense.
const GLYPHS: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

fn secs(ns: u64) -> String {
    format!("{:.6}", ns as f64 / 1e9)
}

// ---------------------------------------------------------------------------
// Span analysis (waterfalls + flame)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Span {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: u64,
    dur: u64,
}

/// Closed spans in trace order plus a parent → children index.
struct SpanForest {
    spans: Vec<Span>,
    by_id: BTreeMap<u64, usize>,
    children: BTreeMap<u64, Vec<u64>>,
}

fn build_forest(records: &[TraceRecord]) -> SpanForest {
    let mut open: BTreeMap<u64, (Option<u64>, String, u64)> = BTreeMap::new();
    let mut spans = Vec::new();
    for rec in records {
        match rec {
            TraceRecord::SpanStart { id, parent, name, t, .. } => {
                open.insert(*id, (*parent, name.clone(), *t));
            }
            TraceRecord::SpanEnd { id, t, dur_ns, .. } => {
                if let Some((parent, name, start)) = open.remove(id) {
                    let _ = t;
                    spans.push(Span { id: *id, parent, name, start, dur: *dur_ns });
                }
            }
            _ => {}
        }
    }
    // Spans close child-before-parent; re-sort into start order (stable on
    // id for same-instant starts) so waterfalls read top-down.
    spans.sort_by_key(|s| (s.start, s.id));
    let by_id: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for s in &spans {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(s.id);
        }
    }
    SpanForest { spans, by_id, children }
}

fn waterfall_line(out: &mut String, forest: &SpanForest, span: &Span, root: &Span, depth: usize) {
    const BAR: usize = 40;
    let offset = span.start.saturating_sub(root.start);
    let (lo, hi) = if root.dur == 0 {
        (0, BAR)
    } else {
        let lo = ((offset as u128 * BAR as u128 / root.dur as u128) as usize).min(BAR - 1);
        let hi = ((offset + span.dur) as u128 * BAR as u128 / root.dur as u128) as usize;
        (lo, hi.clamp(lo + 1, BAR))
    };
    let mut bar = String::with_capacity(BAR);
    for i in 0..BAR {
        bar.push(if i >= lo && i < hi { '#' } else { ' ' });
    }
    let label = format!("{}{}", "  ".repeat(depth), span.name);
    let _ = writeln!(
        out,
        "{:<28} |{}| +{} {}",
        truncate(&label, 28),
        bar,
        secs(offset),
        secs(span.dur)
    );
    if let Some(kids) = forest.children.get(&span.id) {
        for kid in kids {
            let child = &forest.spans[forest.by_id[kid]];
            waterfall_line(out, forest, child, root, depth + 1);
        }
    }
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let cut: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn render_waterfalls(out: &mut String, forest: &SpanForest, top: usize) {
    out.push_str("\n## critical-path waterfalls\n");
    let mut roots: Vec<&Span> = forest.spans.iter().filter(|s| s.parent.is_none()).collect();
    // Slowest first; ties broken by start time then id so the pick is
    // stable no matter how the trace was parsed.
    roots.sort_by_key(|s| (std::cmp::Reverse(s.dur), s.start, s.id));
    if roots.is_empty() {
        out.push_str("(no spans in trace)\n");
        return;
    }
    for root in roots.into_iter().take(top) {
        let _ = writeln!(out, "\n### {} t0={} dur={}", root.name, secs(root.start), secs(root.dur));
        waterfall_line(out, forest, root, root, 0);
    }
}

fn render_flame(out: &mut String, forest: &SpanForest, top: usize) {
    out.push_str("\n## flame aggregation (by span path)\n");
    if forest.spans.is_empty() {
        out.push_str("(no spans in trace)\n");
        return;
    }
    // Path of each span: names root→self joined with ';'.
    let mut paths: BTreeMap<u64, String> = BTreeMap::new();
    for s in &forest.spans {
        let path = match s
            .parent
            .and_then(|p| forest.by_id.get(&p))
            .and_then(|i| paths.get(&forest.spans[*i].id))
        {
            Some(parent_path) => format!("{parent_path};{}", s.name),
            None => s.name.clone(),
        };
        paths.insert(s.id, path);
    }
    // Aggregate (count, total, self) per path.
    let mut agg: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for s in &forest.spans {
        let child_ns: u64 = forest
            .children
            .get(&s.id)
            .map(|kids| kids.iter().map(|k| forest.spans[forest.by_id[k]].dur).sum())
            .unwrap_or(0);
        let entry = agg.entry(paths[&s.id].clone()).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += s.dur;
        entry.2 += s.dur.saturating_sub(child_ns);
    }
    let mut rows: Vec<(&String, &(u64, u64, u64))> = agg.iter().collect();
    rows.sort_by_key(|(path, (_, total, _))| (std::cmp::Reverse(*total), (*path).clone()));
    out.push_str("total_s    self_s     count  path\n");
    for (path, (count, total, self_ns)) in rows.into_iter().take(top) {
        let _ = writeln!(out, "{:<10} {:<10} {:<6} {}", secs(*total), secs(*self_ns), count, path);
    }
}

// ---------------------------------------------------------------------------
// Heatmap + SLO burn
// ---------------------------------------------------------------------------

fn bucket_of(t: u64, start: u64, horizon: u64, buckets: usize) -> usize {
    if horizon == 0 {
        return 0;
    }
    let rel = t.saturating_sub(start).min(horizon);
    ((rel as u128 * buckets as u128 / (horizon as u128 + 1)) as usize).min(buckets - 1)
}

fn render_heatmap(out: &mut String, records: &[TraceRecord], buckets: usize) {
    out.push_str("\n## provider heatmap (ops per time slice)\n");
    let (start, last) = time_bounds(records);
    let horizon = last.saturating_sub(start);
    let mut grid: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for rec in records {
        if let TraceRecord::Event { name, t, .. } = rec {
            if name == "provider.op" {
                if let Some(p) = rec.field_str("provider") {
                    let row = grid.entry(p.to_string()).or_insert_with(|| vec![0; buckets]);
                    row[bucket_of(*t, start, horizon, buckets)] += 1;
                }
            }
        }
    }
    if grid.is_empty() {
        out.push_str("(no provider ops in trace)\n");
        return;
    }
    let peak = grid.values().flatten().copied().max().unwrap_or(1).max(1);
    let width = secs(horizon / buckets as u64);
    let _ = writeln!(out, "slice width = {width}s, peak = {peak} ops/slice");
    for (provider, row) in &grid {
        let cells: String = row
            .iter()
            .map(|n| {
                if *n == 0 {
                    GLYPHS[0]
                } else {
                    let shade = (n - 1) as u128 * (GLYPHS.len() as u128 - 2) / peak as u128;
                    GLYPHS[1 + shade as usize]
                }
            })
            .collect();
        let _ = writeln!(out, "{:<21} |{}|", provider, cells);
    }
}

fn time_bounds(records: &[TraceRecord]) -> (u64, u64) {
    let mut start = None;
    let mut last = 0u64;
    for rec in records {
        let t = match rec {
            TraceRecord::Meta { t, .. }
            | TraceRecord::SpanStart { t, .. }
            | TraceRecord::SpanEnd { t, .. }
            | TraceRecord::Event { t, .. } => *t,
        };
        if start.is_none() {
            start = Some(t);
        }
        last = last.max(t);
    }
    (start.unwrap_or(0), last)
}

fn render_slo_burn(out: &mut String, records: &[TraceRecord], slo_ms: u64, buckets: usize) {
    out.push_str("\n## SLO burn (99% of replay ops within threshold)\n");
    let slo_ns = slo_ms * 1_000_000;
    let (start, last) = time_bounds(records);
    let horizon = last.saturating_sub(start);
    let mut ops = vec![0u64; buckets];
    let mut violations = vec![0u64; buckets];
    for rec in records {
        if let TraceRecord::Event { name, t, .. } = rec {
            if name == "replay.op" {
                let b = bucket_of(*t, start, horizon, buckets);
                ops[b] += 1;
                if rec.field_u64("latency_ns").unwrap_or(0) > slo_ns {
                    violations[b] += 1;
                }
            }
        }
    }
    let total_ops: u64 = ops.iter().sum();
    let total_viol: u64 = violations.iter().sum();
    if total_ops == 0 {
        out.push_str("(no replay ops in trace)\n");
        return;
    }
    // Burn rate: violation fraction over the 1% error budget. 1.0 means
    // exactly burning budget at sustainable rate; >1 overspends.
    let bar: String = (0..buckets)
        .map(|b| {
            if ops[b] == 0 {
                GLYPHS[0]
            } else {
                let burn = (violations[b] as f64 / ops[b] as f64) / 0.01;
                GLYPHS[(burn.min(9.0) as usize).min(GLYPHS.len() - 1)]
            }
        })
        .collect();
    let compliance = 1.0 - total_viol as f64 / total_ops as f64;
    let burn = (total_viol as f64 / total_ops as f64) / 0.01;
    let _ = writeln!(out, "threshold={slo_ms}ms objective=99%");
    let _ = writeln!(out, "burn/slice            |{bar}|");
    let _ = writeln!(
        out,
        "ops={} violations={} compliance={:.6} burn_rate={:.2}",
        total_ops, total_viol, compliance, burn
    );
}

// ---------------------------------------------------------------------------
// Model cross-check
// ---------------------------------------------------------------------------

struct ModelCheck {
    measured: f64,
    modeled: f64,
    delta: f64,
    pass: bool,
}

fn render_model_check(
    out: &mut String,
    report: &ObservatoryReport,
    rep: u64,
    m: u64,
    n: u64,
    tolerance: f64,
) -> ModelCheck {
    out.push_str("\n## availability cross-check (measured vs analytical)\n");
    // The model's provider availability input: mean uptime fraction over
    // the fleet, measured from provider.status windows in this trace.
    let p = if report.providers.is_empty() {
        1.0
    } else {
        report.providers.iter().map(|h| h.availability).sum::<f64>() / report.providers.len() as f64
    };
    let small_frac = report.small_read_fraction;
    let modeled = hyrd_availability(p, rep, m, n, small_frac);
    let measured = report.empirical_read_availability;
    let delta = (measured - modeled).abs();
    let pass = delta <= tolerance;
    let _ =
        writeln!(out, "provider_availability_mean={:.6} small_read_fraction={:.4}", p, small_frac);
    let _ = writeln!(out, "model: hyrd_availability(p, r={rep}, m={m}, n={n}) = {:.6}", modeled);
    let _ = writeln!(out, "measured per-read availability = {:.6}", measured);
    let _ = writeln!(
        out,
        "delta={:.6} tolerance={:.6} -> {}",
        delta,
        tolerance,
        if pass { "PASS" } else { "FAIL" }
    );
    ModelCheck { measured, modeled, delta, pass }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

fn build_report(
    text: &str,
    jobs: usize,
    top: usize,
    buckets: usize,
    slo_ms: u64,
    rep: u64,
    m: u64,
    n: u64,
    tolerance: f64,
) -> (String, ModelCheck) {
    let records = observatory::parse_trace_jobs(text, jobs).expect("parse trace");
    let mut obs = observatory::Observatory::new();
    for rec in &records {
        obs.ingest(rec);
    }
    let report = obs.report();
    let mut out = report.render();
    let check = render_model_check(&mut out, &report, rep, m, n, tolerance);
    let forest = build_forest(&records);
    render_waterfalls(&mut out, &forest, top);
    render_flame(&mut out, &forest, 20);
    render_heatmap(&mut out, &records, buckets);
    render_slo_burn(&mut out, &records, slo_ms, buckets);
    (out, check)
}

fn main() {
    let mut trace: Option<String> = None;
    let mut jobs: usize = 1;
    let mut out_path: Option<String> = None;
    let mut check_model = false;
    let mut selfcheck = false;
    let mut tolerance: f64 = 0.02;
    let mut slo_ms: u64 = 30_000;
    let mut top: usize = 5;
    let mut buckets: usize = 16;
    let mut rep: u64 = 2;
    let mut m: u64 = 3;
    let mut n: u64 = 4;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--trace" => trace = Some(next("--trace")),
            "--jobs" => jobs = next("--jobs").parse().expect("numeric --jobs"),
            "--out" => out_path = Some(next("--out")),
            "--check-model" => check_model = true,
            "--selfcheck" => selfcheck = true,
            "--tolerance" => tolerance = next("--tolerance").parse().expect("numeric --tolerance"),
            "--slo-ms" => slo_ms = next("--slo-ms").parse().expect("numeric --slo-ms"),
            "--top" => top = next("--top").parse().expect("numeric --top"),
            "--buckets" => {
                buckets = next("--buckets").parse::<usize>().expect("numeric --buckets").max(1);
            }
            "--rep" => rep = next("--rep").parse().expect("numeric --rep"),
            "--m" => m = next("--m").parse().expect("numeric --m"),
            "--n" => n = next("--n").parse().expect("numeric --n"),
            other => panic!("unknown argument: {other} (see module docs for usage)"),
        }
    }
    let trace = trace.expect("--trace PATH is required");
    let text = std::fs::read_to_string(&trace)
        .unwrap_or_else(|e| panic!("cannot read trace {trace}: {e}"));

    let (report, check) = build_report(&text, jobs, top, buckets, slo_ms, rep, m, n, tolerance);

    if selfcheck {
        // The whole pipeline re-run across several worker counts must
        // produce the same bytes.
        for alt in [1usize, 2, 8] {
            let (again, _) = build_report(&text, alt, top, buckets, slo_ms, rep, m, n, tolerance);
            assert_eq!(report, again, "report diverged between jobs={jobs} and jobs={alt}");
        }
        eprintln!("selfcheck: report byte-identical across jobs 1/2/8 ✓");
    }

    match &out_path {
        Some(p) => {
            if let Some(dir) = std::path::Path::new(p).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::write(p, &report).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
            eprintln!("report written to {p}");
        }
        None => print!("{report}"),
    }

    if check_model && !check.pass {
        panic!(
            "availability model check failed: measured={:.6} modeled={:.6} delta={:.6}",
            check.measured, check.modeled, check.delta
        );
    }
}
