//! Table I: comparison between HyRD and the state-of-the-art schemes —
//! regenerated from *measurements* rather than asserted qualitatively.
//!
//! | Scheme    | Redundancy | Recovery | Performance        | Cost |
//! |-----------|------------|----------|--------------------|------|
//! | RACS      | EC         | Hard     | Low (small updates)| Low  |
//! | DuraCloud | Replication| Easy     | Low (large access) | High |
//! | DepSky    | Replication| Easy     | Low (large access) | High |
//! | NCCloud   | Net. codes | Moderate | Low (small updates)| Low  |
//! | HyRD      | Hybrid     | Easy     | High               | Low  |
//!
//! Columns here: storage overhead (redundancy), recovery read
//! amplification (recovery difficulty), normalized mean latency
//! (performance), simulated year cost (cost).

use hyrd_bench::fig6::{extended_lineup, paper_postmark, run_scheme, Mode};
use hyrd_bench::header;
use hyrd_costsim::model::{
    CostModel, DepSkyModel, DuraCloudModel, HyrdModel, RacsModel, SingleModel, S3,
};
use hyrd_costsim::report::run_model;
use hyrd_workloads::IaTrace;

fn main() {
    let config = paper_postmark(0x7AB1E);

    // Performance: normalized mean latency (Figure 6 machinery).
    let mut latency = std::collections::BTreeMap::new();
    let mut baseline = 1.0;
    for (name, make) in extended_lineup() {
        let stats = run_scheme(make, Mode::Normal, &config);
        let mean = stats.mean_latency().as_secs_f64();
        if name == "Amazon S3" {
            baseline = mean;
        }
        latency.insert(name.to_string(), mean);
    }

    // Cost: simulated year totals.
    let trace = IaTrace::synthesize(42);
    let mut costs = std::collections::BTreeMap::new();
    let mut cost_models: Vec<(&str, Box<dyn CostModel>)> = vec![
        ("Amazon S3", Box::new(SingleModel::new("Amazon S3", S3))),
        ("DuraCloud", Box::new(DuraCloudModel::new())),
        ("RACS", Box::new(RacsModel::new())),
        ("HyRD", Box::new(HyrdModel::paper_default())),
        ("DepSky", Box::new(DepSkyModel::new())),
    ];
    for (name, model) in cost_models.iter_mut() {
        costs.insert(name.to_string(), run_model(model.as_mut(), &trace).total());
    }

    // Static properties per scheme.
    let rows: Vec<(&str, &str, f64, &str)> = vec![
        // (name, redundancy, storage overhead, recovery character)
        ("Amazon S3", "None", 1.0, "none (single point of failure)"),
        ("DuraCloud", "Replication", 2.0, "easy: copy from the replica (1.0x reads)"),
        ("RACS", "Erasure codes", 4.0 / 3.0, "hard: 3x read amplification"),
        ("HyRD", "Replication + EC", 1.41, "easy: replicas for hot data, EC rebuild for cold"),
        ("DepSky", "Replication x4", 4.0, "easy: copy from any replica"),
        ("NCCloud-lite", "RS(2,4) (network-code layout)", 2.0, "moderate: 2x read amplification"),
    ];

    header("Table I (measured): scheme comparison");
    println!(
        "{:<14} {:<18} {:>9} {:>11} {:>11}  recovery",
        "scheme", "redundancy", "overhead", "latency(x)", "cost($)"
    );
    for (name, redundancy, overhead, recovery) in rows {
        let lat = latency.get(name).map(|l| l / baseline);
        let cost = costs.get(name).copied();
        println!(
            "{:<14} {:<18} {:>9.2} {:>11} {:>11}  {}",
            name,
            redundancy,
            overhead,
            lat.map_or("-".to_string(), |l| format!("{l:.2}")),
            cost.map_or("-".to_string(), |c| format!("{c:.0}")),
            recovery
        );
    }

    header("Paper's qualitative claims, checked");
    let l = |n: &str| latency[n] / baseline;
    let c = |n: &str| costs[n];
    println!(
        "HyRD has the best performance of the CoC schemes: {}",
        l("HyRD") < l("RACS") && l("HyRD") < l("DuraCloud") && l("HyRD") < l("DepSky")
    );
    println!(
        "HyRD cost is low (below both DuraCloud and RACS): {}",
        c("HyRD") < c("DuraCloud") && c("HyRD") < c("RACS")
    );
    println!(
        "DuraCloud/DepSky cost is high (top of the lineup): {}",
        c("DuraCloud") > c("RACS") && c("DepSky") > c("RACS")
    );
    println!("RACS performance is low for small updates (see ablation_update_recovery)");
}
