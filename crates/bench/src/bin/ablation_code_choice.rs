//! Ablation: the large-file tier's erasure code (DESIGN.md §4.4) —
//! RAID5 (the paper's case study) vs RS(2,4) vs RAID6(2+2).
//!
//! All three fit the 4-provider fleet; they trade storage overhead
//! against fault tolerance and read parallelism.

use hyrd::config::CodeChoice;
use hyrd::prelude::*;
use hyrd::scheme::SchemeError;
use hyrd_bench::fig6::{paper_postmark, run_scheme, Mode};
use hyrd_bench::header;

fn main() {
    header("Large-file code choice (4-provider fleet)");
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>14} {:>16}",
        "code", "rate", "tolerates", "latency (s)", "phys/logical", "2-outage reads"
    );

    for (code, name) in [
        (CodeChoice::Raid5 { m: 3 }, "RAID5(3+1)"),
        (CodeChoice::ReedSolomon { m: 2, n: 4 }, "RS(2,4)"),
        (CodeChoice::Raid6 { m: 2 }, "RAID6(2+2)"),
    ] {
        let config = paper_postmark(0xC0DE);
        let stats = run_scheme(
            move |f| {
                let mut cfg = HyrdConfig::default();
                cfg.code = code;
                Box::new(Hyrd::new(f, cfg).expect("valid config"))
            },
            Mode::Normal,
            &config,
        );

        // Overhead + double-outage behaviour on a dedicated instance.
        let fleet = Fleet::standard_four(SimClock::new());
        let mut cfg = HyrdConfig::default();
        cfg.code = code;
        let mut h = Hyrd::new(&fleet, cfg).expect("valid config");
        let data = vec![7u8; 6 << 20];
        h.create_file("/big", &data).expect("fleet up");
        let overhead = h.physical_bytes() as f64 / h.logical_bytes() as f64;

        fleet.by_name("Amazon S3").expect("standard fleet").force_down();
        fleet.by_name("Rackspace").expect("standard fleet").force_down();
        let two_outage = match h.read_file("/big") {
            Ok((bytes, _)) if bytes == data => "served",
            Ok(_) => "corrupt!",
            Err(SchemeError::DataUnavailable { .. }) => "unavailable",
            Err(_) => "error",
        };

        println!(
            "{:<12} {:>8.2} {:>10} {:>12.3} {:>14.2} {:>16}",
            name,
            code.m() as f64 / code.n() as f64,
            code.n() - code.m(),
            stats.mean_latency().as_secs_f64(),
            overhead,
            two_outage
        );
    }

    println!("\n=> RAID5 is the cheapest code that survives the single-outage model the");
    println!("   paper assumes (\"two concurrent cloud outages are extremely rare\");");
    println!("   RAID6/RS(2,4) buy double-outage reads for 1.5x the storage.");
}
