//! Ablation: the replication level (DESIGN.md §4.2).
//!
//! §III-C: "higher degree of replication … implies higher resiliency but
//! also lower performance for write/update operations … it is sensible
//! to choose the replication level of 2 … the degree of replication in
//! HyRD is configurable." This sweep measures exactly that trade-off.

use hyrd::prelude::*;
use hyrd_bench::fig6::{paper_postmark, run_scheme, Mode};
use hyrd_bench::{header, write_json, Series};

fn main() {
    header("Replication level sweep (metadata + small files)");
    println!(
        "{:<6} {:>12} {:>14} {:>12} {:>22}",
        "level", "latency (s)", "phys/logical", "outages", "small write lat (s)"
    );

    let mut lat = Vec::new();
    for level in 1..=4usize {
        let config = paper_postmark(0xAB1E);
        let stats = run_scheme(
            move |f| {
                let mut cfg = HyrdConfig::default();
                cfg.replication_level = level;
                Box::new(Hyrd::new(f, cfg).expect("valid config"))
            },
            Mode::Normal,
            &config,
        );
        let mean = stats.mean_latency().as_secs_f64();
        let small_write = stats.class(hyrd::stats::OpClass::SmallWrite).mean().as_secs_f64();

        // Storage overhead on a dedicated instance.
        let fleet = Fleet::standard_four(SimClock::new());
        let mut cfg = HyrdConfig::default();
        cfg.replication_level = level;
        let mut h = Hyrd::new(&fleet, cfg).expect("valid config");
        for i in 0..40 {
            h.create_file(&format!("/s/f{i}"), &vec![0u8; 16 << 10]).expect("fleet up");
        }
        let overhead = h.physical_bytes() as f64 / h.logical_bytes() as f64;

        println!(
            "{:<6} {:>12.3} {:>14.2} {:>12} {:>22.3}",
            level,
            mean,
            overhead,
            level - 1,
            small_write
        );
        lat.push(mean);
    }

    println!("\n=> level 2 survives any single outage (\"two concurrent cloud outages are");
    println!("   extremely rare\", §III-C) at the lowest write cost above level 1.");
    write_json(
        "ablation_replication_level",
        &vec![Series { label: "latency_s".into(), values: lat }],
    );
}
