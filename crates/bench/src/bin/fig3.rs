//! Figure 3: the Internet Archive trace — data transferred per month
//! (3a) and read/write request counts (3b), Feb 2008 – Jan 2009.
//!
//! Paper-reported statistics this synthesis reproduces exactly: read
//! volume : write volume = 2.1 : 1, read requests : write requests =
//! 3.5 : 1.

use hyrd_bench::{header, write_json, Series};
use hyrd_workloads::ia_trace::{IaTrace, REQUEST_RATIO, VOLUME_RATIO};

fn main() {
    let trace = IaTrace::synthesize(42);

    header("Figure 3a: data transferred to/from the Internet Archive (TB)");
    println!("{:<8} {:>12} {:>12}", "month", "written TB", "read TB");
    for m in trace.months() {
        println!(
            "{:<8} {:>12.2} {:>12.2}",
            m.label,
            m.bytes_written as f64 / 1e12,
            m.bytes_read as f64 / 1e12
        );
    }

    header("Figure 3b: read/write requests (millions)");
    println!("{:<8} {:>12} {:>12}", "month", "writes M", "reads M");
    for m in trace.months() {
        println!(
            "{:<8} {:>12.1} {:>12.1}",
            m.label,
            m.write_requests as f64 / 1e6,
            m.read_requests as f64 / 1e6
        );
    }

    println!();
    println!("volume ratio (read:write): {:.3}   [paper: {VOLUME_RATIO}]", trace.volume_ratio());
    println!("request ratio (read:write): {:.3}  [paper: {REQUEST_RATIO}]", trace.request_ratio());

    let series = vec![
        Series {
            label: "written_tb".into(),
            values: trace.months().iter().map(|m| m.bytes_written as f64 / 1e12).collect(),
        },
        Series {
            label: "read_tb".into(),
            values: trace.months().iter().map(|m| m.bytes_read as f64 / 1e12).collect(),
        },
        Series {
            label: "write_requests_m".into(),
            values: trace.months().iter().map(|m| m.write_requests as f64 / 1e6).collect(),
        },
        Series {
            label: "read_requests_m".into(),
            values: trace.months().iter().map(|m| m.read_requests as f64 / 1e6).collect(),
        },
    ];
    write_json("fig3_ia_trace", &series);
}
