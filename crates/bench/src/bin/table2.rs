//! Table II: monthly price plans for Amazon S3, Windows Azure Storage,
//! Aliyun OSS and Rackspace Cloud Files (September 10th 2014, China
//! region), plus the category row the evaluator derives.

use hyrd::evaluator::Evaluator;
use hyrd_bench::header;
use hyrd_cloudsim::{Fleet, ProviderCategory, SimClock};

fn category(c: ProviderCategory) -> &'static str {
    match c {
        ProviderCategory::CostOriented => "Cost-oriented",
        ProviderCategory::PerformanceOriented => "Performance-oriented",
        ProviderCategory::Both => "Both",
    }
}

fn main() {
    let fleet = Fleet::standard_four(SimClock::new());
    header("Table II: monthly price plans (USD)");
    println!(
        "{:<38} {:>12} {:>14} {:>10} {:>10}",
        "Operations & Vendors", "Amazon S3", "Windows Azure", "Aliyun", "RackSpace"
    );
    let p: Vec<_> = fleet.providers().iter().map(|p| *p.prices()).collect();
    let row = |name: &str, f: &dyn Fn(usize) -> String| {
        println!("{:<38} {:>12} {:>14} {:>10} {:>10}", name, f(0), f(1), f(2), f(3));
    };
    let money = |v: f64| {
        if v == 0.0 {
            "Free".to_string()
        } else {
            format!("${v}")
        }
    };
    row("Storage (per GB/month)", &|i| money(p[i].storage_gb_month));
    row("Data In (per GB)", &|i| money(p[i].data_in_gb));
    row("Data Out to Internet (per GB)", &|i| money(p[i].data_out_gb));
    row("Put, Copy, Post, List (per 10K)", &|i| money(p[i].put_class_10k));
    row("Get and others (per 10K)", &|i| money(p[i].get_class_10k));
    row("Category (Table II last row)", &|i| category(fleet.providers()[i].category()).to_string());

    // The evaluator derives the same tiers from measurements + prices.
    let (eval, _) = Evaluator::assess(&fleet, 64 * 1024);
    header("Derived by the Cost & Performance Evaluator (probe-measured)");
    for a in eval.assessments() {
        println!(
            "{:<14} probe_get={:>8.3}s  perf-tier={:<5} cost-tier={:<5}",
            a.name,
            a.probe_get.as_secs_f64(),
            a.performance_oriented,
            a.cost_oriented
        );
    }
}
