//! PostMark latency bench over HyRD, with an optional concurrent
//! multi-client mode.
//!
//! The single-client default reproduces the paper's Figure 6 methodology
//! on HyRD alone (pool build, then the measured transaction phase) at a
//! configurable scale. `--clients N` replays the same stream as N
//! closed-loop sessions sharing the one HyRD client through the
//! deterministic multi-client engine: the merged per-class latency
//! breakdown is byte-identical to the single-client run (DESIGN.md §11),
//! and the bin prints the per-session split on top.
//!
//! `--check` reruns the stream at `--clients 1 --jobs 1` and at the
//! requested client count with `--jobs 2`, asserting the merged stats
//! JSON matches the primary run byte for byte — the metastore's OCC
//! sharding must never leak into the deterministic artifact.
//!
//! Usage: `postmark [--files N] [--ops N] [--seed S] [--clients N]
//! [--jobs N] [--smoke] [--check]`

use serde::Serialize;

use hyrd::driver::{multi_client, ReplayOptions};
use hyrd::prelude::*;
use hyrd_bench::{header, write_json};
use hyrd_workloads::{PostMark, PostMarkConfig, PostMarkReport};

#[derive(Debug, Serialize)]
struct PostMarkRecord {
    seed: u64,
    clients: usize,
    workload: PostMarkReport,
    report: MultiClientReport,
}

/// One fresh replay of `ops`: new fleet, clock and HyRD client.
fn run_replay(ops: &[hyrd_workloads::FsOp], clients: usize, jobs: usize) -> MultiClientReport {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid default config");
    multi_client::run(
        &h,
        &clock,
        ops,
        MultiClientOptions { clients, jobs, replay: ReplayOptions::default() },
    )
}

fn main() {
    let mut files: usize = 100;
    let mut transactions: usize = 400;
    let mut seed: u64 = 0xB0A7;
    let mut clients: usize = 1;
    let mut jobs: usize = 1;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--files" => files = args.next().expect("--files N").parse().expect("numeric --files"),
            "--ops" => {
                transactions = args.next().expect("--ops N").parse().expect("numeric --ops");
            }
            "--seed" => seed = args.next().expect("--seed S").parse().expect("numeric --seed"),
            "--clients" => {
                clients = args.next().expect("--clients N").parse().expect("numeric --clients");
            }
            "--jobs" => jobs = args.next().expect("--jobs N").parse().expect("numeric --jobs"),
            "--smoke" => {
                files = 20;
                transactions = 80;
            }
            "--check" => check = true,
            other => panic!("unknown argument: {other}"),
        }
    }

    header(&format!(
        "postmark: {files} files + {transactions} txns, seed {seed}, {clients} client(s)"
    ));
    let config = PostMarkConfig { initial_files: files, transactions, seed, ..Default::default() };
    let (ops, workload) = PostMark::new(config).generate();
    println!(
        "workload: {} creates, {} reads, {} updates, {} deletes, {} lists, {:.1} MB written",
        workload.creates,
        workload.reads,
        workload.updates,
        workload.deletes,
        workload.lists,
        workload.bytes_written as f64 / 1e6
    );

    let report = run_replay(&ops, clients, jobs);

    print!("{}", report.merged.summary());
    if report.clients > 1 {
        println!("per-session (closed-loop):");
        for s in &report.sessions {
            println!(
                "  {:5} n={:<6} errors={:<4} mean={:.3}s busy={:.1}s",
                s.label,
                s.ops,
                s.errors,
                s.stats.mean().as_secs_f64(),
                s.busy.as_secs_f64(),
            );
        }
    }

    if check {
        let merged_json =
            serde_json::to_string_pretty(&report.merged).expect("serialize merged stats");
        for (c, j) in [(1usize, 1usize), (clients, 2)] {
            let alt = run_replay(&ops, c, j);
            let alt_json =
                serde_json::to_string_pretty(&alt.merged).expect("serialize merged stats");
            assert_eq!(merged_json, alt_json, "merged stats diverged at --clients {c} --jobs {j}");
        }
        println!("check: merged stats byte-identical across --clients {clients}/1, --jobs 1/2 ✓");
    }

    write_json("postmark", &PostMarkRecord { seed, clients, workload, report });
}
