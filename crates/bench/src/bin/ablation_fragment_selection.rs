//! Ablation: fragment-source selection on large reads (DESIGN.md §4.1).
//!
//! HyRD's default reads the `m` fragments with the cheapest egress
//! ("HyRD's cloud cost due to the data out operations is also reduced",
//! §IV-B); the alternative reads the fastest fragments. This measures the
//! latency/egress-cost trade the policy makes.

use hyrd::config::FragmentSelection;
use hyrd::prelude::*;
use hyrd_bench::header;
use hyrd_gcsapi::CloudStorage;

fn main() {
    header("Fragment selection: cheapest-egress vs fastest (20 x 6 MB reads)");
    println!("{:<16} {:>14} {:>16} {:>16}", "policy", "read lat (s)", "egress $ / read", "S3 gets");

    for (policy, name) in [
        (FragmentSelection::CheapestEgress, "cheapest-egress"),
        (FragmentSelection::Fastest, "fastest"),
    ] {
        let fleet = Fleet::standard_four(SimClock::new());
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut cfg = HyrdConfig::default();
        cfg.fragment_selection = policy;
        let mut h = Hyrd::new(&fleet, cfg).expect("valid config");
        for i in 0..20 {
            h.create_file(&format!("/m/f{i}"), &vec![0u8; 6 << 20]).expect("fleet up");
        }
        let mut total_lat = 0.0;
        let mut egress_cost = 0.0;
        for i in 0..20 {
            let (_, report) = h.read_file(&format!("/m/f{i}")).expect("fleet up");
            total_lat += report.latency.as_secs_f64();
            for op in &report.ops {
                let prices = fleet.get(op.provider).expect("fleet member").prices();
                egress_cost += op.bytes_out as f64 / 1e9 * prices.data_out_gb;
            }
        }
        let s3_gets = fleet.by_name("Amazon S3").expect("standard fleet").stats().get;
        println!(
            "{:<16} {:>14.3} {:>16.6} {:>16}",
            name,
            total_lat / 20.0,
            egress_cost / 20.0,
            s3_gets
        );
    }

    println!("\n=> on the Table II fleet both policies avoid S3 (it is both the slowest");
    println!("   AND the dearest egress), so they coincide — the policy matters when a");
    println!("   premium provider is fast but expensive:");

    header("Same ablation on a fleet with a premium provider (fast, $0.201/GB egress)");
    println!(
        "{:<16} {:>14} {:>16} {:>16}",
        "policy", "read lat (s)", "egress $ / read", "premium gets"
    );
    for (policy, name) in [
        (FragmentSelection::CheapestEgress, "cheapest-egress"),
        (FragmentSelection::Fastest, "fastest"),
    ] {
        let fleet = premium_fleet();
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut cfg = HyrdConfig::default();
        cfg.fragment_selection = policy;
        let mut h = Hyrd::new(&fleet, cfg).expect("valid config");
        for i in 0..20 {
            h.create_file(&format!("/m/f{i}"), &vec![0u8; 6 << 20]).expect("fleet up");
        }
        let mut total_lat = 0.0;
        let mut egress_cost = 0.0;
        for i in 0..20 {
            let (_, report) = h.read_file(&format!("/m/f{i}")).expect("fleet up");
            total_lat += report.latency.as_secs_f64();
            for op in &report.ops {
                let prices = fleet.get(op.provider).expect("fleet member").prices();
                egress_cost += op.bytes_out as f64 / 1e9 * prices.data_out_gb;
            }
        }
        let premium_gets = fleet.by_name("Premium").expect("premium fleet").stats().get;
        println!(
            "{:<16} {:>14.3} {:>16.6} {:>16}",
            name,
            total_lat / 20.0,
            egress_cost / 20.0,
            premium_gets
        );
    }
    println!("\n=> fastest now reads the premium provider and pays its egress;");
    println!("   cheapest-egress keeps reads free at higher latency — the paper's trade.");
}

/// The standard fleet with S3 swapped for a *premium* provider: priced
/// like S3 but as fast as Aliyun — the case where the two policies pull
/// in opposite directions.
fn premium_fleet() -> Fleet {
    use hyrd_cloudsim::{ProviderProfile, WellKnownProvider};
    let mut profiles: Vec<ProviderProfile> =
        WellKnownProvider::ALL.iter().map(|w| w.profile()).collect();
    profiles[0].name = "Premium".to_string();
    profiles[0].latency = WellKnownProvider::Aliyun.profile().latency;
    profiles[0].latency.rtt = std::time::Duration::from_millis(30);
    let fleet = Fleet::new(SimClock::new(), profiles);
    for p in fleet.providers() {
        p.create(Fleet::CONTAINER).expect("fresh provider");
    }
    fleet
}
