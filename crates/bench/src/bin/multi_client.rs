//! Multi-client determinism soak: N closed-loop PostMark sessions over
//! one shared HyRD client, replayed by the deterministic engine
//! (`hyrd::driver::multi_client`).
//!
//! The soak exists to exercise — and prove — the DESIGN.md §11 contract:
//! the merged [`ReplayStats`] and the JSONL telemetry trace are
//! **byte-identical for every `--clients` and `--jobs` value**, because
//! the engine serializes execution in virtual next-event order. What
//! legitimately varies with the session count is the per-session
//! breakdown (printed as a table and recorded in the JSON artifact) and
//! the wall-clock lock telemetry (`lock.contended` counters and
//! `lock.wait_ns` histograms from the dispatcher's stripes) — those are
//! printed for operators but never byte-compared.
//!
//! `--check` reruns the soak at `--clients 1 --jobs 1` and at the
//! requested client count with `--jobs 2`, asserting both the merged
//! stats JSON and the trace match the primary run byte for byte. CI runs
//! the soak at `--clients 1/4/16 --check` and `cmp`s the three `--trace`
//! files, closing the loop across processes.
//!
//! Usage: `multi_client [--clients N] [--jobs N] [--files N] [--ops N]
//! [--seed S] [--smoke] [--check] [--trace PATH] [--obs PATH]`

use serde::Serialize;

use hyrd::driver::{multi_client, ReplayOptions};
use hyrd::prelude::*;
use hyrd::telemetry::{Collector, MetricsSnapshot, SharedBuf};
use hyrd_bench::{header, write_json};
use hyrd_workloads::{FileSizeDist, PostMark, PostMarkConfig};

/// PostMark shaped for the soak: both tiers exercised (1 KB – 4 MB
/// against the 1 MB threshold) without the paper's 100 MB tail.
fn soak_config(seed: u64, files: usize, transactions: usize) -> PostMarkConfig {
    PostMarkConfig {
        initial_files: files,
        transactions,
        size_dist: FileSizeDist::log_uniform(1 << 10, 4 << 20),
        seed,
        ..PostMarkConfig::default()
    }
}

struct SoakOutput {
    report: MultiClientReport,
    trace: Vec<u8>,
    snapshot: MetricsSnapshot,
}

/// One fully fresh soak: fleet, virtual clock, HyRD client, engine.
fn run_soak(
    seed: u64,
    files: usize,
    transactions: usize,
    clients: usize,
    jobs: usize,
) -> SoakOutput {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    let trace_buf = SharedBuf::new();
    let telemetry = Collector::builder(clock.clone()).jsonl(trace_buf.clone()).build();
    let h = Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone())
        .expect("valid default config");
    let (ops, _) = PostMark::new(soak_config(seed, files, transactions)).generate();
    let opts = ReplayOptions {
        verify_reads: true,
        telemetry: telemetry.clone(),
        ..ReplayOptions::default()
    };
    let report =
        multi_client::run(&h, &clock, &ops, MultiClientOptions { clients, jobs, replay: opts });
    h.publish_meta_metrics();
    telemetry.flush();
    SoakOutput { report, trace: trace_buf.contents(), snapshot: telemetry.metrics() }
}

/// The JSON artifact: the engine report plus the workload shape.
#[derive(Debug, Serialize)]
struct SoakRecord {
    seed: u64,
    files: usize,
    transactions: usize,
    jobs: usize,
    report: MultiClientReport,
}

fn main() {
    let mut clients: usize = 4;
    let mut jobs: usize = 1;
    let mut files: usize = 60;
    let mut transactions: usize = 1_500;
    let mut seed: u64 = 7;
    let mut check = false;
    let mut trace_path: Option<String> = None;
    let mut obs_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => {
                clients = args.next().expect("--clients N").parse().expect("numeric --clients");
            }
            "--jobs" => jobs = args.next().expect("--jobs N").parse().expect("numeric --jobs"),
            "--files" => files = args.next().expect("--files N").parse().expect("numeric --files"),
            "--ops" => {
                transactions = args.next().expect("--ops N").parse().expect("numeric --ops");
            }
            "--seed" => seed = args.next().expect("--seed S").parse().expect("numeric --seed"),
            "--smoke" => {
                files = 20;
                transactions = 200;
            }
            "--check" => check = true,
            "--trace" => trace_path = Some(args.next().expect("--trace PATH")),
            "--obs" => obs_path = Some(args.next().expect("--obs PATH")),
            other => panic!("unknown argument: {other}"),
        }
    }

    header(&format!(
        "multi-client soak: {clients} client(s), {files} files + {transactions} txns, \
         seed {seed}, jobs {jobs}"
    ));
    let out = run_soak(seed, files, transactions, clients, jobs);
    let merged_json =
        serde_json::to_string_pretty(&out.report.merged).expect("serialize merged stats");

    let m = &out.report.merged;
    println!(
        "merged: {} ops, {} errors, {} verify failures, mean {:.2} ms, {} provider ops",
        m.overall.count(),
        m.errors,
        m.verify_failures,
        m.mean_latency().as_secs_f64() * 1e3,
        m.provider_ops,
    );

    println!("\nper-session (closed-loop):");
    println!("  label     ops   errors   prov-ops      MB-in     MB-out   busy-s");
    for s in &out.report.sessions {
        println!(
            "  {:5} {:7} {:8} {:10} {:10.2} {:10.2} {:8.1}",
            s.label,
            s.ops,
            s.errors,
            s.provider_ops,
            s.bytes_in as f64 / 1e6,
            s.bytes_out as f64 / 1e6,
            s.busy.as_secs_f64(),
        );
    }

    // Stripe contention telemetry — wall-clock derived, so printed only,
    // never part of any byte-compared artifact.
    let contended = out.snapshot.counters_labeled("lock.contended");
    if contended.is_empty() {
        println!("\nlock stripes: no contention observed");
    } else {
        println!("\nlock stripes (contended acquisitions, wall-clock wait):");
        let waits = out.snapshot.histograms_labeled("lock.wait_ns");
        for (stripe, hits) in &contended {
            let wait = waits.iter().find(|(l, _)| l == stripe).map(|(_, h)| h.clone());
            match wait {
                Some(h) => println!(
                    "  {stripe:12} {hits:6} hits, p50 {} ns, p99 {} ns, max {} ns",
                    h.p50, h.p99, h.max
                ),
                None => println!("  {stripe:12} {hits:6} hits"),
            }
        }
    }
    let gauge = |name: &str| out.snapshot.gauges.get(name).copied().unwrap_or(0);
    println!(
        "meta OCC: conflicts={} retries={} chain_max={}",
        gauge("meta.occ.conflicts"),
        gauge("meta.occ.retries"),
        gauge("meta.chain.max"),
    );

    if check {
        // The determinism contract, in-process: merged stats and trace
        // must not depend on the session count or the worker count.
        let ops_sum: u64 = out.report.sessions.iter().map(|s| s.ops).sum();
        assert_eq!(
            ops_sum,
            m.overall.count() as u64,
            "session op tallies must partition the merged op count"
        );
        for (c, j) in [(1usize, 1usize), (clients, 2)] {
            let alt = run_soak(seed, files, transactions, c, j);
            let alt_json =
                serde_json::to_string_pretty(&alt.report.merged).expect("serialize merged stats");
            assert_eq!(merged_json, alt_json, "merged stats diverged at --clients {c} --jobs {j}");
            assert_eq!(out.trace, alt.trace, "trace diverged at --clients {c} --jobs {j}");
        }
        println!(
            "\ncheck: merged stats + trace byte-identical across \
             --clients {clients}/1 and --jobs {jobs}/1/2 ✓"
        );
    }

    if let Some(path) = &trace_path {
        std::fs::write(path, &out.trace).expect("write trace file");
        println!(
            "trace: {} records ({:.1} MB) -> {path}",
            out.trace.iter().filter(|b| **b == b'\n').count(),
            out.trace.len() as f64 / 1e6
        );
    }

    if let Some(path) = &obs_path {
        let text = std::str::from_utf8(&out.trace).expect("trace is utf-8");
        let obs = hyrd::observatory::from_trace(text, jobs).expect("parse soak trace");
        let obs_report = obs.report();
        std::fs::write(path, obs_report.render()).expect("write observatory report");
        println!(
            "observatory: {} provider(s), {} exposed file(s) -> {path}",
            obs_report.providers.len(),
            obs_report.files.len()
        );
    }

    write_json("multi_client", &SoakRecord { seed, files, transactions, jobs, report: out.report });
}
