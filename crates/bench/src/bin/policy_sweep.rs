//! Cost-vs-latency Pareto sweep of the adaptive redundancy policy.
//!
//! Runs a Zipf-skewed popularity workload ([`hyrd_workloads::zipf`],
//! hot erasure-coded large files + a cold tail of sizable replicated
//! files) through a lineup of static placements and through HyRD with
//! the adaptive policy engine ([`hyrd::policy`]) running background
//! migration passes between access chunks. Every cell reports the
//! access-phase latency distribution (p50/p99/mean) and the physical
//! bytes left on the fleet afterwards — the storage-cost axis.
//!
//! The claim under test: the adaptive policy **Pareto-dominates at
//! least one static baseline** — strictly lower stored bytes at
//! equal-or-better p99, or strictly better p99 at equal-or-lower cost.
//! The expected victim is static HyRD: demoting the cold replicated
//! tail to erasure coding sheds replica bytes, while promoting the
//! hottest erasure-coded files moves the most frequent large reads off
//! the fragment fan-out path.
//!
//! Determinism: every cell owns a fresh fleet, virtual clock and trace
//! collector, cells run through [`replay_sweep`], and the adaptive
//! cell's migration decisions depend only on namespace order, heat
//! counters and the virtual clock — so the report and the concatenated
//! telemetry trace are byte-identical for any `--jobs` value. `--check`
//! proves it in-process; the CI job proves it cross-process with `cmp`.
//!
//! Usage: `policy_sweep [--jobs N] [--trace PATH] [--check]`

use std::time::Duration;

use serde::Serialize;

use hyrd::driver::{replay_sweep, replay_with_state, ReplayOptions, ReplayState, ReplayStats};
use hyrd::observatory;
use hyrd::policy::MigrationReport;
use hyrd::prelude::*;
use hyrd::telemetry::{Collector, SharedBuf};
use hyrd_baselines::{DuraCloud, Racs};
use hyrd_bench::{flag_usize, header, summary, write_json};
use hyrd_workloads::{ZipfConfig, ZipfWorkload};

/// Access ops per chunk between adaptive migration passes.
const CHUNK: usize = 75;

/// The policy tuning the adaptive cell runs with: demotion after one
/// cold virtual minute (the workload spans several), promotion at the
/// default three reads.
fn adaptive_config() -> HyrdConfig {
    let mut cfg = HyrdConfig::default();
    cfg.policy.enabled = true;
    cfg.policy.demote_idle = Duration::from_secs(60);
    cfg.policy.demote_min_bytes = 256 * 1024;
    cfg
}

/// One sweep cell's outcome. Latency values are virtual-clock
/// nanoseconds over the access phase only (the create phase is setup).
#[derive(Debug, Clone, Serialize, PartialEq)]
struct Cell {
    scheme: String,
    read_p50_ns: u64,
    read_p99_ns: u64,
    mean_ns: u64,
    stored_bytes: u64,
    errors: u64,
    verify_failures: u64,
    provider_ops: u64,
    migrations: Option<MigrationReport>,
}

/// Shared per-cell harness: fresh fleet + clock + trace collector, the
/// Zipf pool created in the untimed setup phase, reads verified against
/// the driver's expected bytes throughout.
struct Bench {
    clock: SimClock,
    fleet: Fleet,
    trace_buf: SharedBuf,
    telemetry: Collector,
    opts: ReplayOptions,
    state: ReplayState,
}

impl Bench {
    fn new() -> Self {
        let clock = SimClock::new();
        let fleet = Fleet::standard_four(clock.clone());
        let trace_buf = SharedBuf::new();
        let telemetry = Collector::builder(clock.clone()).jsonl(trace_buf.clone()).build();
        let opts = ReplayOptions {
            verify_reads: true,
            telemetry: telemetry.clone(),
            ..ReplayOptions::default()
        };
        Bench { clock, fleet, trace_buf, telemetry, opts, state: ReplayState::default() }
    }

    fn setup(&mut self, scheme: &mut dyn Scheme, workload: &ZipfWorkload) {
        let setup = workload.setup_ops();
        let _ = replay_with_state(scheme, &setup, &self.clock, &self.opts, &mut self.state);
    }

    fn finish(
        self,
        name: &str,
        stats: ReplayStats,
        migrations: Option<MigrationReport>,
    ) -> (Cell, Vec<u8>) {
        self.telemetry.flush();
        let cell = Cell {
            scheme: name.to_string(),
            read_p50_ns: stats.overall.quantile(0.5).as_nanos() as u64,
            read_p99_ns: stats.overall.quantile(0.99).as_nanos() as u64,
            mean_ns: stats.overall.mean().as_nanos() as u64,
            stored_bytes: self.fleet.total_stored_bytes(),
            errors: stats.errors,
            verify_failures: stats.verify_failures,
            provider_ops: stats.provider_ops,
            migrations,
        };
        (cell, self.trace_buf.contents())
    }
}

/// A static cell: setup, then the whole access stream in one replay.
fn run_static(
    name: &'static str,
    make: fn(&Fleet, Collector) -> Box<dyn Scheme>,
    workload: &ZipfWorkload,
) -> (Cell, Vec<u8>) {
    let mut bench = Bench::new();
    let mut scheme = make(&bench.fleet, bench.telemetry.clone());
    bench.setup(scheme.as_mut(), workload);
    let access = workload.access_ops();
    let stats =
        replay_with_state(scheme.as_mut(), &access, &bench.clock, &bench.opts, &mut bench.state);
    bench.finish(name, stats, None)
}

/// The adaptive cell: same setup and access stream, but chunked, with a
/// background migration pass between chunks — gated on the observatory
/// SLIs folded from the cell's own live trace, the way a deployment
/// would wire it.
fn run_adaptive(workload: &ZipfWorkload) -> (Cell, Vec<u8>) {
    let mut bench = Bench::new();
    let mut h = Hyrd::with_telemetry(&bench.fleet, adaptive_config(), bench.telemetry.clone())
        .expect("valid policy config");
    bench.setup(&mut h, workload);
    let access = workload.access_ops();
    let mut stats = ReplayStats::default();
    let mut migrations = MigrationReport::default();
    for chunk in access.chunks(CHUNK) {
        stats.absorb(&replay_with_state(
            &mut h,
            chunk,
            &bench.clock,
            &bench.opts,
            &mut bench.state,
        ));
        bench.telemetry.flush();
        let obs = observatory::from_trace(&bench.trace_buf.text(), 1).expect("parse own trace");
        let (r, _) = h.migrate_pass_with(Some(&obs.provider_health())).expect("migrate pass");
        migrations.absorb(r);
    }
    bench.finish("HyRD adaptive", stats, Some(migrations))
}

/// The sweep lineup: static baselines, then the adaptive policy.
fn run_lineup(workload: &ZipfWorkload, jobs: usize) -> Vec<(Cell, Vec<u8>)> {
    let statics: Vec<(&'static str, fn(&Fleet, Collector) -> Box<dyn Scheme>)> = vec![
        ("DuraCloud", |f, _| Box::new(DuraCloud::standard(f).expect("standard fleet"))),
        ("RACS", |f, _| Box::new(Racs::new(f).expect("4-provider fleet"))),
        ("HyRD", |f, t| {
            Box::new(Hyrd::with_telemetry(f, HyrdConfig::default(), t).expect("valid config"))
        }),
        ("HyRD+hot", |f, t| {
            let mut cfg = HyrdConfig::default();
            cfg.hot_read_threshold = Some(2);
            Box::new(Hyrd::with_telemetry(f, cfg, t).expect("valid config"))
        }),
    ];
    let mut cells: Vec<Box<dyn FnOnce() -> (Cell, Vec<u8>) + Send>> = Vec::new();
    for (name, make) in statics {
        let w = workload.clone();
        cells.push(Box::new(move || run_static(name, make, &w)));
    }
    let w = workload.clone();
    cells.push(Box::new(move || run_adaptive(&w)));
    replay_sweep(cells, jobs)
}

/// `a` Pareto-dominates `b`: no worse on both axes, strictly better on
/// at least one.
fn dominates(a: &Cell, b: &Cell) -> bool {
    let no_worse = a.stored_bytes <= b.stored_bytes && a.read_p99_ns <= b.read_p99_ns;
    let better = a.stored_bytes < b.stored_bytes || a.read_p99_ns < b.read_p99_ns;
    no_worse && better
}

fn main() {
    let jobs = flag_usize("jobs", 2);
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace PATH").clone());

    let workload = ZipfWorkload::new(ZipfConfig::default());
    header(&format!(
        "policy sweep: {} files, {} accesses, theta {}, jobs {jobs}",
        workload.config().files,
        workload.config().ops,
        workload.config().theta
    ));

    let results = run_lineup(&workload, jobs);
    let cells: Vec<Cell> = results.iter().map(|(c, _)| c.clone()).collect();

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>7}",
        "scheme", "p50(ms)", "p99(ms)", "mean(ms)", "stored(MB)", "errors"
    );
    for c in &cells {
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>7}",
            c.scheme,
            c.read_p50_ns as f64 / 1e6,
            c.read_p99_ns as f64 / 1e6,
            c.mean_ns as f64 / 1e6,
            c.stored_bytes as f64 / 1e6,
            c.errors,
        );
    }
    let adaptive = cells.last().expect("lineup is non-empty");
    if let Some(m) = &adaptive.migrations {
        println!(
            "adaptive migrations: {} promoted, {} demoted, {} aborted, {} skipped (unhealthy), \
             {:.1} MB rewritten",
            m.promoted,
            m.demoted,
            m.aborted,
            m.skipped_unhealthy,
            m.bytes_rewritten as f64 / 1e6,
        );
    }

    let dominated: Vec<&str> = cells[..cells.len() - 1]
        .iter()
        .filter(|b| dominates(adaptive, b))
        .map(|b| b.scheme.as_str())
        .collect();
    println!(
        "adaptive Pareto-dominates: {}",
        if dominated.is_empty() { "(none)".to_string() } else { dominated.join(", ") }
    );

    for c in &cells {
        assert_eq!(c.verify_failures, 0, "{}: served wrong bytes", c.scheme);
        assert_eq!(c.errors, 0, "{}: access replay errored", c.scheme);
    }

    if let Some(path) = &trace_path {
        let mut all = Vec::new();
        for (_, trace) in &results {
            all.extend_from_slice(trace);
        }
        std::fs::write(path, &all).expect("write trace file");
        println!("trace: {:.1} MB -> {path}", all.len() as f64 / 1e6);
    }

    if check {
        assert!(
            !dominated.is_empty(),
            "adaptive policy dominates no static baseline — placement regression"
        );
        // Re-run the whole sweep at a different job count: cells, and
        // therefore traces, must be byte-identical (virtual-clock-only
        // stamping + per-cell isolation).
        let again = run_lineup(&workload, if jobs == 1 { 2 } else { 1 });
        for ((c1, t1), (c2, t2)) in results.iter().zip(&again) {
            assert_eq!(c1, &c2.clone(), "cell diverged across job counts");
            assert_eq!(t1, t2, "{} trace diverged across job counts", c1.scheme);
        }
        println!("check: Pareto domination + byte-identical sweep across job counts ✓");
    }

    write_json("policy_sweep", &cells);
    summary::merge_into(
        &summary::repo_root_file("BENCH_policy.json"),
        &[(
            "policy_sweep",
            serde_json::json!({
                "cells": cells,
                "adaptive_dominates": dominated,
            }),
        )],
    );
}
