//! Figure 5: read (5a) and write (5b) latency as a function of request
//! size — 4 KB to 4 MB — for each single-cloud provider, three trials,
//! mean ± deviation.
//!
//! Paper-reported shape: Aliyun fastest at every size; large variance
//! across providers; a disproportionate latency jump from 1 MB to 4 MB
//! (the observation that sets HyRD's file-size threshold at 1 MB).

use bytes::Bytes;
use hyrd_bench::{header, write_json, Series};
use hyrd_cloudsim::{Fleet, SimClock};
use hyrd_gcsapi::{CloudStorage, ObjectKey};

const SIZES: [(u64, &str); 6] = [
    (4 << 10, "4KB"),
    (16 << 10, "16KB"),
    (64 << 10, "64KB"),
    (256 << 10, "256KB"),
    (1 << 20, "1MB"),
    (4 << 20, "4MB"),
];
const TRIALS: usize = 3;

fn mean_dev(samples: &[f64]) -> (f64, f64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
        / (samples.len().max(2) - 1) as f64;
    (mean, var.sqrt())
}

fn main() {
    let fleet = Fleet::standard_four(SimClock::new());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }

    let mut json = Vec::new();
    for (kind, title) in
        [("read", "Figure 5a: read latency (s)"), ("write", "Figure 5b: write latency (s)")]
    {
        header(title);
        print!("{:<14}", "provider");
        for (_, label) in SIZES {
            print!(" {label:>16}");
        }
        println!();
        for p in fleet.providers() {
            print!("{:<14}", p.name());
            let mut means = Vec::new();
            for (size, _) in SIZES {
                let mut samples = Vec::new();
                for t in 0..TRIALS {
                    let key = ObjectKey::new(Fleet::CONTAINER, format!("f5-{kind}-{size}-{t}"));
                    let payload = Bytes::from(vec![0u8; size as usize]);
                    let latency = if kind == "write" {
                        p.put(&key, payload).expect("provider up").report.latency
                    } else {
                        p.put(&key, payload).expect("provider up");
                        p.get(&key).expect("object just written").report.latency
                    };
                    samples.push(latency.as_secs_f64());
                }
                let (mean, dev) = mean_dev(&samples);
                means.push(mean);
                print!(" {:>9.3}±{:<6.3}", mean, dev);
            }
            println!();
            json.push(Series { label: format!("{}/{kind}", p.name()), values: means });
        }
    }

    // The threshold observation.
    header("1MB→4MB disproportion (latency ratio; 4x would be proportional)");
    for p in fleet.providers() {
        let lat = |bytes: u64| {
            p.profile().latency.expected_latency(hyrd_gcsapi::OpKind::Get, bytes).as_secs_f64()
        };
        println!("{:<14} {:.1}x", p.name(), lat(4 << 20) / lat(1 << 20));
    }
    println!("\n=> the paper sets the large/small threshold at 1MB on this gap (§IV-C)");

    write_json("fig5_latency_vs_size", &json);
}
