//! The file-size threshold sensitivity study (§III-C / §IV-C): "We have
//! conducted sensitivity experiments to investigate the file-size
//! threshold … we set the file-size threshold at 1MB."
//!
//! Sweeps HyRD's large/small boundary from 64 KB to 16 MB and reports
//! both the mean access latency (PostMark replay) and the storage
//! overhead + simulated year cost, showing why 1 MB is the sweet spot:
//! below it, medium files fall into the erasure tier and pay slow
//! fragment RTTs; above it, multi-MB files get replicated at 2x storage
//! on the expensive performance tier.

use hyrd::prelude::*;
use hyrd_bench::fig6::{paper_postmark, run_scheme, Mode};
use hyrd_bench::{header, write_json, Series};
use hyrd_costsim::model::HyrdModel;
use hyrd_costsim::report::run_model;
use hyrd_workloads::{FileSizeDist, IaTrace};

const THRESHOLDS: [(u64, &str); 6] = [
    (64 << 10, "64KB"),
    (256 << 10, "256KB"),
    (1 << 20, "1MB"),
    (4 << 20, "4MB"),
    (16 << 20, "16MB"),
    (64 << 20, "64MB"),
];

fn main() {
    let trace = IaTrace::synthesize(42);
    let dist = FileSizeDist::agrawal();

    header("Threshold sensitivity: HyRD latency, storage and cost vs threshold");
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>12}",
        "thresh", "latency (s)", "phys/logical", "cost ($/yr)", "small-files%"
    );

    let mut lat_series = Vec::new();
    let mut cost_series = Vec::new();
    for (threshold, label) in THRESHOLDS {
        // Latency under PostMark.
        let config = paper_postmark(0x5EEE);
        let stats = run_scheme(
            move |f| {
                let mut cfg = HyrdConfig::default();
                cfg.threshold = threshold;
                Box::new(Hyrd::new(f, cfg).expect("valid config"))
            },
            Mode::Normal,
            &config,
        );
        let mean = stats.mean_latency().as_secs_f64();

        // Storage overhead measured on a real dispatcher instance.
        let clock = SimClock::new();
        let fleet = Fleet::standard_four(clock.clone());
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut cfg = HyrdConfig::default();
        cfg.threshold = threshold;
        let mut h = Hyrd::new(&fleet, cfg).expect("valid config");
        let mut rng_state = 0x1234_5678_u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            rng_state
        };
        use rand::prelude::*;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(next());
        for i in 0..120 {
            let size = rng.sample(&dist) as usize;
            h.create_file(&format!("/sweep/f{i}"), &vec![0u8; size]).expect("fleet up");
        }
        let overhead = h.physical_bytes() as f64 / h.logical_bytes() as f64;

        // Year cost from the analytic model at this threshold.
        let mut model = HyrdModel::new(threshold, &dist);
        let cost = run_model(&mut model, &trace).total();
        let small_frac = dist.count_frac_below(threshold) * 100.0;

        println!("{label:<8} {mean:>12.3} {overhead:>14.3} {cost:>12.0} {small_frac:>11.1}%");
        lat_series.push(mean);
        cost_series.push(cost);
    }

    println!("\n=> 1MB minimizes latency while keeping overhead near 4/3 (the paper's pick)");
    write_json(
        "threshold_sweep",
        &vec![
            Series { label: "latency_s".into(), values: lat_series },
            Series { label: "cost_usd".into(), values: cost_series },
        ],
    );
}
