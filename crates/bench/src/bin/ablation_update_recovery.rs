//! Ablation: small-update write amplification and recovery traffic
//! (DESIGN.md §4.5) — the §II-B motivation numbers, measured.
//!
//! * Small updates: the paper's "a small update in the RACS system will
//!   incur a total of 4 accesses, including traffic of 2 reads and 2
//!   writes" versus HyRD's single replica-write round.
//! * Recovery: RAID5 whole-provider rebuild reads 3x what it restores
//!   (the Facebook-cluster cross-rack-traffic problem of §I); NCCloud's
//!   rate-1/2 layout reads 2x; HyRD restores replicated data by plain
//!   copy (1x) and erasure-coded data by rebuild.

use hyrd::driver::synth_content;
use hyrd::prelude::*;
use hyrd_baselines::{NcCloudLite, Racs};
use hyrd_bench::header;
use hyrd_gcsapi::OpKind;

fn main() {
    header("Small-update amplification (8 KB update on a 256 KB file)");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>14} {:>12}",
        "scheme", "reads", "writes", "total", "bytes moved", "latency (s)"
    );

    // HyRD.
    {
        let fleet = Fleet::standard_four(SimClock::new());
        let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        h.create_file("/f", &synth_content("/f", 0, 256 << 10)).expect("fleet up");
        let report = h.update_file("/f", 1000, &synth_content("/f", 1, 8 << 10)).expect("fleet up");
        print_row("HyRD", &report);
    }
    // RACS.
    {
        let fleet = Fleet::standard_four(SimClock::new());
        let mut r = Racs::new(&fleet).expect("4-provider fleet");
        r.create_file("/f", &synth_content("/f", 0, 256 << 10)).expect("fleet up");
        let report = r.update_file("/f", 1000, &synth_content("/f", 1, 8 << 10)).expect("fleet up");
        print_row("RACS", &report);
    }
    // RACS on a *large* (striped) file — the ranged RMW.
    {
        let fleet = Fleet::standard_four(SimClock::new());
        let mut r = Racs::new(&fleet).expect("4-provider fleet");
        r.create_file("/f", &synth_content("/f", 0, 8 << 20)).expect("fleet up");
        let report = r.update_file("/f", 1000, &synth_content("/f", 1, 8 << 10)).expect("fleet up");
        print_row("RACS (8MB)", &report);
    }

    header("Whole-provider recovery traffic (20 x 6 MB archive)");
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>8}",
        "scheme", "fragments", "bytes read", "bytes written", "amp"
    );
    {
        let fleet = Fleet::standard_four(SimClock::new());
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut r = Racs::new(&fleet).expect("4-provider fleet");
        for i in 0..20 {
            r.create_file(&format!("/a/f{i}"), &vec![0u8; 6 << 20]).expect("fleet up");
        }
        let victim = fleet.by_name("Rackspace").expect("standard fleet").id();
        let (t, _) = r.repair_provider(victim).expect("repairable");
        println!(
            "{:<14} {:>10} {:>14} {:>14} {:>7.2}x",
            "RACS",
            t.fragments_rebuilt,
            t.bytes_read,
            t.bytes_written,
            t.amplification()
        );
    }
    {
        let fleet = Fleet::standard_four(SimClock::new());
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut n = NcCloudLite::new(&fleet).expect("4-provider fleet");
        for i in 0..20 {
            n.create_file(&format!("/a/f{i}"), &vec![0u8; 6 << 20]).expect("fleet up");
        }
        let victim = fleet.by_name("Rackspace").expect("standard fleet").id();
        let (t, _) = n.repair_provider(victim).expect("repairable");
        println!(
            "{:<14} {:>10} {:>14} {:>14} {:>7.2}x",
            "NCCloud-lite",
            t.fragments_rebuilt,
            t.bytes_read,
            t.bytes_written,
            t.amplification()
        );
        println!("\n(true FMSR would reach 1.5x; the layout-level ordering NCCloud < RACS holds.)");
    }

    // HyRD consistency update after an outage (log replay, not rebuild).
    header("HyRD consistency update after a 1-provider outage (50 small writes)");
    let fleet = Fleet::standard_four(SimClock::new());
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let azure = fleet.by_name("Windows Azure").expect("standard fleet");
    azure.force_down();
    for i in 0..50 {
        h.create_file(&format!("/o/f{i}"), &synth_content("x", i, 8 << 10)).expect("survivors up");
    }
    azure.restore();
    let (report, batch) = h.recover_provider(azure.id()).expect("provider back");
    println!(
        "puts replayed: {}   bytes restored: {}   ops: {}  (1.0x — plain copies, no decode)",
        report.puts_replayed,
        report.bytes_restored,
        batch.op_count()
    );
}

fn print_row(name: &str, report: &hyrd_gcsapi::BatchReport) {
    let reads = report.ops.iter().filter(|o| o.kind == OpKind::Get).count();
    let writes = report.ops.iter().filter(|o| o.kind == OpKind::Put).count();
    let bytes: u64 = report.ops.iter().map(|o| o.bytes_in + o.bytes_out).sum();
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>14} {:>12.3}",
        name,
        reads,
        writes,
        reads + writes,
        bytes,
        report.latency.as_secs_f64()
    );
}
