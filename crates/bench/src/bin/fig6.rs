//! Figure 6: normalized access latency of all schemes, normal state and
//! during a Windows Azure outage, normalized to the single-cloud Amazon
//! S3 baseline.
//!
//! Paper-reported shape: in the normal state HyRD's latency is 58.7 %
//! lower than DuraCloud's and 34.8 % lower than RACS's; during the outage
//! 27.3 % and 46.3 % respectively, and DuraCloud runs *faster* than in
//! the normal state (single write path).

use hyrd_bench::fig6::{extended_lineup, paper_postmark, run_lineup_sweep};
use hyrd_bench::{flag_usize, header, write_json, Series};

fn main() {
    let config = paper_postmark(0xF16_6);
    header("Figure 6: access latency, normalized to Amazon S3 (normal state)");

    let mut results: Vec<(String, f64, f64)> = Vec::new(); // (name, normal, outage)
    let mut baseline = None;

    let verbose = std::env::args().any(|a| a == "--verbose");
    // Every (scheme, mode) cell owns a fresh fleet + clock, so the grid
    // runs on worker threads; collection order — and therefore all
    // output — is identical for every job count.
    let jobs = flag_usize("jobs", 0);
    for (name, normal, outage) in run_lineup_sweep(extended_lineup(), &config, jobs) {
        if verbose {
            println!("--- {name} (normal) ---\n{}", normal.summary());
        }
        let mean_normal = normal.mean_latency().as_secs_f64();
        if name == "Amazon S3" {
            baseline = Some(mean_normal);
        }
        // Single clouds have no outage story (their outage IS the outage).
        let mean_outage = match outage {
            None => f64::NAN,
            Some(outage) => {
                if verbose {
                    println!("--- {name} (outage) ---\n{}", outage.summary());
                }
                outage.mean_latency().as_secs_f64()
            }
        };
        results.push((name.to_string(), mean_normal, mean_outage));
    }

    let base = baseline.expect("lineup includes the S3 baseline");
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}",
        "scheme", "normal (s)", "outage (s)", "norm.", "norm.outage"
    );
    for (name, n, o) in &results {
        println!("{:<14} {:>14.3} {:>14.3} {:>12.3} {:>12.3}", name, n, o, n / base, o / base);
    }

    // The paper's headline deltas.
    let get = |n: &str| results.iter().find(|(name, _, _)| name == n).expect("in lineup");
    let (_, hyrd_n, hyrd_o) = get("HyRD");
    let (_, dura_n, dura_o) = get("DuraCloud");
    let (_, racs_n, racs_o) = get("RACS");
    println!();
    println!(
        "HyRD vs DuraCloud (normal): {:.1}% lower   [paper: 58.7%]",
        (1.0 - hyrd_n / dura_n) * 100.0
    );
    println!(
        "HyRD vs RACS      (normal): {:.1}% lower   [paper: 34.8%]",
        (1.0 - hyrd_n / racs_n) * 100.0
    );
    println!(
        "HyRD vs DuraCloud (outage): {:.1}% lower   [paper: 27.3%]",
        (1.0 - hyrd_o / dura_o) * 100.0
    );
    println!(
        "HyRD vs RACS      (outage): {:.1}% lower   [paper: 46.3%]",
        (1.0 - hyrd_o / racs_o) * 100.0
    );
    println!(
        "DuraCloud outage vs normal: {}   [paper: outage is faster]",
        if dura_o < dura_n { "faster (matches)" } else { "slower (MISMATCH)" }
    );

    let series: Vec<Series> = results
        .iter()
        .flat_map(|(name, n, o)| {
            vec![
                Series { label: format!("{name}/normal"), values: vec![n / base] },
                Series { label: format!("{name}/outage"), values: vec![o / base] },
            ]
        })
        .collect();
    write_json("fig6_normalized_latency", &series);
}
