//! Chaos soak drill: a long, seeded fault schedule over the IA trace.
//!
//! Every provider gets a [`FaultPlan::chaos`] schedule (throttling
//! bursts, latency spikes, 3‰ wire corruption, 3‰ torn puts, quarterly
//! bit rot), one provider additionally suffers a full outage mid-drill,
//! and the replay interleaves periodic consistency updates and scrub
//! passes — the whole hardening stack under fire at once.
//!
//! The drill asserts the availability claim the hardening exists for:
//! **zero unrecoverable reads**. Transient read errors during bursts are
//! allowed (and reported); serving *wrong bytes*, or failing to produce a
//! file's bytes after the faults have cleared and recovery has run, is
//! not. Everything is derived from `--seed`, so the same seed produces a
//! byte-identical report AND a byte-identical telemetry trace — records
//! are stamped with the virtual clock only. `--selfcheck` proves both
//! in-process, re-runs the drill through the parallel sweep engine
//! (`--jobs N` worker threads) to show the results are byte-identical
//! no matter how many threads carry them, and runs one drill at a
//! *different* `--clients` count to show the trace is client-count
//! invariant (DESIGN.md §11).
//!
//! `--clients N` replays the drill as N closed-loop sessions sharing the
//! namespace through the deterministic multi-client engine — the fault
//! schedule now lands on concurrent sessions instead of one.
//!
//! `--crash` composes the chaos schedule with deterministic **client
//! crashes**: the drill runs through the crash harness, a seeded
//! [`CrashPlan`] kills the client at recurring op budgets (while
//! throttling bursts, corruption and the mid-drill outage stay live),
//! each death restarts from the crash journal, and the run ends with
//! the strict durability audit — zero violations required.
//!
//! `--migrate` enables the adaptive redundancy policy
//! ([`hyrd::policy`]) and runs a background migration pass at the scrub
//! cadence — files re-encode between replication and erasure coding
//! *while* the fault schedule, the mid-drill outage and the concurrent
//! sessions are live. The pass gates itself off while any provider is
//! down, so the drill also exercises the deterministic skip path. The
//! availability verdict is unchanged: zero unrecoverable reads, and the
//! report and trace stay byte-identical per seed.
//!
//! Usage: `chaos_drill [--ops N] [--seed S] [--smoke] [--selfcheck]
//! [--clients N] [--jobs N] [--trace PATH] [--obs PATH] [--crash]
//! [--migrate]`
//!
//! `--obs PATH` folds the drill's telemetry trace through the
//! availability observatory ([`hyrd::observatory`]) and writes the
//! rendered report (provider SLIs, redundancy exposure, read ledger).

use std::collections::BTreeMap;
use std::time::Duration;

use serde::Serialize;

use hyrd::crashtest::CrashHarness;
use hyrd::driver::ReplayOptions;
use hyrd::policy::MigrationReport;
use hyrd::prelude::*;
use hyrd::scrub::ScrubReport;
use hyrd::telemetry::{Collector, SharedBuf, SlowSpan};
use hyrd_bench::{header, write_json};
use hyrd_cloudsim::{CrashPlan, FaultPlan};
use hyrd_workloads::{FsOp, IaTrace};

const CHUNK: usize = 250;

/// SplitMix64 finalizer: the drill's own deterministic coin flips.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Clamps the archive's file-size mix to drill-friendly sizes while
/// keeping both tiers exercised: large files land in 1–2 MB (still
/// erasure-coded), small files keep their archive size (512 B – 1 MB).
fn drill_size(s: u64) -> u64 {
    const MB: u64 = 1 << 20;
    if s >= MB {
        MB + s % MB
    } else {
        s
    }
}

/// Builds the drill's op stream from the IA trace: the archive's
/// create/read interleave (month by month, looped), plus injected
/// in-place updates and a tail of deletes. Updates stay inside the first
/// 512 bytes so they are valid against even the smallest file.
fn build_ops(trace: &IaTrace, seed: u64, want: usize) -> Vec<FsOp> {
    let mut ops: Vec<FsOp> = Vec::with_capacity(want + 64);
    let mut created: Vec<String> = Vec::new();
    let mut round = 0u64;
    while ops.len() < want {
        let month = (round % 12) as usize;
        let day = trace.sample_day_ops(month, 2e-5, mix(seed, round));
        for op in day {
            match op {
                FsOp::Create { path, size } => {
                    // Rounds revisit months; prefix so paths stay unique.
                    let path = format!("/r{round:02}{path}");
                    created.push(path.clone());
                    ops.push(FsOp::Create { path, size: drill_size(size) });
                }
                FsOp::Read { path } => {
                    ops.push(FsOp::Read { path: format!("/r{round:02}{path}") });
                }
                other => ops.push(other),
            }
            let z = mix(seed ^ 0x55AA, ops.len() as u64);
            if z % 19 == 0 && !created.is_empty() {
                let target = created[(z >> 32) as usize % created.len()].clone();
                ops.push(FsOp::Update {
                    path: target,
                    offset: (z >> 8) % 128,
                    len: 64 + (z >> 16) % 320,
                });
            }
            if ops.len() >= want {
                break;
            }
        }
        round += 1;
    }
    // Tail deletes (~2% of the pool, most recent first): exercises the
    // Remove replay path without orphaning any later read.
    let del = (created.len() / 50).max(1);
    for path in created.iter().rev().take(del) {
        ops.push(FsOp::Delete { path: path.clone() });
    }
    ops
}

/// Deterministic migration bait woven into the `--migrate` drill: four
/// hot erasure-coded files re-read throughout the stream (promotion
/// candidates at `promote_reads = 3`) and four cold replicated files
/// above the demotion floor that are never touched again. The policy
/// must move both kinds while the fault schedule runs, and the replay's
/// read verification holds migrated files to the same
/// zero-wrong-bytes bar as everything else.
fn weave_policy_pool(ops: Vec<FsOp>) -> Vec<FsOp> {
    const HOT: usize = 4;
    const COLD: usize = 4;
    let mut out = Vec::with_capacity(ops.len() + HOT + COLD + ops.len() / 25);
    for i in 0..HOT {
        out.push(FsOp::Create { path: format!("/pol/hot{i}"), size: 1536 * 1024 });
    }
    for i in 0..COLD {
        out.push(FsOp::Create { path: format!("/pol/cold{i}"), size: 256 * 1024 });
    }
    for (n, op) in ops.into_iter().enumerate() {
        out.push(op);
        if n % 25 == 24 {
            out.push(FsOp::Read { path: format!("/pol/hot{}", (n / 25) % HOT) });
        }
    }
    out
}

/// Everything one drill run measured. Field order is the JSON order; all
/// collections are scalar, so same-seed runs serialize byte-identically.
#[derive(Debug, Serialize, PartialEq)]
struct ChaosReport {
    seed: u64,
    clients: usize,
    ops_requested: usize,
    ops_replayed: usize,
    files_live: usize,
    virtual_hours: f64,
    // Replay-visible fault handling.
    replay_errors: u64,
    retries: u64,
    breaker_trips: u64,
    breaker_rejections: u64,
    corrupt_gets: u64,
    // Consistency updates (outage + periodic sweeps).
    recovery_puts_replayed: u64,
    recovery_removes_replayed: u64,
    recovery_bytes_restored: u64,
    // Scrub passes during the drill, then the final clean-state pass.
    drill_scrub: ScrubReport,
    final_scrub: ScrubReport,
    // Background migration activity (`--migrate`; `None` when the
    // policy is off, so plain-drill reports keep their exact shape).
    migrations: Option<MigrationReport>,
    // The availability verdict.
    verify_failures_mid_drill: u64,
    final_sweep_files: usize,
    final_sweep_mismatches: u64,
    final_sweep_errors: u64,
    unrecoverable_reads: u64,
    // Per-session op counts (these legitimately vary with `--clients`;
    // everything above, and the trace, does not).
    session_ops: BTreeMap<String, u64>,
    // What the trace collector saw (virtual-clock data only, so this
    // section is as deterministic as the rest of the report).
    telemetry: TelemetrySection,
}

/// Report section distilled from the telemetry collector. Only
/// virtual-clock-derived values belong here: wall-clock histograms (e.g.
/// `ec.encode_wall_ns`) stay out so same-seed reports stay byte-identical.
#[derive(Debug, Serialize, PartialEq)]
struct TelemetrySection {
    /// Lines in the JSONL trace (spans, events, meta).
    trace_records: u64,
    /// The five slowest spans by virtual duration, flame path included.
    spans_top5: Vec<SlowSpan>,
    /// Provider operations issued, per provider.
    provider_ops: BTreeMap<String, u64>,
    /// Faults injected by the simulator, per provider.
    provider_faults: BTreeMap<String, u64>,
    /// Retry backoffs taken by the dispatcher, per provider.
    retry_backoffs: BTreeMap<String, u64>,
}

/// The `--migrate` drill config: adaptive policy on, tuned so both
/// directions actually fire on the drill's file mix (the IA archive's
/// small files start at 512 B, so the demotion floor drops to 64 KiB).
fn migrate_config() -> HyrdConfig {
    let mut cfg = HyrdConfig::default();
    cfg.policy.enabled = true;
    cfg.policy.demote_idle = Duration::from_secs(60);
    cfg.policy.demote_min_bytes = 64 * 1024;
    cfg.policy.max_per_pass = 4;
    cfg
}

fn run_drill(
    seed: u64,
    ops_target: usize,
    clients: usize,
    migrate: bool,
) -> (ChaosReport, Vec<u8>) {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    let trace_buf = SharedBuf::new();
    let telemetry = Collector::builder(clock.clone()).jsonl(trace_buf.clone()).build();
    let config = if migrate { migrate_config() } else { HyrdConfig::default() };
    let h = Hyrd::with_telemetry(&fleet, config, telemetry.clone()).expect("valid default config");

    let trace = IaTrace::synthesize(seed);
    let mut ops = build_ops(&trace, seed, ops_target);
    if migrate {
        ops = weave_policy_pool(ops);
    }

    // Chaos schedules sized to the drill's rough virtual duration
    // (~1.5 s/op); per-provider seeds decorrelate the fault streams.
    let horizon = Duration::from_millis(ops.len() as u64 * 1500);
    for (idx, p) in fleet.providers().iter().enumerate() {
        p.set_fault_plan(FaultPlan::chaos(mix(seed, idx as u64 + 1), horizon));
    }

    let opts = ReplayOptions {
        verify_reads: true,
        telemetry: telemetry.clone(),
        ..ReplayOptions::default()
    };
    let engine =
        MultiClient::new(&h, &clock, MultiClientOptions { clients, jobs: 1, replay: opts });
    let mut replay_errors = 0u64;
    let mut verify_failures = 0u64;
    let mut ops_replayed = 0usize;
    let mut recovery = hyrd::RecoveryReport::default();
    let mut drill_scrub = ScrubReport::default();
    let mut drill_migrations = migrate.then(MigrationReport::default);

    let chunks: Vec<&[FsOp]> = ops.chunks(CHUNK).collect();
    let n_chunks = chunks.len();
    let down_at = n_chunks * 2 / 5;
    let up_at = n_chunks * 3 / 5;
    let scrub_every = (n_chunks / 4).max(1);
    let victim = fleet.by_name("Windows Azure").expect("standard fleet");

    let recover_available = |h: &Hyrd, recovery: &mut hyrd::RecoveryReport| {
        for p in fleet.providers() {
            if p.is_available() {
                if let Ok((r, _)) = h.recover_provider(p.id()) {
                    recovery.puts_replayed += r.puts_replayed;
                    recovery.removes_replayed += r.removes_replayed;
                    recovery.bytes_restored += r.bytes_restored;
                }
            }
        }
    };

    for (i, chunk) in chunks.iter().enumerate() {
        if i == down_at {
            victim.force_down();
        }
        if i == up_at {
            victim.restore();
            recover_available(&h, &mut recovery);
        }
        let stats = engine.run_ops(chunk);
        replay_errors += stats.errors;
        verify_failures += stats.verify_failures;
        ops_replayed += chunk.len();

        // Periodic maintenance: drain logs/dirty fragments of whoever is
        // reachable, and scrub each quarter of the drill.
        if i % 8 == 7 {
            recover_available(&h, &mut recovery);
        }
        if i % scrub_every == scrub_every - 1 {
            let (s, _) = h.scrub().expect("scrub runs");
            drill_scrub.absorb(s);
            // Background migration rides the scrub cadence; the pass
            // skips itself (and says so in the report) while the victim
            // is down, so the schedule stays deterministic.
            if let Some(total) = drill_migrations.as_mut() {
                let (m, _) = h.migrate_pass().expect("migrate pass runs");
                total.absorb(m);
            }
        }
    }

    // Faults end; the system gets its recovery pass, then must be whole.
    for p in fleet.providers() {
        p.set_fault_plan(FaultPlan::quiet());
        p.restore();
    }
    recover_available(&h, &mut recovery);
    let (final_scrub, _) = h.scrub().expect("clean-state scrub");
    recover_available(&h, &mut recovery);

    let mut mismatches = 0u64;
    let mut sweep_errors = 0u64;
    let paths: Vec<String> = engine.expected_paths();
    for path in &paths {
        let want = engine.expected_content(path).expect("expected table has the path");
        match h.read_file(path) {
            Ok((got, _)) => {
                if got[..] != want[..] {
                    mismatches += 1;
                }
            }
            Err(_) => sweep_errors += 1,
        }
    }

    telemetry.flush();
    let trace = trace_buf.contents();
    let snapshot = telemetry.metrics();
    let telemetry_section = TelemetrySection {
        trace_records: trace.iter().filter(|b| **b == b'\n').count() as u64,
        spans_top5: telemetry.slowest_spans(5),
        provider_ops: snapshot.counters_labeled("provider.ops").into_iter().collect(),
        provider_faults: snapshot.counters_labeled("provider.faults").into_iter().collect(),
        retry_backoffs: snapshot.counters_labeled("retry.backoffs").into_iter().collect(),
    };

    let counters = h.fault_counters();
    let unrecoverable = verify_failures + mismatches + sweep_errors + final_scrub.unrecoverable;
    let report = ChaosReport {
        seed,
        clients: engine.options().clients.max(1),
        ops_requested: ops_target,
        ops_replayed,
        files_live: engine.live_files(),
        virtual_hours: clock.now().as_secs_f64() / 3600.0,
        replay_errors,
        retries: counters.retries,
        breaker_trips: h.health().trips(),
        breaker_rejections: counters.breaker_rejections,
        corrupt_gets: counters.corrupt_gets,
        recovery_puts_replayed: recovery.puts_replayed,
        recovery_removes_replayed: recovery.removes_replayed,
        recovery_bytes_restored: recovery.bytes_restored,
        drill_scrub,
        final_scrub,
        migrations: drill_migrations,
        verify_failures_mid_drill: verify_failures,
        final_sweep_files: paths.len(),
        final_sweep_mismatches: mismatches,
        final_sweep_errors: sweep_errors,
        unrecoverable_reads: unrecoverable,
        session_ops: engine.sessions().iter().map(|s| (s.label.clone(), s.ops)).collect(),
        telemetry: telemetry_section,
    };
    (report, trace)
}

/// Everything one crash-mode drill measured. All scalars, so the same
/// seed serializes byte-identically.
#[derive(Debug, Serialize, PartialEq)]
struct CrashDrillReport {
    seed: u64,
    ops_replayed: usize,
    acked: u64,
    refused: u64,
    crashes: u64,
    restarts: u64,
    restarts_gc_skipped: u64,
    intents_rolled_forward: u64,
    intents_rolled_back: u64,
    replicas_healed: u64,
    orphans_removed: u64,
    pending_pruned: u64,
    torn_blocks_seen: u64,
    total_violations: u64,
    violations: Vec<String>,
}

/// The chaos schedule with deterministic client deaths on top: the op
/// stream runs through the crash harness, a fresh op-budget kill point
/// is armed every ~90 ops, every death restarts from the crash journal
/// (mid-outage restarts skip GC by design), and the drill ends with the
/// strict final durability audit.
fn run_crash_drill(seed: u64, ops_target: usize) -> CrashDrillReport {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    let mut h = CrashHarness::new(&fleet, HyrdConfig::default(), Collector::disabled())
        .expect("valid default config");
    // Faults are live: unreadable files retry at the next audit instead
    // of flagging immediately (the final audit is strict regardless).
    h.set_strict_reads(false);

    let trace = IaTrace::synthesize(seed);
    let ops = build_ops(&trace, seed, ops_target);
    let horizon = Duration::from_millis(ops.len() as u64 * 1500);
    for (idx, p) in fleet.providers().iter().enumerate() {
        p.set_fault_plan(FaultPlan::chaos(mix(seed, idx as u64 + 1), horizon));
    }

    let down_at = ops.len() * 2 / 5;
    let up_at = ops.len() * 3 / 5;
    let victim = fleet.by_name("Windows Azure").expect("standard fleet");
    let switch = fleet.crash_switch();

    for (i, op) in ops.iter().enumerate() {
        if i == down_at {
            victim.force_down();
        }
        if i == up_at {
            victim.restore();
            h.recover_all();
        }
        if h.is_dead() {
            h.restart_and_audit();
        }
        // Arm after any restart (restarting disarms the switch): the
        // next death lands somewhere in the following ~200 provider ops.
        if i % 90 == 0 {
            let delta = 1 + mix(seed ^ 0xDEAD_BEEF, i as u64) % 200;
            switch.arm(CrashPlan::at_op(switch.op_count() + delta));
        }
        h.execute(op);
    }

    // Faults end; the drill must come back to a clean, whole state.
    for p in fleet.providers() {
        p.set_fault_plan(FaultPlan::quiet());
        p.restore();
    }
    h.final_audit();

    let (acked, refused, crashes) = h.tallies();
    let mut report = CrashDrillReport {
        seed,
        ops_replayed: ops.len(),
        acked,
        refused,
        crashes,
        restarts: h.restart_reports().len() as u64,
        restarts_gc_skipped: 0,
        intents_rolled_forward: 0,
        intents_rolled_back: 0,
        replicas_healed: 0,
        orphans_removed: 0,
        pending_pruned: 0,
        torn_blocks_seen: 0,
        total_violations: h.violations().len() as u64,
        violations: h.violations().to_vec(),
    };
    for r in h.restart_reports() {
        report.restarts_gc_skipped += u64::from(r.gc_skipped);
        report.intents_rolled_forward += r.intents_rolled_forward;
        report.intents_rolled_back += r.intents_rolled_back;
        report.replicas_healed += r.replicas_healed;
        report.orphans_removed += r.orphans_removed;
        report.pending_pruned += r.pending_pruned;
        report.torn_blocks_seen += r.torn_blocks;
    }
    report.violations.truncate(40); // count stays full
    report
}

fn main() {
    let mut ops: usize = 10_000;
    let mut seed: u64 = 42;
    let mut selfcheck = false;
    let mut clients: usize = 1;
    let mut jobs: usize = 2;
    let mut trace_path: Option<String> = None;
    let mut obs_path: Option<String> = None;
    let mut crash = false;
    let mut migrate = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ops" => ops = args.next().expect("--ops N").parse().expect("numeric --ops"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("numeric --seed"),
            "--smoke" => ops = 1_200,
            "--selfcheck" => selfcheck = true,
            "--clients" => {
                clients = args.next().expect("--clients N").parse().expect("numeric --clients");
            }
            "--jobs" => jobs = args.next().expect("--jobs N").parse().expect("numeric --jobs"),
            "--trace" => trace_path = Some(args.next().expect("--trace PATH")),
            "--obs" => obs_path = Some(args.next().expect("--obs PATH")),
            "--crash" => crash = true,
            "--migrate" => migrate = true,
            other => panic!("unknown argument: {other}"),
        }
    }

    if crash {
        header(&format!("chaos crash drill: {ops} ops, seed {seed}"));
        let report = run_crash_drill(seed, ops);
        let body = serde_json::to_string_pretty(&report).expect("serialize report");
        if selfcheck {
            let again = run_crash_drill(seed, ops);
            assert_eq!(report, again, "crash drill diverged between same-seed runs");
            println!("selfcheck: crash-mode report byte-identical across two runs ✓");
        }
        println!("{body}");
        write_json("chaos_crash_drill", &report);
        assert_eq!(
            report.total_violations,
            0,
            "durability violations under chaos + client crashes:\n{}",
            report.violations.join("\n")
        );
        println!(
            "survived: {} ops, {} client crashes, {} restarts ({} mid-outage, GC deferred), \
             {} intents rolled forward, {} rolled back, {} orphans GC'd — 0 durability violations",
            report.ops_replayed,
            report.crashes,
            report.restarts,
            report.restarts_gc_skipped,
            report.intents_rolled_forward,
            report.intents_rolled_back,
            report.orphans_removed,
        );
        return;
    }

    let policy = if migrate { ", adaptive policy on" } else { "" };
    header(&format!("chaos drill: {ops} ops, seed {seed}, {clients} client(s){policy}"));
    let (report, trace) = run_drill(seed, ops, clients, migrate);
    let body = serde_json::to_string_pretty(&report).expect("serialize report");

    if selfcheck {
        // Two more drills through the parallel sweep engine at the
        // requested worker count: every swept report and trace must be
        // byte-identical to the inline run above — same-seed
        // repeatability and sweep-engine neutrality in one check.
        let cells: Vec<Box<dyn FnOnce() -> (String, Vec<u8>) + Send>> = (0..2)
            .map(|_| {
                Box::new(move || {
                    let (r, t) = run_drill(seed, ops, clients, migrate);
                    (serde_json::to_string_pretty(&r).expect("serialize report"), t)
                }) as Box<dyn FnOnce() -> (String, Vec<u8>) + Send>
            })
            .collect();
        for (i, (body_j, trace_j)) in replay_sweep(cells, jobs).into_iter().enumerate() {
            assert_eq!(body, body_j, "swept run {i} (jobs={jobs}) diverged from inline report");
            assert_eq!(trace, trace_j, "swept run {i} (jobs={jobs}) diverged from inline trace");
        }
        // One drill at a different session count: per-session tallies
        // differ, but the telemetry trace must not (DESIGN.md §11).
        let alt_clients = if clients == 1 { 4 } else { 1 };
        let (_, trace_alt) = run_drill(seed, ops, alt_clients, migrate);
        assert_eq!(
            trace, trace_alt,
            "trace diverged between --clients {clients} and {alt_clients}"
        );
        println!(
            "selfcheck: inline + 2 swept runs (jobs={jobs}) byte-identical, \
             trace invariant across --clients {clients}/{alt_clients} ✓"
        );
    }

    if let Some(path) = &trace_path {
        std::fs::write(path, &trace).expect("write trace file");
        println!(
            "trace: {} records ({:.1} MB) -> {path}",
            report.telemetry.trace_records,
            trace.len() as f64 / 1e6
        );
    }

    if let Some(path) = &obs_path {
        let text = std::str::from_utf8(&trace).expect("trace is utf-8");
        let obs = hyrd::observatory::from_trace(text, jobs).expect("parse drill trace");
        let obs_report = obs.report();
        std::fs::write(path, obs_report.render()).expect("write observatory report");
        println!(
            "observatory: {} provider(s), {} exposed file(s), {:.3}s exposure -> {path}",
            obs_report.providers.len(),
            obs_report.files.len(),
            obs_report.total_exposure_ns() as f64 / 1e9
        );
    }

    println!("{body}");
    write_json("chaos_drill", &report);

    if let Some(m) = &report.migrations {
        println!(
            "migrations under fire: {} promoted, {} demoted, {} aborted, {} pass(es) skipped \
             while unhealthy, {:.1} MB rewritten",
            m.promoted,
            m.demoted,
            m.aborted,
            m.skipped_unhealthy,
            m.bytes_rewritten as f64 / 1e6,
        );
        assert!(
            m.promoted + m.demoted > 0,
            "--migrate drill performed no migrations — policy never fired"
        );
    }

    assert_eq!(
        report.unrecoverable_reads, 0,
        "the drill served wrong bytes or lost data — hardening regression"
    );
    println!(
        "survived: {} ops, {} transient errors masked, {} retries, {} breaker trips, \
         {} corruptions caught, {} scrub repairs — 0 unrecoverable reads",
        report.ops_replayed,
        report.replay_errors,
        report.retries,
        report.breaker_trips,
        report.corrupt_gets,
        report.drill_scrub.repaired + report.final_scrub.repaired,
    );
}
