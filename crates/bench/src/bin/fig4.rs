//! Figure 4: estimated monthly (4a) and cumulative (4b) costs of hosting
//! the Internet Archive on each single cloud and on the Cloud-of-Clouds
//! schemes (DuraCloud, RACS, HyRD), Table II prices.
//!
//! Paper-reported shape: Aliyun cheapest single cloud; DuraCloud most
//! expensive overall; every Cloud-of-Clouds scheme costs more than any
//! single cloud; HyRD 33.4 % below DuraCloud and 20.4 % below RACS;
//! Azure/Rackspace bills grow near-monotonically while S3/Aliyun bills
//! track the fluctuating reads.

use hyrd_bench::{header, write_json, Series};
use hyrd_costsim::model::{
    CostModel, DepSkyModel, DuraCloudModel, HyrdModel, RacsModel, SingleModel, ALIYUN, AZURE,
    RACKSPACE, S3,
};
use hyrd_costsim::report::{cumulative_table, monthly_table, run_model, CostSeries};
use hyrd_workloads::IaTrace;

fn main() {
    let trace = IaTrace::synthesize(42);
    let mut models: Vec<Box<dyn CostModel>> = vec![
        Box::new(SingleModel::new("Amazon S3", S3)),
        Box::new(SingleModel::new("Windows Azure", AZURE)),
        Box::new(SingleModel::new("Aliyun", ALIYUN)),
        Box::new(SingleModel::new("Rackspace", RACKSPACE)),
        Box::new(DuraCloudModel::new()),
        Box::new(RacsModel::new()),
        Box::new(HyrdModel::paper_default()),
        Box::new(DepSkyModel::new()), // beyond the paper's Figure 4 lineup
    ];
    let series: Vec<CostSeries> =
        models.iter_mut().map(|m| run_model(m.as_mut(), &trace)).collect();

    header("Figure 4a: monthly cost ($)");
    print!("{}", monthly_table(&series));

    header("Figure 4b: cumulative cost ($)");
    print!("{}", cumulative_table(&series));

    header("Year totals");
    for s in &series {
        println!("{:<14} ${:>10.0}", s.scheme, s.total());
    }

    let total = |name: &str| series.iter().find(|s| s.scheme == name).expect("in lineup").total();
    let (hyrd, dura, racs) = (total("HyRD"), total("DuraCloud"), total("RACS"));
    println!();
    println!("HyRD vs DuraCloud: {:.1}% lower   [paper: 33.4%]", (1.0 - hyrd / dura) * 100.0);
    println!("HyRD vs RACS:      {:.1}% lower   [paper: 20.4%]", (1.0 - hyrd / racs) * 100.0);

    let json: Vec<Series> = series
        .iter()
        .flat_map(|s| {
            vec![
                Series { label: format!("{}/monthly", s.scheme), values: s.monthly() },
                Series { label: format!("{}/cumulative", s.scheme), values: s.cumulative() },
            ]
        })
        .collect();
    write_json("fig4_costs", &json);
}
