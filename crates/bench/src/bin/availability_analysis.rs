//! Availability analysis — the quantity in the paper's title, computed.
//!
//! Closed-form and Monte Carlo read availability of every redundancy
//! layout in the repository, across realistic provider availability
//! levels (2013-era outage reports put commercial clouds around 99.9 %,
//! with bad years dipping lower — §I/§II-A).

use hyrd_bench::header;
use hyrd_costsim::availability::{
    at_least_k_of_n, erasure_availability, hyrd_availability, monte_carlo_k_of_n, nines,
    replication_availability,
};

fn main() {
    header("Read availability by scheme (closed form)");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "p=0.99", "p=0.995", "p=0.999", "p=0.9995"
    );
    let ps = [0.99, 0.995, 0.999, 0.9995];
    let rows: Vec<(&str, Box<dyn Fn(f64) -> f64>)> = vec![
        ("single cloud", Box::new(|p| p)),
        ("DuraCloud (r=2)", Box::new(|p| replication_availability(p, 2))),
        ("DepSky (r=4)", Box::new(|p| replication_availability(p, 4))),
        ("RACS RAID5(3+1)", Box::new(|p| erasure_availability(p, 3, 4))),
        ("NCCloud RS(2,4)", Box::new(|p| erasure_availability(p, 2, 4))),
        ("HyRD small tier", Box::new(|p| replication_availability(p, 2))),
        ("HyRD large tier", Box::new(|p| erasure_availability(p, 3, 4))),
        ("HyRD (88% small)", Box::new(|p| hyrd_availability(p, 2, 3, 4, 0.88))),
    ];
    for (name, f) in &rows {
        print!("{name:<18}");
        for &p in &ps {
            print!(" {:>12.3}", nines(f(p)));
        }
        println!();
    }
    println!("(values are 'nines': 3.0 = 99.9% available)");

    header("Monte Carlo cross-check (MTBF 30 days, MTTR 6 h -> p≈0.9917)");
    let (mtbf, mttr) = (720.0, 6.0);
    let p = mtbf / (mtbf + mttr);
    let horizon = 1_000_000.0;
    println!("{:<18} {:>14} {:>14} {:>10}", "layout", "closed form", "Monte Carlo", "delta");
    for (name, k, n) in [
        ("any 1 of 2", 1u64, 2u64),
        ("any 1 of 4", 1, 4),
        ("any 3 of 4", 3, 4),
        ("any 2 of 4", 2, 4),
    ] {
        let cf = at_least_k_of_n(p, k, n);
        let mc = monte_carlo_k_of_n(k, n, mtbf, mttr, horizon, 0xA11).available;
        println!("{:<18} {:>14.6} {:>14.6} {:>10.6}", name, cf, mc, (cf - mc).abs());
    }

    header("The paper's design argument, in nines (p = 0.999 per provider)");
    let p = 0.999;
    println!(
        "single cloud: {:.2} nines -> HyRD: {:.2} nines  ({}x less unavailability)",
        nines(p),
        nines(hyrd_availability(p, 2, 3, 4, 0.88)),
        ((1.0 - p) / (1.0 - hyrd_availability(p, 2, 3, 4, 0.88))).round()
    );
    println!("=> redundant distribution turns cloud outages into non-events,");
    println!("   and the hybrid keeps that while paying erasure-coded prices.");
}
