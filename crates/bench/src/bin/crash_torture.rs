//! Crash-restart torture sweep: the end-to-end durability audit.
//!
//! Two sweeps, both fully deterministic:
//!
//! 1. **Exhaustive** — a handcrafted mini-trace crossing every
//!    dispatcher path (replicated and erasure-coded creates, cached
//!    small updates, RAID5 read-modify-writes, hot-copy installs and
//!    drops, deletes of both tiers, directory lists). A clean run with
//!    the crash switch disarmed counts provider ops and crashpoint
//!    hits; the sweep then replays the trace once per **every** op
//!    budget and once per **every** (crashpoint, hit) pair, killing
//!    the client at exactly that boundary, restarting it from the
//!    crash journal ([`Hyrd::restart`]) and auditing the durability
//!    contract (acked content, crashed-op atomicity, orphans, cost
//!    accounting).
//! 2. **Seeded sampling over the IA trace** — the same protocol on a
//!    slice of the Internet Archive workload (sizes clamped so the
//!    cell count stays sane), with op budgets and crashpoint hits
//!    sampled by a SplitMix64 stream from `--seed`.
//!
//! The report is all scalars and sorted maps, so the same seed
//! produces byte-identical output; `--selfcheck` proves it in-process
//! by re-running the whole torture at a different worker count and
//! byte-comparing both the report JSON and the clean run's telemetry
//! trace. The binary exits non-zero on any durability violation.
//!
//! Usage: `crash_torture [--seed S] [--ops N] [--ia-ops N]
//! [--ia-samples K] [--jobs N] [--smoke] [--skip-ia] [--selfcheck]`

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;

use hyrd::crashtest::CrashHarness;
use hyrd::prelude::*;
use hyrd::telemetry::{Collector, SharedBuf};
use hyrd_bench::{header, write_json};
use hyrd_cloudsim::CrashPlan;
use hyrd_workloads::{FsOp, IaTrace};

/// SplitMix64 finalizer: the sweep's deterministic sampling stream.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The torture config: a 4 KB large/small threshold keeps every cell
/// cheap while still exercising both tiers, and a hot-read threshold of
/// 2 pulls the hot-copy install/drop/delete paths into the sweep.
fn torture_config() -> HyrdConfig {
    HyrdConfig {
        threshold: 4 * 1024,
        probe_bytes: 4 * 1024,
        hot_read_threshold: Some(2),
        ..HyrdConfig::default()
    }
}

/// The handcrafted exhaustive trace (see module docs). `limit` trims it
/// for smoke runs; every prefix is a valid trace.
fn exhaustive_ops(limit: usize) -> Vec<FsOp> {
    let c = |path: &str, size: u64| FsOp::Create { path: path.into(), size };
    let r = |path: &str| FsOp::Read { path: path.into() };
    let u = |path: &str, offset: u64, len: u64| FsOp::Update { path: path.into(), offset, len };
    let d = |path: &str| FsOp::Delete { path: path.into() };
    let l = |path: &str| FsOp::ListDir { path: path.into() };
    let mut ops = vec![
        c("/a/small.txt", 700),  // replicated create
        c("/a/big.bin", 20_000), // erasure-coded create (4 KB threshold)
        r("/a/small.txt"),
        u("/a/small.txt", 10, 80), // replicated update through the cache
        r("/a/big.bin"),
        r("/a/big.bin"),             // second read installs the hot copy
        u("/a/big.bin", 5_000, 900), // RAID5 RMW; drops the hot copy
        c("/b/tiny.cfg", 64),
        l("/a"),
        c("/a/mid.dat", 9_000),
        r("/a/mid.dat"),
        r("/a/mid.dat"), // hot copy on /a/mid.dat
        u("/a/small.txt", 0, 240),
        d("/a/mid.dat"), // EC delete with a live hot copy
        u("/a/big.bin", 0, 300),
        d("/b/tiny.cfg"), // replicated delete
        c("/b/back.log", 5_000),
        r("/a/big.bin"),
        u("/b/back.log", 100, 400),
        d("/a/small.txt"),
        r("/b/back.log"),
        l("/b"),
        c("/a/late.txt", 300),
        r("/a/late.txt"),
    ];
    ops.truncate(limit.max(1));
    ops
}

/// Builds the IA-trace op stream: the archive's create/read interleave
/// with injected in-place updates and a tail of deletes. Sizes are
/// clamped to 512 B – 64 KB — the sweep exercises the archive's *op
/// mix*, not its byte volume (updates stay inside the first 512 bytes
/// so they are valid against every file).
fn ia_ops(seed: u64, want: usize) -> Vec<FsOp> {
    let trace = IaTrace::synthesize(seed);
    let mut ops: Vec<FsOp> = Vec::with_capacity(want + 16);
    let mut created: Vec<String> = Vec::new();
    let mut round = 0u64;
    while ops.len() < want {
        let month = (round % 12) as usize;
        let day = trace.sample_day_ops(month, 2e-5, mix(seed, round));
        for op in day {
            match op {
                FsOp::Create { path, size } => {
                    let path = format!("/r{round:02}{path}");
                    created.push(path.clone());
                    ops.push(FsOp::Create { path, size: size.clamp(512, 64 * 1024) });
                }
                FsOp::Read { path } => {
                    ops.push(FsOp::Read { path: format!("/r{round:02}{path}") });
                }
                other => ops.push(other),
            }
            let z = mix(seed ^ 0x55AA, ops.len() as u64);
            if z % 17 == 0 && !created.is_empty() {
                let target = created[(z >> 32) as usize % created.len()].clone();
                ops.push(FsOp::Update {
                    path: target,
                    offset: (z >> 8) % 128,
                    len: 64 + (z >> 16) % 320,
                });
            }
            if ops.len() >= want {
                break;
            }
        }
        round += 1;
    }
    let del = (created.len() / 50).max(1);
    for path in created.iter().rev().take(del) {
        ops.push(FsOp::Delete { path: path.clone() });
    }
    ops
}

/// What the disarmed baseline run of a trace measured.
struct CleanRun {
    /// Provider ops consumed by harness construction (evaluator probes).
    setup_ops: u64,
    /// Provider op count after the last trace op.
    total_ops: u64,
    /// Crashpoint hit counts over the trace.
    point_hits: BTreeMap<String, u64>,
    /// The clean run's JSONL telemetry trace (selfcheck baseline).
    trace: Vec<u8>,
    /// Violations from the baseline's own final audit (must be none).
    violations: Vec<String>,
}

fn clean_run(ops: &[FsOp], config: &HyrdConfig) -> CleanRun {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    let buf = SharedBuf::new();
    let telemetry = Collector::builder(clock.clone()).jsonl(buf.clone()).build();
    let mut h = CrashHarness::new(&fleet, config.clone(), telemetry.clone()).expect("valid config");
    let setup_ops = fleet.crash_switch().op_count();
    for op in ops {
        h.execute(op);
    }
    let total_ops = fleet.crash_switch().op_count();
    let point_hits = fleet.crash_switch().point_hits();
    h.final_audit();
    telemetry.flush();
    CleanRun {
        setup_ops,
        total_ops,
        point_hits,
        trace: buf.contents(),
        violations: h.violations().to_vec(),
    }
}

/// One crash cell's outcome.
struct CellResult {
    crashed: bool,
    restarts: u64,
    rolled_forward: u64,
    rolled_back: u64,
    replicas_healed: u64,
    orphans_removed: u64,
    pending_pruned: u64,
    torn_blocks: u64,
    violations: Vec<String>,
}

/// Replays the whole trace with `plan` armed: the client dies at the
/// planned boundary, restarts from its journal, finishes the trace, and
/// takes the final strict audit. Violations are prefixed with `label`
/// so the report names the exact crash boundary that produced them.
fn run_cell(ops: &[FsOp], config: &HyrdConfig, plan: CrashPlan, label: &str) -> CellResult {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    let mut h =
        CrashHarness::new(&fleet, config.clone(), Collector::disabled()).expect("valid config");
    fleet.crash_switch().arm(plan);
    for op in ops {
        if h.is_dead() {
            h.restart_and_audit();
        }
        h.execute(op);
    }
    h.final_audit();
    let (_, _, crashes) = h.tallies();
    let mut result = CellResult {
        crashed: crashes > 0,
        restarts: h.restart_reports().len() as u64,
        rolled_forward: 0,
        rolled_back: 0,
        replicas_healed: 0,
        orphans_removed: 0,
        pending_pruned: 0,
        torn_blocks: 0,
        violations: h.violations().iter().map(|v| format!("[{label}] {v}")).collect(),
    };
    for r in h.restart_reports() {
        result.rolled_forward += r.intents_rolled_forward;
        result.rolled_back += r.intents_rolled_back;
        result.replicas_healed += r.replicas_healed;
        result.orphans_removed += r.orphans_removed;
        result.pending_pruned += r.pending_pruned;
        result.torn_blocks += r.torn_blocks;
    }
    result
}

/// Sums over a sweep's cells.
#[derive(Default)]
struct Agg {
    cells: usize,
    crashed: usize,
    missed: usize,
    restarts: u64,
    rolled_forward: u64,
    rolled_back: u64,
    replicas_healed: u64,
    orphans_removed: u64,
    pending_pruned: u64,
    torn_blocks: u64,
    violations: Vec<String>,
}

impl Agg {
    fn absorb(&mut self, c: CellResult) {
        self.cells += 1;
        if c.crashed {
            self.crashed += 1;
        } else {
            self.missed += 1;
        }
        self.restarts += c.restarts;
        self.rolled_forward += c.rolled_forward;
        self.rolled_back += c.rolled_back;
        self.replicas_healed += c.replicas_healed;
        self.orphans_removed += c.orphans_removed;
        self.pending_pruned += c.pending_pruned;
        self.torn_blocks += c.torn_blocks;
        self.violations.extend(c.violations);
    }
}

/// Runs a list of (label, plan) cells through the parallel sweep engine
/// and aggregates. Cell order (and therefore the report) is independent
/// of `jobs`.
fn sweep(ops: &[FsOp], config: &HyrdConfig, plans: Vec<(String, CrashPlan)>, jobs: usize) -> Agg {
    let cells: Vec<_> = plans
        .into_iter()
        .map(|(label, plan)| move || run_cell(ops, config, plan, &label))
        .collect();
    let mut agg = Agg::default();
    for result in replay_sweep(cells, jobs) {
        agg.absorb(result);
    }
    agg
}

/// Every (budget, crashpoint-hit) cell the clean run admits.
fn exhaustive_plans(clean: &CleanRun) -> Vec<(String, CrashPlan)> {
    let mut plans = Vec::new();
    for b in clean.setup_ops + 1..=clean.total_ops {
        plans.push((format!("op {b}"), CrashPlan::at_op(b)));
    }
    for (name, hits) in &clean.point_hits {
        for hit in 1..=*hits {
            plans.push((format!("{name}#{hit}"), CrashPlan::at_point(name.clone(), hit)));
        }
    }
    plans
}

/// Seeded sample of op budgets plus one sampled hit per crashpoint.
fn sampled_plans(clean: &CleanRun, seed: u64, samples: usize) -> Vec<(String, CrashPlan)> {
    let span = clean.total_ops.saturating_sub(clean.setup_ops).max(1);
    let mut budgets = BTreeSet::new();
    let want = samples.min(span as usize);
    let mut salt = 0u64;
    while budgets.len() < want {
        budgets.insert(clean.setup_ops + 1 + mix(seed ^ 0x00C0_FFEE, salt) % span);
        salt += 1;
    }
    let mut plans: Vec<(String, CrashPlan)> =
        budgets.into_iter().map(|b| (format!("ia op {b}"), CrashPlan::at_op(b))).collect();
    for (idx, (name, hits)) in clean.point_hits.iter().enumerate() {
        let hit = 1 + mix(seed ^ 0xBEEF, idx as u64) % *hits;
        plans.push((format!("ia {name}#{hit}"), CrashPlan::at_point(name.clone(), hit)));
    }
    plans
}

/// The deterministic torture report: scalars and sorted maps only.
#[derive(Debug, Serialize, PartialEq)]
struct TortureReport {
    seed: u64,
    // Exhaustive sweep over the handcrafted trace.
    trace_ops: usize,
    setup_ops: u64,
    trace_provider_ops: u64,
    clean_point_hits: BTreeMap<String, u64>,
    clean_trace_records: u64,
    budget_cells: usize,
    point_cells: usize,
    cells_crashed: usize,
    cells_missed: usize,
    restarts: u64,
    intents_rolled_forward: u64,
    intents_rolled_back: u64,
    replicas_healed: u64,
    orphans_removed: u64,
    pending_pruned: u64,
    torn_blocks_seen: u64,
    // Seeded sampling over the IA trace.
    ia_ran: bool,
    ia_trace_ops: usize,
    ia_provider_ops: u64,
    ia_cells: usize,
    ia_cells_crashed: usize,
    ia_restarts: u64,
    ia_intents_rolled_forward: u64,
    ia_intents_rolled_back: u64,
    ia_orphans_removed: u64,
    // Verdict.
    total_violations: u64,
    violations: Vec<String>,
}

#[derive(Clone, Copy)]
struct TortureOptions {
    seed: u64,
    trace_ops: usize,
    ia_ops: usize,
    ia_samples: usize,
    skip_ia: bool,
    jobs: usize,
}

/// Runs the whole torture. Returns the report and the clean exhaustive
/// run's telemetry trace (the selfcheck baselines).
fn run_torture(opts: &TortureOptions) -> (TortureReport, Vec<u8>) {
    let config = torture_config();

    // Exhaustive sweep.
    let ops = exhaustive_ops(opts.trace_ops);
    let clean = clean_run(&ops, &config);
    let plans = exhaustive_plans(&clean);
    let budget_cells = (clean.total_ops - clean.setup_ops) as usize;
    let point_cells = plans.len() - budget_cells;
    let mut agg = sweep(&ops, &config, plans, opts.jobs);
    let mut violations: Vec<String> =
        clean.violations.iter().map(|v| format!("[clean] {v}")).collect();
    violations.append(&mut agg.violations);

    // IA sampling.
    let mut ia = Agg::default();
    let (mut ia_trace_ops, mut ia_provider_ops) = (0usize, 0u64);
    if !opts.skip_ia {
        let ops = ia_ops(opts.seed, opts.ia_ops);
        let clean = clean_run(&ops, &config);
        ia_trace_ops = ops.len();
        ia_provider_ops = clean.total_ops - clean.setup_ops;
        let plans = sampled_plans(&clean, opts.seed, opts.ia_samples);
        ia = sweep(&ops, &config, plans, opts.jobs);
        violations.extend(clean.violations.iter().map(|v| format!("[ia clean] {v}")));
        violations.append(&mut ia.violations);
    }

    let total_violations = violations.len() as u64;
    violations.truncate(40); // keep the report readable; the count is full
    let report = TortureReport {
        seed: opts.seed,
        trace_ops: ops.len(),
        setup_ops: clean.setup_ops,
        trace_provider_ops: clean.total_ops - clean.setup_ops,
        clean_point_hits: clean.point_hits.clone(),
        clean_trace_records: clean.trace.iter().filter(|b| **b == b'\n').count() as u64,
        budget_cells,
        point_cells,
        cells_crashed: agg.crashed,
        cells_missed: agg.missed,
        restarts: agg.restarts,
        intents_rolled_forward: agg.rolled_forward,
        intents_rolled_back: agg.rolled_back,
        replicas_healed: agg.replicas_healed,
        orphans_removed: agg.orphans_removed,
        pending_pruned: agg.pending_pruned,
        torn_blocks_seen: agg.torn_blocks,
        ia_ran: !opts.skip_ia,
        ia_trace_ops,
        ia_provider_ops,
        ia_cells: ia.cells,
        ia_cells_crashed: ia.crashed,
        ia_restarts: ia.restarts,
        ia_intents_rolled_forward: ia.rolled_forward,
        ia_intents_rolled_back: ia.rolled_back,
        ia_orphans_removed: ia.orphans_removed,
        total_violations,
        violations,
    };
    (report, clean.trace)
}

fn main() {
    let mut opts = TortureOptions {
        seed: 42,
        trace_ops: 24,
        ia_ops: 400,
        ia_samples: 16,
        skip_ia: false,
        jobs: 0,
    };
    let mut selfcheck = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => opts.seed = args.next().expect("--seed S").parse().expect("numeric"),
            "--ops" => opts.trace_ops = args.next().expect("--ops N").parse().expect("numeric"),
            "--ia-ops" => {
                opts.ia_ops = args.next().expect("--ia-ops N").parse().expect("numeric");
            }
            "--ia-samples" => {
                opts.ia_samples = args.next().expect("--ia-samples K").parse().expect("numeric");
            }
            "--jobs" => opts.jobs = args.next().expect("--jobs N").parse().expect("numeric"),
            "--smoke" => {
                opts.trace_ops = 14;
                opts.skip_ia = true;
            }
            "--skip-ia" => opts.skip_ia = true,
            "--selfcheck" => selfcheck = true,
            other => panic!("unknown argument: {other}"),
        }
    }

    header(&format!("crash torture: {} trace ops exhaustive, seed {}", opts.trace_ops, opts.seed));
    let (report, clean_trace) = run_torture(&opts);
    let body = serde_json::to_string_pretty(&report).expect("serialize report");

    if selfcheck {
        // The whole torture again at a different worker count: report
        // and clean trace must be byte-identical — same-seed
        // repeatability and sweep-engine neutrality in one check.
        let alt = TortureOptions { jobs: if opts.jobs == 1 { 0 } else { 1 }, ..opts };
        let (report_j, trace_j) = run_torture(&alt);
        let body_j = serde_json::to_string_pretty(&report_j).expect("serialize report");
        assert_eq!(body, body_j, "torture report diverged across worker counts");
        assert_eq!(clean_trace, trace_j, "clean-run trace diverged across worker counts");
        println!(
            "selfcheck: report + trace byte-identical across jobs {}/{} ✓",
            opts.jobs, alt.jobs
        );
    }

    println!("{body}");
    write_json("crash_torture", &report);

    assert_eq!(
        report.cells_missed, 0,
        "a sweep cell never crashed — the clean-run budgets are stale"
    );
    assert_eq!(
        report.total_violations,
        0,
        "durability violations found:\n{}",
        report.violations.join("\n")
    );
    println!(
        "survived: {} crash cells ({} exhaustive + {} IA-sampled), {} restarts, \
         {} intents rolled forward, {} rolled back, {} orphans GC'd — 0 durability violations",
        report.cells_crashed + report.ia_cells_crashed,
        report.budget_cells + report.point_cells,
        report.ia_cells,
        report.restarts + report.ia_restarts,
        report.intents_rolled_forward + report.ia_intents_rolled_forward,
        report.intents_rolled_back + report.ia_intents_rolled_back,
        report.orphans_removed + report.ia_orphans_removed,
    );
}
