//! Ablation: the §VI deduplication extension — "apply data deduplication
//! in the HyRD module to eliminate the redundant data and reduce the
//! total data transferred over the network".
//!
//! Workload: a backup-style scenario (the dedup-friendliest case): daily
//! snapshots of a working set where a few percent of each file mutates
//! between snapshots. Measures network transfer, upload latency, cloud
//! storage footprint, and the client-side index memory §VI warns about.

use hyrd::prelude::*;
use hyrd::DedupStore;
use hyrd_bench::header;

fn content(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u8
        })
        .collect()
}

/// `days` snapshots of `files` working-set files, `mutation` fraction of
/// each file rewritten per day.
fn snapshots(files: usize, size: usize, days: usize, mutation: f64) -> Vec<Vec<(String, Vec<u8>)>> {
    let mut working: Vec<Vec<u8>> = (0..files).map(|i| content(size, i as u64)).collect();
    let mut out = Vec::new();
    for day in 0..days {
        // Mutate a contiguous region of each file (e.g. appended log
        // records, edited documents).
        if day > 0 {
            for (i, f) in working.iter_mut().enumerate() {
                let span = ((size as f64) * mutation) as usize;
                let at = (day * 7919 + i * 104729) % (size - span);
                let patch = content(span, (day * 1000 + i) as u64 + 0xFFFF);
                f[at..at + span].copy_from_slice(&patch);
            }
        }
        out.push(
            working
                .iter()
                .enumerate()
                .map(|(i, f)| (format!("/backup/day{day}/f{i}"), f.clone()))
                .collect(),
        );
    }
    out
}

fn main() {
    let days = 5;
    let files = 8;
    let size = 512 << 10;
    let mutation = 0.03;
    let data = snapshots(files, size, days, mutation);
    let logical: u64 = (days * files * size) as u64;

    header(&format!(
        "Dedup ablation: {days} daily snapshots of {files} x {}KB, {:.0}% daily churn",
        size >> 10,
        mutation * 100.0
    ));

    // Plain HyRD: every snapshot uploads everything.
    let fleet_plain = Fleet::standard_four(SimClock::new());
    for p in fleet_plain.providers() {
        p.set_ghost_mode(true);
    }
    let mut plain = Hyrd::new(&fleet_plain, HyrdConfig::default()).expect("valid config");
    let mut plain_latency = 0.0;
    for day in &data {
        for (path, bytes) in day {
            let r = plain.create_file(path, bytes).expect("fleet up");
            plain_latency += r.latency.as_secs_f64();
        }
    }
    let plain_transferred: u64 = fleet_plain.providers().iter().map(|p| p.stats().bytes_in).sum();

    // HyRD + dedup: only changed chunks travel after day 0.
    let fleet_dedup = Fleet::standard_four(SimClock::new());
    for p in fleet_dedup.providers() {
        p.set_ghost_mode(true);
    }
    let hyrd = Hyrd::new(&fleet_dedup, HyrdConfig::default()).expect("valid config");
    let mut dedup = DedupStore::new(hyrd);
    let mut dedup_latency = 0.0;
    for day in &data {
        for (path, bytes) in day {
            let r = dedup.write_file(path, bytes).expect("fleet up");
            dedup_latency += r.latency.as_secs_f64();
        }
    }
    let dedup_transferred: u64 = fleet_dedup.providers().iter().map(|p| p.stats().bytes_in).sum();

    println!(
        "{:<14} {:>16} {:>16} {:>14} {:>12}",
        "variant", "transferred MB", "cloud-stored MB", "upload lat(s)", "ratio"
    );
    println!(
        "{:<14} {:>16.1} {:>16.1} {:>14.1} {:>12.2}",
        "HyRD",
        plain_transferred as f64 / 1e6,
        fleet_plain.total_stored_bytes() as f64 / 1e6,
        plain_latency,
        1.0
    );
    println!(
        "{:<14} {:>16.1} {:>16.1} {:>14.1} {:>12.2}",
        "HyRD+dedup",
        dedup_transferred as f64 / 1e6,
        fleet_dedup.total_stored_bytes() as f64 / 1e6,
        dedup_latency,
        dedup.stats().dedup_ratio()
    );
    println!();
    println!(
        "logical data: {:.1} MB; dedup saw {} unique + {} duplicate chunks",
        logical as f64 / 1e6,
        dedup.stats().unique_chunks,
        dedup.stats().duplicate_chunks
    );
    println!(
        "network savings: {:.1}%   upload-latency savings: {:.1}%",
        (1.0 - dedup_transferred as f64 / plain_transferred as f64) * 100.0,
        (1.0 - dedup_latency / plain_latency) * 100.0
    );
    println!(
        "client-side index memory (the §VI cost): {:.1} KB for {} chunks",
        dedup.index_memory_bytes() as f64 / 1e3,
        dedup.unique_chunks()
    );
}
