//! Parallel replay throughput: seeded Internet-Archive weeks through
//! HyRD and the Cloud-of-Clouds baselines, one (scheme, week) cell per
//! worker thread.
//!
//! Each cell owns a fresh fleet and virtual clock, so the grid is
//! embarrassingly parallel; [`replay_sweep`] collects the results in
//! submission order, which makes every output — including the JSON
//! record — byte-identical for every `--jobs` value. `--check` proves
//! that in-process by re-running the grid single-threaded and comparing
//! the serialized stats.
//!
//! Usage: `replay_sweep [--jobs N] [--weeks N] [--seed S] [--check]`

use std::time::Instant;

use hyrd::driver::{effective_jobs, replay, ReplayOptions, ReplayStats};
use hyrd::prelude::*;
use hyrd_baselines::{DuraCloud, Racs};
use hyrd_bench::{flag_usize, header, write_json, Series};
use hyrd_workloads::{FsOp, IaTrace};

/// The swept lineup: HyRD plus the two baselines the paper's Figure 6
/// spends the most ink on.
fn lineup() -> Vec<(&'static str, fn(&Fleet) -> Box<dyn Scheme>)> {
    vec![
        ("HyRD", |f| Box::new(Hyrd::new(f, HyrdConfig::default()).expect("valid default config"))),
        ("RACS", |f| Box::new(Racs::new(f).expect("4-provider fleet"))),
        ("DuraCloud", |f| Box::new(DuraCloud::standard(f).expect("standard fleet"))),
    ]
}

/// Seven sampled archive days, day-prefixed so weeks never collide on
/// paths. Create sizes are clamped to 2 MiB: both tiers stay exercised
/// (≥ 1 MiB is still erasure-coded) without 100 MB archive outliers
/// dominating the wall clock.
fn week_ops(trace: &IaTrace, week: usize, seed: u64) -> Vec<FsOp> {
    let mut ops = Vec::new();
    for day in 0..7u64 {
        let prefix = format!("/w{week:02}d{day}");
        let salt = seed ^ ((week as u64) << 16) ^ day;
        for op in trace.sample_day_ops(week % 12, 6e-6, salt) {
            ops.push(match op {
                FsOp::Create { path, size } => {
                    FsOp::Create { path: format!("{prefix}{path}"), size: size.min(2 << 20) }
                }
                FsOp::Read { path } => FsOp::Read { path: format!("{prefix}{path}") },
                FsOp::Update { path, offset, len } => {
                    FsOp::Update { path: format!("{prefix}{path}"), offset, len }
                }
                FsOp::Delete { path } => FsOp::Delete { path: format!("{prefix}{path}") },
                FsOp::ListDir { path } => FsOp::ListDir { path: format!("{prefix}{path}") },
            });
        }
    }
    ops
}

/// One cell: a fresh ghost-mode fleet replaying one week.
fn run_cell(make: fn(&Fleet) -> Box<dyn Scheme>, ops: &[FsOp]) -> ReplayStats {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let mut scheme = make(&fleet);
    replay(scheme.as_mut(), ops, &clock, &ReplayOptions::default())
}

/// Runs the whole scheme × week grid on `jobs` workers.
fn run_grid(weeks_ops: &[Vec<FsOp>], jobs: usize) -> Vec<ReplayStats> {
    let mut cells: Vec<Box<dyn FnOnce() -> ReplayStats + Send + '_>> = Vec::new();
    for (_, make) in lineup() {
        for ops in weeks_ops {
            cells.push(Box::new(move || run_cell(make, ops)));
        }
    }
    hyrd::driver::replay_sweep(cells, jobs)
}

fn main() {
    let jobs = flag_usize("jobs", 0);
    let weeks = flag_usize("weeks", 4);
    let seed = flag_usize("seed", 7) as u64;
    let check = std::env::args().any(|a| a == "--check");

    let trace = IaTrace::synthesize(seed);
    let weeks_ops: Vec<Vec<FsOp>> = (0..weeks).map(|w| week_ops(&trace, w, seed)).collect();
    let ops_per_scheme: usize = weeks_ops.iter().map(Vec::len).sum();
    header(&format!(
        "replay sweep: {} scheme(s) × {weeks} archive week(s) ({ops_per_scheme} ops each), \
         jobs={} (seed {seed})",
        lineup().len(),
        effective_jobs(jobs),
    ));

    let wall = Instant::now();
    let results = run_grid(&weeks_ops, jobs);
    let wall = wall.elapsed();

    let total_ops = ops_per_scheme * lineup().len();
    let total_bytes: u64 = results.iter().map(|s| s.bytes_in + s.bytes_out).sum();
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>14} {:>8}",
        "scheme", "ops", "mean lat", "errors", "provider ops", "MB"
    );
    let mut series = Vec::new();
    for ((name, _), per_week) in lineup().iter().zip(results.chunks(weeks.max(1))) {
        let ops: usize = per_week.iter().map(|s| s.overall.count()).sum();
        let errors: u64 = per_week.iter().map(|s| s.errors).sum();
        let provider_ops: u64 = per_week.iter().map(|s| s.provider_ops).sum();
        let bytes: u64 = per_week.iter().map(|s| s.bytes_in + s.bytes_out).sum();
        let mean: f64 = per_week.iter().map(|s| s.mean_latency().as_secs_f64()).sum::<f64>()
            / per_week.len().max(1) as f64;
        println!(
            "{:<12} {:>8} {:>11.3}s {:>10} {:>14} {:>8.1}",
            name,
            ops,
            mean,
            errors,
            provider_ops,
            bytes as f64 / 1e6
        );
        series.push(Series {
            label: name.to_string(),
            values: per_week.iter().map(|s| s.mean_latency().as_secs_f64()).collect(),
        });
        assert_eq!(errors, 0, "{name} errored on the archive weeks");
    }
    println!(
        "\nwall: {:.2}s — {:.0} replayed ops/s, {:.1} simulated MB/s (jobs={})",
        wall.as_secs_f64(),
        total_ops as f64 / wall.as_secs_f64().max(1e-9),
        total_bytes as f64 / 1e6 / wall.as_secs_f64().max(1e-9),
        effective_jobs(jobs),
    );

    if check {
        let single = run_grid(&weeks_ops, 1);
        let a = serde_json::to_string(&results).expect("serialize stats");
        let b = serde_json::to_string(&single).expect("serialize stats");
        assert_eq!(a, b, "jobs={} and jobs=1 must be byte-identical", effective_jobs(jobs));
        println!("check: jobs={} matches jobs=1 byte-for-byte ✓", effective_jobs(jobs));
    }

    write_json("replay_sweep_latency", &series);
}
