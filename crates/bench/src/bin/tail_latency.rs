//! Tail-latency sweep: hedged vs unhedged reads under latency spikes,
//! driven by the open-loop Poisson workload (`hyrd::driver::openloop`).
//!
//! The grid is hedging delay × fault plan. Each cell builds a fresh
//! fleet/clock/client, loads the file pool, installs the cell's fault
//! plan *relative to the post-setup clock* (so spike windows always
//! cover the timed phase), then replays the same arrival schedule and
//! reports p50/p99/p999 with the hedge counters. The `spikes` plan is a
//! rotating ×8 latency spike: six episodes spread across the arrival
//! span, each slowing one of the four providers — the classic "one slow
//! replica" regime hedged requests exist for.
//!
//! `--check` reruns the whole sweep at `--jobs 1` and `--jobs 2` and
//! asserts every cell's stats and telemetry trace are byte-identical —
//! the determinism contract with hedging both off and on. CI's
//! tail-smoke job additionally `cmp`s `--trace` files across separate
//! processes.
//!
//! Writes the headline numbers (p99 speedup from hedging under spikes,
//! extra provider ops paid for it) to repo-root `BENCH_tail.json`.
//!
//! Usage: `tail_latency [--arrivals N] [--rate R] [--seed S] [--jobs N]
//! [--smoke] [--check] [--trace PATH] [--obs PATH]`

use std::time::Duration;

use hyrd::config::{HedgeConfig, HyrdConfig};
use hyrd::dispatcher::Hyrd;
use hyrd::driver::openloop::replay_arrivals;
use hyrd::driver::{replay_sweep, replay_with_state, ReplayOptions, ReplayState, ReplayStats};
use hyrd::prelude::*;
use hyrd::telemetry::{Collector, SharedBuf};
use hyrd_bench::{header, summary};
use hyrd_cloudsim::faults::FaultPlan;
use hyrd_workloads::{OpenLoop, OpenLoopConfig};

/// One sweep cell: a hedging policy crossed with a fault plan.
#[derive(Debug, Clone)]
struct Cell {
    label: String,
    hedge: HedgeConfig,
    spikes: bool,
}

/// What a cell produced.
struct CellOutput {
    label: String,
    timed: ReplayStats,
    hedges_fired: u64,
    hedges_won: u64,
    hedges_cancelled: u64,
    trace: Vec<u8>,
}

/// Rotating ×8 spike plan for provider `idx`: of the six episodes laid
/// across `span` (each `span/32` long, so an ~19% duty cycle overall),
/// this provider is slowed during episodes `idx`, `idx+4`, …
fn spike_plan(idx: usize, origin: Duration, span: Duration) -> FaultPlan {
    let episode = span / 32;
    let stride = span / 6;
    let mut plan = FaultPlan::quiet();
    for e in 0..6usize {
        if e % 4 == idx {
            let start = origin + stride * e as u32;
            plan = plan.with_spike(start, start + episode, 8.0);
        }
    }
    plan
}

fn run_cell(cell: &Cell, workload: &OpenLoop) -> CellOutput {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    let trace_buf = SharedBuf::new();
    let telemetry = Collector::builder(clock.clone()).jsonl(trace_buf.clone()).build();
    let config = HyrdConfig { hedge: cell.hedge.clone(), ..HyrdConfig::default() };
    let mut hyrd = Hyrd::with_telemetry(&fleet, config, telemetry.clone()).expect("valid config");
    let opts = ReplayOptions {
        verify_reads: true,
        telemetry: telemetry.clone(),
        ..ReplayOptions::default()
    };

    let mut state = ReplayState::default();
    let setup = replay_with_state(&mut hyrd, &workload.setup_ops(), &clock, &opts, &mut state);
    assert_eq!(setup.errors, 0, "pool setup must succeed");

    if cell.spikes {
        // Windows are anchored at the post-setup clock so they always
        // cover the timed phase, whatever the setup phase cost.
        let arrivals = workload.arrivals();
        let span = arrivals.last().expect("non-empty workload").at;
        for (idx, provider) in fleet.providers().iter().enumerate() {
            provider.set_fault_plan(spike_plan(idx, clock.now(), span));
        }
    }

    let timed = replay_arrivals(&mut hyrd, &workload.arrivals(), &clock, &opts, &mut state);
    assert_eq!(timed.errors, 0, "open-loop reads must succeed");
    assert_eq!(timed.verify_failures, 0, "hedged reads must return correct bytes");
    telemetry.flush();
    let metrics = telemetry.metrics();
    CellOutput {
        label: cell.label.clone(),
        timed,
        hedges_fired: metrics.counter("hedge.fired"),
        hedges_won: metrics.counter("hedge.won"),
        hedges_cancelled: metrics.counter("hedge.cancelled"),
        trace: trace_buf.contents(),
    }
}

fn run_sweep(cells: &[Cell], workload: &OpenLoop, jobs: usize) -> Vec<CellOutput> {
    let work: Vec<_> = cells
        .iter()
        .map(|cell| {
            let cell = cell.clone();
            let workload = workload.clone();
            move || run_cell(&cell, &workload)
        })
        .collect();
    replay_sweep(work, jobs)
}

fn main() {
    let mut arrivals: usize = 400;
    let mut rate: f64 = 2.0;
    let mut seed: u64 = 11;
    let mut jobs: usize = 1;
    let mut smoke = false;
    let mut check = false;
    let mut trace_path: Option<String> = None;
    let mut obs_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--arrivals" => {
                arrivals = args.next().expect("--arrivals N").parse().expect("numeric --arrivals");
            }
            "--rate" => rate = args.next().expect("--rate R").parse().expect("numeric --rate"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("numeric --seed"),
            "--jobs" => jobs = args.next().expect("--jobs N").parse().expect("numeric --jobs"),
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--trace" => trace_path = Some(args.next().expect("--trace PATH")),
            "--obs" => obs_path = Some(args.next().expect("--obs PATH")),
            other => panic!("unknown argument: {other}"),
        }
    }
    if smoke {
        arrivals = 120;
    }

    let workload = OpenLoop::new(OpenLoopConfig {
        seed,
        arrivals,
        rate_per_sec: rate,
        ..OpenLoopConfig::default()
    });

    // Delay sweep: off, aggressive (fires on moderately slow reads),
    // default (fires only on genuinely spiked reads), conservative.
    let hedged = |delay_s: u64| HedgeConfig {
        enabled: true,
        delay: Duration::from_secs(delay_s),
        ..HedgeConfig::default()
    };
    let default_delay_s = HedgeConfig::default().delay.as_secs();
    let delays = if smoke { vec![default_delay_s] } else { vec![4, default_delay_s, 16] };
    let mut cells = Vec::new();
    for spikes in [false, true] {
        let plan = if spikes { "spikes" } else { "quiet" };
        cells.push(Cell {
            label: format!("{plan}/unhedged"),
            hedge: HedgeConfig::default(),
            spikes,
        });
        for &d in &delays {
            cells.push(Cell { label: format!("{plan}/hedge-{d}s"), hedge: hedged(d), spikes });
        }
    }

    header(&format!(
        "tail-latency sweep: {arrivals} arrivals @ {rate}/s, seed {seed}, jobs {jobs}, \
         {} cells",
        cells.len()
    ));

    let outputs = run_sweep(&cells, &workload, jobs);

    println!(
        "\n{:18} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>6} {:>9}",
        "cell", "p50 s", "p99 s", "p999 s", "max s", "fired", "won", "cancel", "prov-ops"
    );
    for o in &outputs {
        let t = &o.timed;
        println!(
            "{:18} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6} {:>6} {:>6} {:>9}",
            o.label,
            t.overall.quantile(0.5).as_secs_f64(),
            t.overall.quantile(0.99).as_secs_f64(),
            t.overall.quantile(0.999).as_secs_f64(),
            t.overall.max().as_secs_f64(),
            o.hedges_fired,
            o.hedges_won,
            o.hedges_cancelled,
            t.provider_ops,
        );
    }

    // Headline: the default-delay hedge vs unhedged, under spikes.
    let unhedged = outputs.iter().find(|o| o.label == "spikes/unhedged").expect("cell exists");
    let hedged_default = outputs
        .iter()
        .find(|o| o.label == format!("spikes/hedge-{default_delay_s}s"))
        .expect("cell exists");
    let p99_un = unhedged.timed.overall.quantile(0.99).as_secs_f64();
    let p99_h = hedged_default.timed.overall.quantile(0.99).as_secs_f64();
    let speedup = p99_un / p99_h.max(1e-9);
    let extra_ops =
        hedged_default.timed.provider_ops as f64 / unhedged.timed.provider_ops.max(1) as f64 - 1.0;
    println!(
        "\nheadline (spikes, {default_delay_s}s hedge): p99 {p99_un:.2}s -> {p99_h:.2}s ({speedup:.2}x), \
         provider ops +{:.1}%",
        extra_ops * 100.0
    );

    // Quiet-fleet hedges should never fire at the default delay: it sits
    // above the worst calibrated quiet fetch.
    let quiet_hedged = outputs
        .iter()
        .find(|o| o.label == format!("quiet/hedge-{default_delay_s}s"))
        .expect("cell exists");
    assert_eq!(quiet_hedged.hedges_fired, 0, "no hedges on a quiet fleet at the default delay");

    if check {
        let fingerprint = |outs: &[CellOutput]| -> Vec<(String, String, Vec<u8>)> {
            outs.iter()
                .map(|o| (o.label.clone(), format!("{:?}", o.timed), o.trace.clone()))
                .collect()
        };
        let base = fingerprint(&outputs);
        for j in [1usize, 2] {
            let alt = fingerprint(&run_sweep(&cells, &workload, j));
            for (a, b) in base.iter().zip(&alt) {
                assert_eq!(a.0, b.0, "cell order diverged at --jobs {j}");
                assert_eq!(a.1, b.1, "stats diverged for {} at --jobs {j}", a.0);
                assert_eq!(a.2, b.2, "trace diverged for {} at --jobs {j}", a.0);
            }
        }
        println!("check: stats + traces byte-identical across --jobs {jobs}/1/2 ✓");
    }

    if let Some(path) = &trace_path {
        // The headline cell's trace: spiked plan, default hedge delay.
        std::fs::write(path, &hedged_default.trace).expect("write trace file");
        println!(
            "trace: {} records ({:.1} KB) -> {path}",
            hedged_default.trace.iter().filter(|b| **b == b'\n').count(),
            hedged_default.trace.len() as f64 / 1e3
        );
    }

    if let Some(path) = &obs_path {
        // Observatory view of the same headline cell.
        let text = std::str::from_utf8(&hedged_default.trace).expect("trace is utf-8");
        let obs = hyrd::observatory::from_trace(text, jobs).expect("parse tail trace");
        let obs_report = obs.report();
        std::fs::write(path, obs_report.render()).expect("write observatory report");
        println!(
            "observatory: {} provider(s), {} exposed file(s) -> {path}",
            obs_report.providers.len(),
            obs_report.files.len()
        );
    }

    summary::merge_into(
        &summary::repo_root_file("BENCH_tail.json"),
        &[
            ("arrivals", serde_json::json!(arrivals)),
            ("rate_per_sec", serde_json::json!(rate)),
            ("hedge_delay_s", serde_json::json!(default_delay_s)),
            ("spike_p99_unhedged_s", summary::round1(p99_un)),
            ("spike_p99_hedged_s", summary::round1(p99_h)),
            ("spike_p99_speedup", summary::round1(speedup)),
            (
                "spike_p999_unhedged_s",
                summary::round1(unhedged.timed.overall.quantile(0.999).as_secs_f64()),
            ),
            (
                "spike_p999_hedged_s",
                summary::round1(hedged_default.timed.overall.quantile(0.999).as_secs_f64()),
            ),
            ("extra_provider_ops_pct", summary::round1(extra_ops * 100.0)),
            ("hedges_fired", serde_json::json!(hedged_default.hedges_fired)),
            ("hedges_won", serde_json::json!(hedged_default.hedges_won)),
        ],
    );
}
