//! Shared machinery for the Figure 6 family of experiments (scheme
//! latency under PostMark, normal state and Azure-outage state), reused
//! by the threshold sweep and the ablation binaries.

use hyrd::driver::{replay_sweep, replay_with_state, ReplayOptions, ReplayState, ReplayStats};
use hyrd::prelude::*;
use hyrd_baselines::{DepSky, DuraCloud, NcCloudLite, Racs, SingleCloud};
use hyrd_workloads::{FsOp, PostMark, PostMarkConfig};

/// Operating state of the Figure 6 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// All providers up.
    Normal,
    /// Windows Azure forced off-line before the transaction phase — the
    /// paper's outage emulation (§IV-C).
    AzureOutage,
}

/// The PostMark shape the paper describes: pool of files 1 KB–100 MB.
pub fn paper_postmark(seed: u64) -> PostMarkConfig {
    PostMarkConfig { initial_files: 60, transactions: 240, seed, ..PostMarkConfig::default() }
}

/// Splits a PostMark stream into (pool-initialization, transactions).
pub fn split_ops(config: &PostMarkConfig) -> (Vec<FsOp>, Vec<FsOp>) {
    let (ops, _) = PostMark::new(config.clone()).generate();
    let init = config.initial_files;
    let head = ops[..init].to_vec();
    let tail = ops[init..].to_vec();
    (head, tail)
}

/// Runs one scheme through the Figure 6 methodology on a fresh fleet:
/// build, load the pool in the normal state, optionally fail Azure, then
/// measure the transaction phase.
pub fn run_scheme<F>(make: F, mode: Mode, config: &PostMarkConfig) -> ReplayStats
where
    F: FnOnce(&Fleet) -> Box<dyn Scheme>,
{
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let mut scheme = make(&fleet);
    let (init, txns) = split_ops(config);
    let opts = ReplayOptions::default();
    let mut state = ReplayState::default();
    let _ = replay_with_state(scheme.as_mut(), &init, &clock, &opts, &mut state);
    if mode == Mode::AzureOutage {
        fleet.by_name("Windows Azure").expect("standard fleet").force_down();
    }
    replay_with_state(scheme.as_mut(), &txns, &clock, &opts, &mut state)
}

/// One row of the Figure 6 grid: scheme name, normal-state stats, and
/// outage-state stats (absent for the single-cloud baseline, whose
/// outage *is* the outage).
pub type LineupRow = (&'static str, ReplayStats, Option<ReplayStats>);

/// Runs a whole lineup through the Figure 6 methodology as independent
/// (scheme, mode) cells on `jobs` worker threads (`0` = one per core).
///
/// Each cell owns a fresh fleet and virtual clock, so cells share no
/// state and the grid is embarrassingly parallel; [`replay_sweep`]
/// collects results in submission order, which makes the output —
/// including the JSON record — byte-identical for every job count.
pub fn run_lineup_sweep(
    schemes: Vec<(&'static str, fn(&Fleet) -> Box<dyn Scheme>)>,
    config: &PostMarkConfig,
    jobs: usize,
) -> Vec<LineupRow> {
    let mut cells: Vec<Box<dyn FnOnce() -> ReplayStats + Send>> = Vec::new();
    let mut shape = Vec::new();
    for (name, make) in schemes {
        let cfg = config.clone();
        cells.push(Box::new(move || run_scheme(make, Mode::Normal, &cfg)));
        let has_outage = name != "Amazon S3";
        if has_outage {
            let cfg = config.clone();
            cells.push(Box::new(move || run_scheme(make, Mode::AzureOutage, &cfg)));
        }
        shape.push((name, has_outage));
    }
    let mut results = replay_sweep(cells, jobs).into_iter();
    shape
        .into_iter()
        .map(|(name, has_outage)| {
            let normal = results.next().expect("one result per cell");
            let outage = has_outage.then(|| results.next().expect("one result per cell"));
            (name, normal, outage)
        })
        .collect()
}

/// The scheme lineup of Figure 6 (name, factory).
pub fn lineup() -> Vec<(&'static str, fn(&Fleet) -> Box<dyn Scheme>)> {
    vec![
        ("Amazon S3", |f| Box::new(SingleCloud::amazon_s3(f).expect("fleet has S3"))),
        ("DuraCloud", |f| Box::new(DuraCloud::standard(f).expect("standard fleet"))),
        ("RACS", |f| Box::new(Racs::new(f).expect("4-provider fleet"))),
        ("HyRD", |f| Box::new(Hyrd::new(f, HyrdConfig::default()).expect("valid default config"))),
    ]
}

/// Extended lineup including the schemes beyond the paper's Figure 6,
/// plus HyRD with the Figure 2 hot-file overlap enabled (frequently read
/// large files gain a whole-object copy on the performance tier).
pub fn extended_lineup() -> Vec<(&'static str, fn(&Fleet) -> Box<dyn Scheme>)> {
    let mut v = lineup();
    v.push(("HyRD+hot", |f| {
        let mut cfg = HyrdConfig::default();
        cfg.hot_read_threshold = Some(2);
        Box::new(Hyrd::new(f, cfg).expect("valid config"))
    }));
    v.push(("DepSky", |f| Box::new(DepSky::new(f).expect("4-provider fleet"))));
    v.push(("NCCloud-lite", |f| Box::new(NcCloudLite::new(f).expect("4-provider fleet"))));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ops_partitions_the_stream() {
        let cfg = paper_postmark(1);
        let (init, txns) = split_ops(&cfg);
        assert_eq!(init.len(), cfg.initial_files);
        assert!(init.iter().all(|o| matches!(o, FsOp::Create { .. })));
        assert!(!txns.is_empty());
    }

    #[test]
    fn s3_baseline_runs_clean_in_normal_mode() {
        let mut cfg = paper_postmark(2);
        cfg.initial_files = 10;
        cfg.transactions = 30;
        let stats =
            run_scheme(|f| Box::new(SingleCloud::amazon_s3(f).unwrap()), Mode::Normal, &cfg);
        assert_eq!(stats.errors, 0);
        assert!(stats.overall.count() > 30);
        assert_eq!(stats.verify_failures, 0);
    }

    #[test]
    fn lineup_sweep_matches_sequential_runs_for_any_job_count() {
        let mut cfg = paper_postmark(4);
        cfg.initial_files = 8;
        cfg.transactions = 20;
        let schemes = || lineup().into_iter().take(2).collect::<Vec<_>>();
        let sequential: Vec<_> = schemes()
            .into_iter()
            .map(|(name, make)| {
                let normal = run_scheme(make, Mode::Normal, &cfg);
                let outage =
                    (name != "Amazon S3").then(|| run_scheme(make, Mode::AzureOutage, &cfg));
                (name, normal, outage)
            })
            .collect();
        for jobs in [1, 3] {
            let swept = run_lineup_sweep(schemes(), &cfg, jobs);
            assert_eq!(swept, sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn coc_schemes_survive_the_outage_mode() {
        let mut cfg = paper_postmark(3);
        cfg.initial_files = 10;
        cfg.transactions = 30;
        for (name, make) in lineup().into_iter().skip(1) {
            let stats = run_scheme(make, Mode::AzureOutage, &cfg);
            assert_eq!(stats.errors, 0, "{name} errored during outage");
        }
    }
}
