//! Machine-readable bench baseline: `BENCH_gfec.json` at the repo root.
//!
//! Both Criterion bench binaries call into this module at the end of a
//! run (or immediately, when `BENCH_JSON_ONLY` is set) to record wall-
//! clock MB/s for the hot paths. The file is a flat JSON object so CI
//! and DESIGN.md can diff throughput across commits without parsing
//! Criterion's per-sample output.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Repo-root path of the bench baseline file.
pub fn bench_summary_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_gfec.json")
}

/// True when the caller asked for the quick JSON-only run (CI smoke).
pub fn json_only() -> bool {
    std::env::var_os("BENCH_JSON_ONLY").is_some()
}

/// Merges `entries` into the existing `BENCH_gfec.json` object (creating
/// the file if absent), so each bench binary contributes its own keys
/// without clobbering the other's.
pub fn merge(entries: &[(&str, serde_json::Value)]) {
    let path = bench_summary_path();
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(serde_json::Value::is_object)
        .unwrap_or_else(|| serde_json::json!({}));
    let obj = root.as_object_mut().expect("root is an object by construction");
    for (k, v) in entries {
        obj.insert((*k).to_string(), v.clone());
    }
    let body = serde_json::to_string_pretty(&root).expect("serialize bench summary");
    std::fs::write(&path, body + "\n").expect("write BENCH_gfec.json");
    println!("[bench summary merged into {}]", path.display());
}

/// Times `op` (which processes `bytes` per call) and returns MB/s.
///
/// One warmup call, then at least three timed iterations and at least
/// `min_runtime` of wall clock — enough that the quick CI smoke run
/// produces a number without being flaky about *having* one, while the
/// full run amortizes allocator noise.
pub fn throughput_mbps(bytes: usize, min_runtime: Duration, mut op: impl FnMut()) -> f64 {
    op();
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < 3 || start.elapsed() < min_runtime {
        op();
        iters += 1;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (bytes as f64 * iters as f64) / (1024.0 * 1024.0) / secs
}

/// Rounds a throughput to one decimal for stable-ish JSON diffs.
pub fn round1(v: f64) -> serde_json::Value {
    serde_json::json!((v * 10.0).round() / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_finite() {
        let mut sink = 0u64;
        let v = throughput_mbps(1 << 10, Duration::from_millis(1), || sink = sink.wrapping_add(1));
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn round1_rounds() {
        assert_eq!(round1(123.456), serde_json::json!(123.5));
    }
}
