//! Machine-readable bench baselines: `BENCH_gfec.json` and
//! `BENCH_replay.json` at the repo root.
//!
//! The Criterion bench binaries call into this module at the end of a
//! run (or immediately, when `BENCH_JSON_ONLY` is set) to record wall-
//! clock MB/s for the hot paths. Each file is a flat JSON object so CI
//! and DESIGN.md can diff throughput across commits without parsing
//! Criterion's per-sample output.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Repo-root path of a named bench baseline file.
pub fn repo_root_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

/// Repo-root path of the GF/EC bench baseline file.
pub fn bench_summary_path() -> PathBuf {
    repo_root_file("BENCH_gfec.json")
}

/// Repo-root path of the replay-throughput baseline file.
pub fn replay_summary_path() -> PathBuf {
    repo_root_file("BENCH_replay.json")
}

/// True when the caller asked for the quick JSON-only run (CI smoke).
pub fn json_only() -> bool {
    std::env::var_os("BENCH_JSON_ONLY").is_some()
}

/// Merges `entries` into the existing `BENCH_gfec.json` object (creating
/// the file if absent), so each bench binary contributes its own keys
/// without clobbering the other's.
pub fn merge(entries: &[(&str, serde_json::Value)]) {
    merge_into(&bench_summary_path(), entries);
}

/// [`merge`] against an arbitrary baseline file.
pub fn merge_into(path: &Path, entries: &[(&str, serde_json::Value)]) {
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(serde_json::Value::is_object)
        .unwrap_or_else(|| serde_json::json!({}));
    let obj = root.as_object_mut().expect("root is an object by construction");
    for (k, v) in entries {
        obj.insert((*k).to_string(), v.clone());
    }
    let body = serde_json::to_string_pretty(&root).expect("serialize bench summary");
    std::fs::write(path, body + "\n").expect("write bench summary");
    println!("[bench summary merged into {}]", path.display());
}

/// Times `op` (which processes `bytes` per call) and returns MB/s.
///
/// One warmup call, then at least three timed iterations and at least
/// `min_runtime` of wall clock — enough that the quick CI smoke run
/// produces a number without being flaky about *having* one, while the
/// full run amortizes allocator noise.
pub fn throughput_mbps(bytes: usize, min_runtime: Duration, mut op: impl FnMut()) -> f64 {
    op();
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < 3 || start.elapsed() < min_runtime {
        op();
        iters += 1;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (bytes as f64 * iters as f64) / (1024.0 * 1024.0) / secs
}

/// Rounds a throughput to one decimal for stable-ish JSON diffs.
pub fn round1(v: f64) -> serde_json::Value {
    serde_json::json!((v * 10.0).round() / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_finite() {
        let mut sink = 0u64;
        let v = throughput_mbps(1 << 10, Duration::from_millis(1), || sink = sink.wrapping_add(1));
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn round1_rounds() {
        assert_eq!(round1(123.456), serde_json::json!(123.5));
    }
}
