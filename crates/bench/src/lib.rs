//! Shared harness plumbing for the figure/table binaries.
//!
//! Every binary prints the series the paper plots *and* writes a JSON
//! record under `target/experiments/` so EXPERIMENTS.md can be refreshed
//! mechanically.

use std::io::Write;
use std::path::PathBuf;

use serde::Serialize;

pub mod fig6;
pub mod summary;

/// Directory experiment outputs land in.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes an experiment's JSON record.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create experiment file");
    let body = serde_json::to_string_pretty(value).expect("serialize experiment");
    f.write_all(body.as_bytes()).expect("write experiment");
    println!("\n[written {}]", path.display());
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Parses `--<flag> N` from the process arguments, falling back to a
/// default. Shared by the binaries that take `--jobs`, `--weeks`, …
pub fn flag_usize(flag: &str, default: usize) -> usize {
    let needle = format!("--{flag}");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == needle {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{needle} expects an unsigned integer"));
        }
        if let Some(v) = a.strip_prefix(&format!("{needle}=")) {
            return v.parse().unwrap_or_else(|_| panic!("{needle} expects an unsigned integer"));
        }
    }
    default
}

/// Formats seconds human-readably.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// A labelled series for JSON output.
#[derive(Debug, Serialize)]
pub struct Series {
    /// Series label (scheme or provider name).
    pub label: String,
    /// Values in x-axis order.
    pub values: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_exists_and_json_roundtrips() {
        let s = Series { label: "t".into(), values: vec![1.0, 2.0] };
        write_json("self-test", &s);
        let path = experiments_dir().join("self-test.json");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"label\": \"t\""));
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500s");
    }
}
