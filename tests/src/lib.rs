//! Shared helpers for the cross-crate integration tests.

use hyrd::prelude::*;
use hyrd_baselines::{DepSky, DuraCloud, NcCloudLite, Racs, SingleCloud};

/// Every scheme in the repository, built fresh over the given fleet.
pub fn all_schemes(fleet: &Fleet) -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(SingleCloud::amazon_s3(fleet).expect("fleet has S3")),
        Box::new(DuraCloud::standard(fleet).expect("standard fleet")),
        Box::new(Racs::new(fleet).expect("4-provider fleet")),
        Box::new(DepSky::new(fleet).expect("4-provider fleet")),
        Box::new(NcCloudLite::new(fleet).expect("4-provider fleet")),
        Box::new(Hyrd::new(fleet, HyrdConfig::default()).expect("valid default config")),
    ]
}

/// A fresh standard fleet + clock.
pub fn fresh_fleet() -> (SimClock, Fleet) {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    (clock, fleet)
}
