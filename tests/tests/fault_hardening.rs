//! Hardened-dispatcher integration: corruption detection feeding
//! degraded reads and scrub repair, circuit breakers tripping and
//! recovering on the virtual clock, retry absorption, and torn-write
//! quarantine via the update log. No wall-clock sleeps anywhere — every
//! time-dependent assertion advances the shared [`SimClock`].

use hyrd::driver::synth_content;
use hyrd::health::BreakerSettings;
use hyrd::prelude::*;
use hyrd_cloudsim::FaultPlan;
use hyrd_gcsapi::ObjectKey;
use integration_tests::fresh_fleet;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

/// A fragment's physical key, as the dispatcher names it.
fn fragment_key(path: &str, index: usize) -> ObjectKey {
    let base = hyrd::scheme::object_name(path);
    ObjectKey::new(Fleet::CONTAINER, format!("{base}.f{index}"))
}

#[test]
fn corrupted_fragment_is_masked_by_degraded_read_then_scrub_repairs_it() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let data = synth_content("/media/f", 0, 3 * MB);
    h.create_file("/media/f", &data).expect("up");

    // Flip one stored bit of fragment 0, wherever it lives.
    let key0 = fragment_key("/media/f", 0);
    fleet
        .providers()
        .iter()
        .find(|p| p.corrupt_object(&key0, 4242))
        .expect("some provider stores fragment 0");

    // The read detects the mismatch, drops the fragment as an erasure
    // and decodes from the three intact ones — bytes come back right.
    let (bytes, _) = h.read_file("/media/f").expect("degraded read masks corruption");
    assert_eq!(&bytes[..], &data[..]);
    assert!(h.fault_counters().corrupt_gets >= 1, "the corruption was observed, not lucked past");

    // Scrub finds the rotten fragment at rest and rewrites it.
    let (scrub, _) = h.scrub().expect("scrub runs");
    assert!(scrub.corrupt_detected >= 1, "{scrub:?}");
    assert!(scrub.repaired >= 1, "{scrub:?}");
    assert_eq!(scrub.unrecoverable, 0, "{scrub:?}");

    // After repair: clean re-read, and a second pass finds nothing.
    let (bytes, _) = h.read_file("/media/f").expect("clean");
    assert_eq!(&bytes[..], &data[..]);
    let (again, _) = h.scrub().expect("scrub runs");
    assert_eq!(again.corrupt_detected, 0, "{again:?}");
    assert_eq!(again.repaired, 0, "{again:?}");
}

#[test]
fn breaker_trips_on_persistent_faults_and_recovers_on_the_virtual_clock() {
    let (clock, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let aliyun = fleet.by_name("Aliyun").expect("standard fleet");

    // Seed one healthy file, then make Aliyun fail every op.
    h.create_file("/pre", &synth_content("/pre", 0, 4 * KB)).expect("up");
    aliyun.set_flakiness(1.0);

    for i in 0..10u32 {
        let path = format!("/storm/f{i}");
        // Azure still takes the replica; Aliyun's copy goes to the log.
        h.create_file(&path, &synth_content(&path, 0, 4 * KB)).expect("one replica suffices");
    }
    let counters = h.fault_counters();
    assert!(counters.retries > 0, "the retry layer fought the storm first");
    assert!(h.health().trips() >= 1, "persistent failures must trip the breaker");
    assert!(
        counters.breaker_rejections > 0,
        "once open, the breaker sheds calls instead of burning retries"
    );
    assert!(h.pending_log_len() > 0, "rejected writes are logged for replay");

    // Reads never depend on the sick provider.
    for i in 0..10u32 {
        let path = format!("/storm/f{i}");
        let (got, _) = h.read_file(&path).expect("healthy replica serves");
        assert_eq!(&got[..], &synth_content(&path, 0, 4 * KB)[..]);
    }

    // The provider heals; after the cooldown the half-open probe closes
    // the breaker — purely by advancing the virtual clock.
    aliyun.set_flakiness(0.0);
    clock.advance(BreakerSettings::default().cooldown + std::time::Duration::from_secs(1));
    h.create_file("/after", &synth_content("/after", 0, 4 * KB)).expect("up");
    assert!(
        !h.health().is_open(aliyun.id(), clock.now()),
        "a successful half-open probe must close the breaker"
    );

    // Consistency update drains everything the storm deferred.
    h.recover_provider(aliyun.id()).expect("provider is healthy again");
    assert_eq!(h.pending_log_len(), 0);
    let (got, _) = h.read_file("/storm/f3").expect("up");
    assert_eq!(&got[..], &synth_content("/storm/f3", 0, 4 * KB)[..]);
}

#[test]
fn moderate_flakiness_is_absorbed_by_backoff() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    fleet.by_name("Windows Azure").expect("standard fleet").set_flakiness(0.25);

    let mut audit = Vec::new();
    for i in 0..20u32 {
        let path = format!("/flaky/f{i}");
        let data = synth_content(&path, 0, 8 * KB);
        h.create_file(&path, &data).expect("at worst one replica is deferred");
        audit.push((path, data));
    }
    assert!(h.fault_counters().retries > 0, "25% flakiness must force some retries");
    for (path, want) in &audit {
        let (got, _) = h.read_file(path).expect("up");
        assert_eq!(&got[..], &want[..], "{path}");
    }
}

#[test]
fn torn_puts_are_quarantined_by_the_log_until_replay() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let azure = fleet.by_name("Windows Azure").expect("standard fleet");
    azure.set_fault_plan(FaultPlan::quiet().with_seed(7).with_torn_puts(1000));

    let data = synth_content("/torn/x", 0, 8 * KB);
    h.create_file("/torn/x", &data).expect("the other replica lands");
    assert!(h.pending_log_len() > 0, "the torn target is marked stale");

    // Azure holds a torn prefix, but reads skip pending replicas.
    let (got, _) = h.read_file("/torn/x").expect("up");
    assert_eq!(&got[..], &data[..]);

    // Faults end; the consistency update rewrites the full object.
    azure.set_fault_plan(FaultPlan::quiet());
    h.recover_provider(azure.id()).expect("replay lands");
    assert_eq!(h.pending_log_len(), 0);
    let object = hyrd::scheme::object_name("/torn/x");
    let direct = azure.get(&ObjectKey::new(Fleet::CONTAINER, object)).expect("stored");
    assert_eq!(&direct.value[..], &data[..], "the replica is whole again after replay");
}
