//! Fault-injection torture: transient faults, flapping providers and
//! interleaved outages. The availability machinery must degrade
//! gracefully and converge — never corrupt.

use hyrd::driver::synth_content;
use hyrd::prelude::*;
use hyrd_gcsapi::{CloudStorage, RetryPolicy};
use integration_tests::fresh_fleet;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

#[test]
fn transient_faults_are_retryable_at_the_middleware() {
    let (_, fleet) = fresh_fleet();
    let p = fleet.by_name("Aliyun").expect("standard fleet");
    p.set_flakiness(0.4);

    let key = hyrd_gcsapi::ObjectKey::new(Fleet::CONTAINER, "flaky");
    let policy = RetryPolicy { max_attempts: 8, ..RetryPolicy::default() };
    let mut failures = 0;
    for i in 0..50 {
        let data = bytes::Bytes::from(vec![i as u8; 256]);
        if policy.run(|| p.put(&key, data.clone())).is_err() {
            failures += 1;
        }
    }
    // 0.4^8 per op — 50 ops should essentially always succeed.
    assert_eq!(failures, 0, "8 retries must absorb 40% flakiness");
    p.set_flakiness(0.0);
}

#[test]
fn provider_flapping_between_every_operation() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let victims = ["Amazon S3", "Windows Azure", "Aliyun", "Rackspace"];
    let mut audit: Vec<(String, Vec<u8>)> = Vec::new();

    for round in 0..12u32 {
        // A different provider is down each round.
        let victim = fleet.by_name(victims[round as usize % 4]).expect("standard fleet");
        victim.force_down();

        let path = format!("/flap/f{round}");
        let size = if round % 3 == 0 { 2 * MB } else { 8 * KB };
        let data = synth_content(&path, round, size);
        h.create_file(&path, &data).expect("three survivors suffice");
        audit.push((path, data));

        // Every earlier file still reads correctly under this outage.
        for (p, want) in &audit {
            let (got, _) = h.read_file(p).expect("single outage");
            assert_eq!(&got[..], &want[..], "{p} in round {round}");
        }

        // Victim returns and gets its consistency update immediately.
        victim.restore();
        h.recover_provider(victim.id()).expect("provider back");
    }
    assert_eq!(h.pending_log_len(), 0);
    assert_eq!(h.pending_dirty_fragments(), 0);
}

#[test]
fn recovery_with_a_second_provider_down_defers_what_it_cannot_rebuild() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");

    let a = fleet.by_name("Windows Azure").expect("standard fleet");
    a.force_down();
    let data = synth_content("/f", 0, 8 * KB);
    h.create_file("/f", &data).expect("survivors");
    let pending = h.pending_log_len();
    assert!(pending > 0);

    // Azure comes back but Aliyun is now down: the log replay still
    // completes (it only needs Azure itself).
    a.restore();
    fleet.by_name("Aliyun").expect("standard fleet").force_down();
    h.recover_provider(a.id()).expect("replay targets only Azure");
    assert_eq!(h.pending_log_len(), 0);

    // And the file reads from the freshly recovered replica.
    let (bytes, report) = h.read_file("/f").expect("replica up");
    assert_eq!(&bytes[..], &data[..]);
    assert_eq!(report.ops[0].provider, a.id());
}

#[test]
fn writes_fail_cleanly_when_too_many_providers_are_down() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");

    // RAID5(3+1) needs at least m=3 fragment targets for a large write.
    fleet.by_name("Amazon S3").expect("standard fleet").force_down();
    fleet.by_name("Rackspace").expect("standard fleet").force_down();
    let big = synth_content("/big", 0, 2 * MB);
    let err = h.create_file("/big", &big).expect_err("2 of 4 is below m=3");
    assert!(matches!(err, SchemeError::DataUnavailable { .. }));

    // The failed create must not leave a ghost entry behind.
    assert!(h.read_file("/big").is_err());
    assert_eq!(h.file_size("/big"), None);

    // Small writes (replication level 2) still succeed on the two
    // surviving performance providers.
    h.create_file("/small", &synth_content("/small", 0, 4 * KB)).expect("Aliyun + Azure are up");
}

#[test]
fn evaluator_reassessment_after_topology_change() {
    // If HyRD is rebuilt while a provider is down, the evaluator must
    // derive tiers from the survivors and still function.
    let (_, fleet) = fresh_fleet();
    fleet.by_name("Aliyun").expect("standard fleet").force_down();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let perf = h.evaluator().performance_tier();
    assert!(!perf.is_empty());
    assert!(perf.iter().all(|&id| fleet.get(id).expect("fleet member").name() != "Aliyun"));

    let data = synth_content("/f", 0, 8 * KB);
    h.create_file("/f", &data).expect("three providers suffice");
    let (bytes, _) = h.read_file("/f").expect("replica up");
    assert_eq!(&bytes[..], &data[..]);
}

#[test]
fn ghost_mode_and_real_mode_agree_on_every_report_metric() {
    // Ghost mode must change *only* the payload retention, never the
    // latency/cost accounting.
    let run = |ghost: bool| {
        let clock = SimClock::new();
        let fleet = Fleet::standard_four(clock.clone());
        if ghost {
            for p in fleet.providers() {
                p.set_ghost_mode(true);
            }
        }
        let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        let r1 = h.create_file("/a", &vec![7u8; 3 * MB]).expect("up");
        let r2 = h.read_file("/a").expect("up").1;
        (
            r1.latency,
            r1.op_count(),
            r1.bytes_in(),
            r2.latency,
            r2.op_count(),
            r2.bytes_out(),
            fleet.total_stored_bytes(),
        )
    };
    assert_eq!(run(false), run(true));
}
