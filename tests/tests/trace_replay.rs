//! Replaying a sampled Internet Archive day through the executable
//! schemes — connecting the cost-analysis trace (Figure 3/4) to the
//! latency machinery (Figure 6) at the request level.

use hyrd::driver::{replay, ReplayOptions};
use hyrd::prelude::*;
use hyrd_baselines::Racs;
use hyrd_workloads::{FsOp, IaTrace};
use integration_tests::fresh_fleet;

#[test]
fn an_archive_day_replays_clean_through_hyrd_and_racs() {
    let trace = IaTrace::synthesize(42);
    let ops = trace.sample_day_ops(5, 8e-6, 0xDA7);
    assert!(ops.len() > 40, "day sample has substance: {}", ops.len());

    for which in ["hyrd", "racs"] {
        let (clock, fleet) = fresh_fleet();
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut scheme: Box<dyn Scheme> = match which {
            "hyrd" => Box::new(Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config")),
            _ => Box::new(Racs::new(&fleet).expect("4-provider fleet")),
        };
        let stats = replay(scheme.as_mut(), &ops, &clock, &ReplayOptions::default());
        assert_eq!(stats.errors, 0, "{which}");
        assert_eq!(stats.verify_failures, 0, "{which}");
        assert_eq!(stats.overall.count(), ops.len(), "{which}");
    }
}

#[test]
fn archive_day_traffic_matches_the_aggregate_trace_mix() {
    // The sampled day's byte mix should reflect the Agrawal distribution
    // the cost model uses: most bytes in large files.
    let trace = IaTrace::synthesize(42);
    let ops = trace.sample_day_ops(0, 2e-5, 1);
    let sizes: Vec<u64> = ops
        .iter()
        .filter_map(|o| match o {
            FsOp::Create { size, .. } => Some(*size),
            _ => None,
        })
        .collect();
    let total: u64 = sizes.iter().sum();
    let large: u64 = sizes.iter().filter(|&&s| s > 1 << 20).sum();
    assert!(
        large as f64 / total as f64 > 0.7,
        "large files carry {:.0}% of bytes",
        large as f64 / total as f64 * 100.0
    );
}

#[test]
fn hyrd_beats_racs_on_the_archive_day_too() {
    // The Figure 6 conclusion is workload-robust: it also holds on the
    // read-heavy archive traffic, not just PostMark.
    let trace = IaTrace::synthesize(42);
    let ops = trace.sample_day_ops(2, 8e-6, 2);
    let mean = |make: Box<dyn FnOnce(&Fleet) -> Box<dyn Scheme>>| {
        let (clock, fleet) = fresh_fleet();
        for p in fleet.providers() {
            p.set_ghost_mode(true);
        }
        let mut scheme = make(&fleet);
        replay(scheme.as_mut(), &ops, &clock, &ReplayOptions::default())
            .mean_latency()
            .as_secs_f64()
    };
    let hyrd =
        mean(Box::new(|f| Box::new(Hyrd::new(f, HyrdConfig::default()).expect("valid config"))));
    let racs = mean(Box::new(|f| Box::new(Racs::new(f).expect("4p"))));
    assert!(hyrd < racs, "HyRD {hyrd:.2}s vs RACS {racs:.2}s on archive traffic");
}
