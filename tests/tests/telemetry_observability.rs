//! End-to-end telemetry: every instrumentation site on the request path
//! demonstrated against the ring-buffer / JSONL sinks, plus the
//! determinism guarantee (same-seed runs emit byte-identical traces).
//! All timestamps come from the virtual [`SimClock`]; no wall-clock
//! values ever reach a trace record.

use std::time::Duration;

use hyrd::driver::synth_content;
use hyrd::health::BreakerSettings;
use hyrd::prelude::*;
use hyrd_cloudsim::FaultPlan;
use hyrd_gcsapi::RetryPolicy;
use hyrd_telemetry::{Collector, SharedBuf, TraceRecord};
use integration_tests::fresh_fleet;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

fn secs(v: u64) -> Duration {
    Duration::from_secs(v)
}

/// A collector with an in-memory ring, stamped by the fleet's clock.
fn ring_collector(clock: &SimClock) -> Collector {
    Collector::builder(clock.clone()).ring(8192).build()
}

#[test]
fn breaker_walks_closed_open_half_open_closed_in_the_trace() {
    let (clock, fleet) = fresh_fleet();
    let telemetry = ring_collector(&clock);
    let config = HyrdConfig {
        breaker: BreakerSettings { trip_after: 2, cooldown: secs(30) },
        // Single-attempt calls: each burst failure lands on the breaker
        // immediately, keeping the transition schedule exact.
        retry: RetryPolicy::none(),
        ..HyrdConfig::default()
    };
    let mut h = Hyrd::with_telemetry(&fleet, config, telemetry.clone()).expect("valid config");

    // Construction probed a healthy fleet; now Azure starts failing
    // every call for the next 60 virtual seconds.
    let azure = fleet.by_name("Windows Azure").expect("standard fleet");
    azure.set_fault_plan(FaultPlan::quiet().with_seed(11).with_burst(
        Duration::ZERO,
        secs(60),
        1000,
    ));

    // Each small create writes the object + metadata to both replica
    // targets; two Azure failures trip the two-strike breaker while
    // Aliyun keeps every write live (no desperation resets).
    h.create_file("/a", &synth_content("/a", 0, 4 * KB)).expect("other replica lands");
    h.create_file("/b", &synth_content("/b", 0, 4 * KB)).expect("other replica lands");
    h.create_file("/c", &synth_content("/c", 0, 4 * KB)).expect("other replica lands");

    // Past the burst and the cooldown: the next write admits a half-open
    // probe on Azure, which succeeds and closes the circuit.
    clock.advance(secs(70));
    h.create_file("/d", &synth_content("/d", 0, 4 * KB)).expect("up");

    let azure_id = u64::from(azure.id().0);
    let transitions: Vec<(String, String)> = telemetry
        .ring_records()
        .iter()
        .filter(|r| r.is_event("breaker.transition"))
        .filter(|r| r.field_u64("provider") == Some(azure_id))
        .map(|r| {
            (
                r.field_str("from").expect("from field").to_string(),
                r.field_str("to").expect("to field").to_string(),
            )
        })
        .collect();
    assert_eq!(
        transitions,
        vec![
            ("closed".to_string(), "open".to_string()),
            ("open".to_string(), "half_open".to_string()),
            ("half_open".to_string(), "closed".to_string()),
        ],
        "the breaker must walk the exact textbook sequence"
    );

    // Open-circuit writes were shed, and the shedding is in the trace.
    let rejects = telemetry
        .ring_records()
        .iter()
        .filter(|r| r.is_event("breaker.reject"))
        .filter(|r| r.field_str("provider") == Some("Windows Azure"))
        .count();
    assert!(rejects >= 1, "open breaker must reject at least one write");
    assert_eq!(telemetry.counter("breaker.transitions"), 3);
}

#[test]
fn crud_and_ec_spans_cover_the_request_path() {
    let (clock, fleet) = fresh_fleet();
    let telemetry = ring_collector(&clock);
    let mut h =
        Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone()).expect("valid");

    h.create_file("/small", &synth_content("/small", 0, 8 * KB)).expect("up");
    h.create_file("/big", &synth_content("/big", 0, 2 * MB)).expect("up");
    h.read_file("/small").expect("up");
    h.read_file("/big").expect("up");
    h.update_file("/big", 4096, &synth_content("/big", 1, 16 * KB)).expect("up");
    h.list_dir("/").expect("up");
    h.delete_file("/small").expect("up");

    let records = telemetry.ring_records();
    let span_names: Vec<&str> = records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::SpanStart { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for want in
        ["setup.assess", "create_file", "read_file", "update_file", "delete_file", "list_dir"]
    {
        assert!(span_names.contains(&want), "missing span {want} in {span_names:?}");
    }
    // Erasure-path inner spans, labeled per provider where applicable.
    assert!(span_names.iter().any(|n| *n == "ec.encode"), "{span_names:?}");
    assert!(span_names.iter().any(|n| *n == "ec.decode"), "{span_names:?}");
    assert!(span_names.iter().any(|n| *n == "ec.update"), "{span_names:?}");
    assert!(span_names.iter().any(|n| n.starts_with("put_fragment[")), "{span_names:?}");
    assert!(span_names.iter().any(|n| n.starts_with("fetch_fragment[")), "{span_names:?}");
    assert!(span_names.iter().any(|n| n.starts_with("put_replica[")), "{span_names:?}");
    assert!(span_names.iter().any(|n| n.starts_with("fetch_replica[")), "{span_names:?}");

    // Provider ops carry kind/bytes/priced cost stamped by the sim.
    let op =
        records.iter().find(|r| r.is_event("provider.op")).expect("providers must trace their ops");
    assert!(op.field_str("op").is_some());
    assert!(op.field_str("provider").is_some());

    // Spans nest: every ec.encode start has a parent (create_file).
    let encode_parented = records.iter().any(|r| {
        matches!(r, TraceRecord::SpanStart { name, parent: Some(_), .. } if name == "ec.encode")
    });
    assert!(encode_parented, "ec.encode must nest under the create span");
}

#[test]
fn retry_backoffs_are_traced_per_attempt() {
    let (clock, fleet) = fresh_fleet();
    let telemetry = ring_collector(&clock);
    let mut h =
        Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone()).expect("valid");
    let azure = fleet.by_name("Windows Azure").expect("standard fleet");
    azure.set_fault_plan(FaultPlan::quiet().with_seed(3).with_burst(
        Duration::ZERO,
        secs(600),
        1000,
    ));

    h.create_file("/r", &synth_content("/r", 0, 4 * KB)).expect("other replica lands");

    let backoffs: Vec<u64> = telemetry
        .ring_records()
        .iter()
        .filter(|r| r.is_event("retry.backoff"))
        .filter(|r| r.field_str("provider") == Some("Windows Azure"))
        .map(|r| r.field_u64("attempt").expect("attempt field"))
        .collect();
    // Default policy: 3 attempts per call, so 2 sleeps; attempts count
    // up from 1 within each guarded call.
    assert!(backoffs.len() >= 2, "burst must force backoffs: {backoffs:?}");
    assert_eq!(&backoffs[..2], &[1, 2]);
    assert!(telemetry.counter("retry.backoffs[Windows Azure]") >= 2);
    // Backoff sleeps advance the virtual clock, never the wall clock.
    assert!(clock.now() >= Duration::from_millis(200));
}

#[test]
fn scrub_traces_corruption_and_repair() {
    let (clock, fleet) = fresh_fleet();
    let telemetry = ring_collector(&clock);
    let mut h =
        Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone()).expect("valid");
    let data = synth_content("/f", 0, 8 * KB);
    h.create_file("/f", &data).expect("up");

    let object = hyrd::scheme::object_name("/f");
    let key = hyrd_gcsapi::ObjectKey::new(Fleet::CONTAINER, object.clone());
    fleet
        .providers()
        .iter()
        .find(|p| p.corrupt_object(&key, 12345))
        .expect("some provider holds a replica");

    let (report, _) = h.scrub().expect("scrub runs");
    assert_eq!(report.repaired, 1);

    let records = telemetry.ring_records();
    let corrupt = records
        .iter()
        .find(|r| r.is_event("scrub.corrupt"))
        .expect("scrub must trace the mismatch");
    assert_eq!(corrupt.field_str("object"), Some(object.as_str()));
    let repair =
        records.iter().find(|r| r.is_event("scrub.repair")).expect("scrub must trace the rewrite");
    assert_eq!(repair.field_str("object"), Some(object.as_str()));
    assert_eq!(telemetry.counter("scrub.corruptions"), 1);
    assert_eq!(telemetry.counter("scrub.repairs"), 1);
}

#[test]
fn degraded_reads_and_recovery_are_traced() {
    let (clock, fleet) = fresh_fleet();
    let telemetry = ring_collector(&clock);
    let mut h =
        Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone()).expect("valid");
    let data = synth_content("/big", 0, 3 * MB);
    h.create_file("/big", &data).expect("up");
    h.create_file("/small", &synth_content("/small", 0, 4 * KB)).expect("up");

    // One fragment provider (also a replica holder) goes dark: large
    // reads run degraded, small writes miss a replica.
    let victim = fleet.by_name("Windows Azure").expect("standard fleet");
    victim.force_down();
    let (bytes, _) = h.read_file("/big").expect("degraded read reconstructs");
    assert_eq!(&bytes[..], &data[..]);
    h.update_file("/small", 0, &synth_content("/small", 1, KB)).expect("live replica takes it");

    let degraded = telemetry
        .ring_records()
        .iter()
        .filter(|r| r.is_event("read.degraded"))
        .filter(|r| r.field_str("path") == Some("/big"))
        .count();
    assert!(degraded >= 1, "the degraded read must be marked");
    assert!(telemetry.counter("read.degraded") >= 1);

    // The outage ends; the consistency update drains the log and says so.
    victim.restore();
    let (report, _) = h.recover_provider(victim.id()).expect("replay lands");
    assert!(report.puts_replayed >= 1);
    let replay = telemetry
        .ring_records()
        .iter()
        .find(|r| r.is_event("recovery.replay"))
        .cloned()
        .expect("recovery must trace its replay");
    assert_eq!(replay.field_str("provider"), Some("Windows Azure"));
    assert!(replay.field_u64("puts").expect("puts field") >= 1);
}

#[test]
fn same_seed_runs_emit_byte_identical_traces() {
    fn run(seed: u64) -> Vec<u8> {
        let clock = SimClock::new();
        let fleet = Fleet::standard_four(clock.clone());
        let buf = SharedBuf::new();
        let telemetry = Collector::builder(clock.clone()).jsonl(buf.clone()).ring(64).build();
        for p in fleet.providers() {
            p.set_fault_plan(FaultPlan::chaos(seed, secs(3600)));
        }
        let mut h =
            Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone()).expect("valid");
        for i in 0..8u32 {
            let path = format!("/d/f{i}");
            let size = if i % 3 == 0 { 2 * MB } else { 8 * KB };
            let _ = h.create_file(&path, &synth_content(&path, 0, size));
            clock.advance(secs(120));
        }
        for i in 0..8u32 {
            let path = format!("/d/f{i}");
            let _ = h.read_file(&path);
            let _ = h.update_file(&path, 0, &synth_content(&path, 1, KB));
            clock.advance(secs(120));
        }
        let _ = h.scrub();
        telemetry.flush();
        buf.contents()
    }

    let a = run(42);
    let b = run(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, same virtual clock => byte-identical traces");
    let c = run(43);
    assert_ne!(a, c, "a different fault schedule must change the trace");
}

#[test]
fn disabled_collector_stays_silent_end_to_end() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid");
    assert!(!h.telemetry().enabled());
    h.create_file("/x", &synth_content("/x", 0, 2 * MB)).expect("up");
    h.read_file("/x").expect("up");
    assert!(h.telemetry().ring_records().is_empty());
    assert_eq!(h.telemetry().metrics(), hyrd::telemetry::MetricsSnapshot::default());
    assert!(h.telemetry().summary().is_empty());
}
