//! Concurrency torture: many clients hammering the same provider fleet
//! from real threads. The providers are shared state (`Arc<SimProvider>`
//! behind locks and atomics); these tests are what make the "data-race
//! freedom" story more than a compiler promise.

use crossbeam::channel;

use hyrd::driver::synth_content;
use hyrd::prelude::*;
use hyrd_gcsapi::CloudStorage;
use integration_tests::fresh_fleet;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

#[test]
fn eight_clients_share_one_fleet_without_interference() {
    let (_, fleet) = fresh_fleet();
    let clients = 8;
    let files_each = 12;

    std::thread::scope(|s| {
        for c in 0..clients {
            let fleet = fleet.clone();
            s.spawn(move || {
                // Each client owns its own namespace subtree and its own
                // dispatcher; the fleet (providers, clock) is shared.
                let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
                let mut paths = Vec::new();
                for i in 0..files_each {
                    let path = format!("/client{c}/f{i}");
                    let size = if i % 3 == 0 { 2 * MB } else { 8 * KB };
                    let data = synth_content(&path, c, size);
                    h.create_file(&path, &data).expect("fleet up");
                    paths.push((path, data));
                }
                for (path, want) in &paths {
                    let (got, _) = h.read_file(path).expect("own file");
                    assert_eq!(&got[..], &want[..], "client {c} read its own {path}");
                }
                for (path, _) in &paths {
                    h.delete_file(path).expect("own file");
                }
            });
        }
    });

    // Everything cleaned up: only metadata blocks remain.
    let residual = fleet.total_stored_bytes();
    assert!(residual < 200 * KB as u64, "residual {residual} bytes");
}

#[test]
fn work_queue_of_mixed_jobs_drains_across_worker_clients() {
    // A crossbeam work queue feeding worker threads, each with its own
    // dispatcher over the shared fleet — the shape of a real ingest farm.
    let (_, fleet) = fresh_fleet();
    let (tx, rx) = channel::unbounded::<(String, usize)>();
    for i in 0..60 {
        let size = if i % 5 == 0 { 3 * MB } else { 4 * KB * (i % 7 + 1) };
        tx.send((format!("/ingest/f{i:03}"), size)).expect("open channel");
    }
    drop(tx);

    let workers = 6;
    let (done_tx, done_rx) = channel::unbounded::<(String, usize)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let rx = rx.clone();
            let done = done_tx.clone();
            let fleet = fleet.clone();
            s.spawn(move || {
                let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
                while let Ok((path, size)) = rx.recv() {
                    let data = synth_content(&path, 0, size);
                    h.create_file(&path, &data).expect("fleet up");
                    done.send((path, size)).expect("collector open");
                }
            });
        }
    });
    drop(done_tx);

    let finished: Vec<(String, usize)> = done_rx.iter().collect();
    assert_eq!(finished.len(), 60, "every queued job completed exactly once");

    // A fresh client attaching afterwards sees the merged namespace...
    // except that each worker kept its own metadata store, so the blocks
    // overwrite each other per directory. Verify instead at the provider
    // level: every ingested object's fragments exist.
    let logical: usize = finished.iter().map(|(_, s)| *s).sum();
    assert!(
        fleet.total_stored_bytes() as f64 >= logical as f64 * 1.3,
        "redundant bytes present for every job"
    );
}

#[test]
fn outage_flips_concurrently_with_traffic() {
    // One thread flaps a provider while others read/write; no operation
    // may corrupt data — it either succeeds with correct bytes or fails
    // with a clean error.
    let (_, fleet) = fresh_fleet();

    std::thread::scope(|s| {
        // The chaos monkey: a bounded burst of rapid flaps overlapping
        // the workers' traffic.
        let monkey_fleet = fleet.clone();
        s.spawn(move || {
            let azure = monkey_fleet.by_name("Windows Azure").expect("standard fleet");
            for _ in 0..20_000 {
                azure.force_down();
                std::thread::yield_now();
                azure.restore();
                std::thread::yield_now();
            }
        });

        // The workers.
        for c in 0..4 {
            let fleet = fleet.clone();
            s.spawn(move || {
                let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
                for i in 0..30 {
                    let path = format!("/chaos{c}/f{i}");
                    let data = synth_content(&path, i, 16 * KB);
                    match h.create_file(&path, &data) {
                        Ok(_) => {
                            // If the write was acknowledged, the bytes
                            // must read back exactly (possibly degraded).
                            match h.read_file(&path) {
                                Ok((got, _)) => assert_eq!(&got[..], &data[..], "{path}"),
                                Err(e) => panic!("{path}: acknowledged write unreadable: {e}"),
                            }
                        }
                        Err(_) => {} // clean failure is acceptable mid-flap
                    }
                }
            });
        }
    });
}
