//! Crash-restart durability: deterministic crash injection, journal
//! replay, write-ahead ordering, torn-metadata fallback and recovery-log
//! idempotence (DESIGN.md §12).

use bytes::Bytes;
use proptest::prelude::*;

use hyrd::crashtest::{CrashHarness, OpOutcome};
use hyrd::driver::synth_content;
use hyrd::journal::Journal;
use hyrd::prelude::*;
use hyrd::recovery::UpdateLog;
use hyrd::telemetry::Collector;
use hyrd_cloudsim::CrashPlan;
use hyrd_gcsapi::ObjectKey;
use hyrd_metastore::{MetadataBlock, NormPath};
use hyrd_workloads::FsOp;

use integration_tests::fresh_fleet;

/// Small threshold so modest files exercise the erasure-coded path.
fn small_config() -> HyrdConfig {
    HyrdConfig {
        threshold: 4 * 1024,
        probe_bytes: 4 * 1024,
        hot_read_threshold: Some(2),
        ..HyrdConfig::default()
    }
}

fn harness(config: HyrdConfig) -> (Fleet, CrashHarness) {
    let (_clock, fleet) = fresh_fleet();
    let h = CrashHarness::new(&fleet, config, Collector::disabled()).expect("harness builds");
    (fleet, h)
}

fn create(path: &str, size: u64) -> FsOp {
    FsOp::Create { path: path.to_string(), size }
}

fn update(path: &str, offset: u64, len: u64) -> FsOp {
    FsOp::Update { path: path.to_string(), offset, len }
}

/// A small trace covering both redundancy classes and every mutation
/// kind: replicated create/update/delete, EC create and RMW update,
/// reads past the hot-copy threshold, and a directory listing.
fn mixed_trace() -> Vec<FsOp> {
    vec![
        create("/t/small.txt", 2 * 1024),
        create("/t/big.bin", 16 * 1024),
        update("/t/small.txt", 100, 200),
        update("/t/big.bin", 1000, 3000),
        FsOp::Read { path: "/t/big.bin".to_string() },
        FsOp::Read { path: "/t/big.bin".to_string() },
        FsOp::Delete { path: "/t/small.txt".to_string() },
        FsOp::ListDir { path: "/t".to_string() },
    ]
}

fn run_trace(h: &mut CrashHarness, ops: &[FsOp]) {
    for op in ops {
        if h.is_dead() {
            h.restart_and_audit();
        }
        h.execute(op);
    }
}

/// Write-ahead ordering (regression): a crash *after* the intent is
/// journaled but *before* the first provider put must roll the create
/// back to a clean absence — no half-written objects, no metadata entry.
#[test]
fn crash_between_intent_append_and_first_put_rolls_back() {
    let (fleet, mut h) = harness(small_config());
    fleet.crash_switch().arm(CrashPlan::at_point("wal.append.post", 1));

    let outcome = h.execute(&create("/w/first.dat", 2 * 1024));
    assert_eq!(outcome, OpOutcome::Crashed, "crashpoint must fire on the first create");

    let report = h.restart_and_audit();
    assert_eq!(report.intents_rolled_back, 1, "the create intent rolls back");
    assert_eq!(report.intents_rolled_forward, 0);
    assert_eq!(h.oracle_len(), 0, "the unacked file must not exist");

    h.final_audit();
    assert_eq!(h.violations(), &[] as &[String]);
}

/// A crash *before* the intent append leaves no trace at all: restart
/// finds nothing to resolve.
#[test]
fn crash_before_intent_append_leaves_no_trace() {
    let (fleet, mut h) = harness(small_config());
    fleet.crash_switch().arm(CrashPlan::at_point("wal.append.pre", 1));

    let outcome = h.execute(&create("/w/never.dat", 2 * 1024));
    assert_eq!(outcome, OpOutcome::Crashed);

    let report = h.restart_and_audit();
    assert_eq!(report.intents_rolled_back, 0);
    assert_eq!(report.intents_rolled_forward, 0);

    h.final_audit();
    assert_eq!(h.violations(), &[] as &[String]);
}

/// A crash inside the metadata flush of a later op must not disturb
/// files acked before it.
#[test]
fn crash_during_metadata_flush_preserves_acked_files() {
    let (fleet, mut h) = harness(small_config());

    let first = create("/m/kept.txt", 2 * 1024);
    assert_eq!(h.execute(&first), OpOutcome::Acked);

    // Arm after the first op: its flush already consumed hit #1, and
    // the plan fires on `hits >= 1`, so the very next `meta.flush.pre`
    // — inside the second create — kills the client.
    fleet.crash_switch().arm(CrashPlan::at_point("meta.flush.pre", 1));
    let outcome = h.execute(&create("/m/inflight.txt", 2 * 1024));
    assert_eq!(outcome, OpOutcome::Crashed);

    h.final_audit();
    assert_eq!(h.violations(), &[] as &[String]);
    assert!(h.oracle_len() >= 1, "the acked file survives the crash");
}

/// The exhaustive sweep in miniature: crash at *every* provider-op
/// budget across a mixed trace; every cell must restart to a state with
/// zero durability violations.
#[test]
fn exhaustive_op_budget_sweep_is_violation_free() {
    let ops = mixed_trace();

    // Clean run: measure the trace's provider-op span [start+1, end].
    let (fleet, mut clean) = harness(small_config());
    let start = fleet.crash_switch().op_count();
    run_trace(&mut clean, &ops);
    let end = fleet.crash_switch().op_count();
    clean.final_audit();
    assert_eq!(clean.violations(), &[] as &[String], "clean run must be violation-free");
    assert!(end > start, "the trace must issue provider ops");

    for budget in (start + 1)..=end {
        let (fleet, mut h) = harness(small_config());
        fleet.crash_switch().arm(CrashPlan::at_op(budget));
        run_trace(&mut h, &ops);
        h.final_audit();
        assert_eq!(
            h.violations(),
            &[] as &[String],
            "durability violation with a crash at provider op {budget}"
        );
    }
}

/// Restart is idempotent: a second restart directly after the first has
/// nothing left to resolve — no intents, no orphans, no pruned records.
#[test]
fn second_restart_resolves_nothing() {
    let (fleet, mut h) = harness(small_config());
    assert_eq!(h.execute(&create("/i/a.txt", 2 * 1024)), OpOutcome::Acked);
    assert_eq!(h.execute(&create("/i/b.bin", 16 * 1024)), OpOutcome::Acked);

    // Die two provider ops into the next update.
    fleet.crash_switch().arm(CrashPlan::at_op(fleet.crash_switch().op_count() + 2));
    assert_eq!(h.execute(&update("/i/a.txt", 0, 512)), OpOutcome::Crashed);

    h.restart_and_audit();
    let second = h.restart_and_audit();
    assert_eq!(second.intents_rolled_forward, 0, "no intent survives the first restart");
    assert_eq!(second.intents_rolled_back, 0);
    assert_eq!(second.orphans_removed, 0, "the first restart's GC left no orphans");
    assert_eq!(second.pending_pruned, 0);
    assert_eq!(second.blocks_lost, 0);

    h.final_audit();
    assert_eq!(h.violations(), &[] as &[String]);
}

/// Corrupts one stored replica of a directory's metadata block and
/// returns how many replicas were rewritten (expected: exactly one).
fn corrupt_one_meta_replica(fleet: &Fleet, dir: &str, mutate: impl Fn(&mut Vec<u8>)) -> usize {
    let name = MetadataBlock::object_name(&NormPath::parse(dir).expect("valid dir"));
    let key = ObjectKey::new("hyrd", &name);
    for p in fleet.providers() {
        if let Ok(out) = p.get(&key) {
            let mut bytes = out.value.to_vec();
            mutate(&mut bytes);
            p.put(&key, Bytes::from(bytes)).expect("rewrite replica");
            return 1;
        }
    }
    0
}

fn torn_replica_round_trip(mutate: impl Fn(&mut Vec<u8>)) {
    let (_clock, fleet) = fresh_fleet();
    let config = small_config();
    let journal = Journal::recording();
    let client = Hyrd::with_journal(&fleet, config.clone(), Collector::disabled(), journal.clone())
        .expect("client builds");

    let a = synth_content("/docs/a.txt", 0, 2048);
    let b = synth_content("/docs/b.txt", 0, 1024);
    client.create_file("/docs/a.txt", &a).unwrap();
    client.create_file("/docs/b.txt", &b).unwrap();
    drop(client);

    assert_eq!(corrupt_one_meta_replica(&fleet, "/docs", mutate), 1, "no replica found");

    let (restored, report) =
        Hyrd::restart(&fleet, config, Collector::disabled(), journal).expect("restart succeeds");
    assert!(report.torn_blocks >= 1, "the corrupted replica must be detected as torn");
    assert_eq!(report.blocks_lost, 0, "the intact replica carries the block");
    assert!(report.replicas_healed >= 1, "the torn replica is rewritten from the winner");

    let (got_a, _) = restored.read_file("/docs/a.txt").expect("a readable");
    let (got_b, _) = restored.read_file("/docs/b.txt").expect("b readable");
    assert_eq!(&got_a[..], a.as_slice());
    assert_eq!(&got_b[..], b.as_slice());
}

/// A bit-flipped metadata replica fails its checksum; restart falls back
/// to the intact replica and heals the torn one.
#[test]
fn bit_flipped_metadata_replica_falls_back_to_intact_copy() {
    torn_replica_round_trip(|bytes| {
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
    });
}

/// A truncated metadata replica fails its length check; same fallback.
#[test]
fn truncated_metadata_replica_falls_back_to_intact_copy() {
    torn_replica_round_trip(|bytes| {
        bytes.truncate(bytes.len() / 2);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying the same (compacted) recovery log twice produces the
    /// same provider inventory as replaying it once: replay is
    /// idempotent, so a crash after a partially-applied replay is
    /// always safe to redo from the journal's mirror.
    #[test]
    fn recovery_log_replay_is_idempotent(
        ops in prop::collection::vec((any::<bool>(), 0u8..6, 1u16..512), 1..24)
    ) {
        let (_clock, fleet) = fresh_fleet();
        let provider = &fleet.providers()[0];
        let id = provider.id();

        let mut log = UpdateLog::new();
        for (is_put, name_idx, len) in &ops {
            let key = ObjectKey::new("hyrd", &format!("obj-{name_idx}"));
            if *is_put {
                log.log_put(id, key, Bytes::from(vec![*name_idx; *len as usize]));
            } else {
                log.log_remove(id, key);
            }
        }

        let mut first = log.clone();
        first.replay(provider.as_ref()).expect("first replay");
        prop_assert!(first.pending_for(id).is_empty(), "replay drains the provider's records");
        let snap1 = provider.object_inventory(Fleet::CONTAINER);

        let mut second = log.clone();
        second.replay(provider.as_ref()).expect("second replay");
        let snap2 = provider.object_inventory(Fleet::CONTAINER);

        prop_assert_eq!(snap1, snap2, "a second replay of the same log changes nothing");
    }
}
