//! Client bootstrap (`Hyrd::attach`): a fresh client loads the namespace
//! from the cloud's metadata blocks — the market-mobility scenario where
//! the user's machine changes but the Cloud-of-Clouds keeps the data.

use hyrd::driver::synth_content;
use hyrd::prelude::*;
use hyrd_gcsapi::{CloudStorage, OpKind};
use integration_tests::fresh_fleet;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

#[test]
fn fresh_client_sees_everything_the_old_client_wrote() {
    let (_, fleet) = fresh_fleet();
    let mut audit: Vec<(String, Vec<u8>)> = Vec::new();
    {
        let mut old = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        for (path, size) in [
            ("/docs/a.txt", 2 * KB),
            ("/docs/b.txt", 700 * KB),
            ("/media/big.bin", 3 * MB),
            ("/deep/nested/dir/file", 16 * KB),
        ] {
            let data = synth_content(path, 0, size);
            old.create_file(path, &data).expect("fleet up");
            audit.push((path.to_string(), data));
        }
        // The old client goes away (dropped).
    }

    let (mut fresh, bootstrap) =
        Hyrd::attach(&fleet, HyrdConfig::default()).expect("namespace loads");
    assert!(bootstrap.ops.iter().any(|o| o.kind == OpKind::List), "bootstrap Lists");
    assert!(
        bootstrap.ops.iter().filter(|o| o.kind == OpKind::Get).count() >= 3,
        "one Get per populated directory block"
    );

    for (path, want) in &audit {
        assert_eq!(fresh.file_size(path), Some(want.len() as u64), "{path}");
        let (got, _) = fresh.read_file(path).expect("loaded placement serves");
        assert_eq!(&got[..], &want[..], "{path}");
    }
    let (names, _) = fresh.list_dir("/docs").expect("loaded namespace");
    assert_eq!(names, vec!["a.txt", "b.txt"]);
}

#[test]
fn fresh_client_writes_never_collide_with_adopted_objects() {
    let (_, fleet) = fresh_fleet();
    {
        let mut old = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        for i in 0..8 {
            old.create_file(&format!("/old/f{i}"), &synth_content("o", i, 4 * KB))
                .expect("fleet up");
        }
        // Delete a few so the surviving id space is sparse.
        old.delete_file("/old/f0").expect("exists");
        old.delete_file("/old/f3").expect("exists");
    }

    let (mut fresh, _) = Hyrd::attach(&fleet, HyrdConfig::default()).expect("loads");
    // New files must take ids beyond every adopted one.
    for i in 0..10 {
        let data = synth_content("n", i, 8 * KB);
        fresh.create_file(&format!("/new/f{i}"), &data).expect("fleet up");
    }
    // Old and new all intact.
    for i in [1u32, 2, 4, 5, 6, 7] {
        let (got, _) = fresh.read_file(&format!("/old/f{i}")).expect("adopted");
        assert_eq!(&got[..], &synth_content("o", i, 4 * KB)[..]);
    }
    for i in 0..10 {
        let (got, _) = fresh.read_file(&format!("/new/f{i}")).expect("created");
        assert_eq!(&got[..], &synth_content("n", i, 8 * KB)[..]);
    }
}

#[test]
fn attach_works_during_a_single_outage() {
    let (_, fleet) = fresh_fleet();
    let data = synth_content("/f", 0, 2 * MB);
    {
        let mut old = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        old.create_file("/f", &data).expect("fleet up");
    }
    // A metadata replica is down; the survivor serves the bootstrap.
    fleet.by_name("Aliyun").expect("standard fleet").force_down();
    let (mut fresh, _) = Hyrd::attach(&fleet, HyrdConfig::default()).expect("survivor serves");
    let (got, _) = fresh.read_file("/f").expect("degraded read");
    assert_eq!(&got[..], &data[..]);
}

#[test]
fn attach_to_an_empty_namespace_is_fine() {
    let (_, fleet) = fresh_fleet();
    let (mut fresh, bootstrap) =
        Hyrd::attach(&fleet, HyrdConfig::default()).expect("empty is valid");
    assert_eq!(bootstrap.ops.iter().filter(|o| o.kind == OpKind::Get).count(), 0);
    fresh.create_file("/first", &[1u8; 100]).expect("fleet up");
    assert_eq!(fresh.file_size("/first"), Some(100));
}

#[test]
fn updates_by_the_new_client_persist_through_another_attach() {
    let (_, fleet) = fresh_fleet();
    let mut content = synth_content("/f", 0, 2 * MB);
    {
        let mut a = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
        a.create_file("/f", &content).expect("fleet up");
    }
    {
        let (mut b, _) = Hyrd::attach(&fleet, HyrdConfig::default()).expect("loads");
        let patch = synth_content("/f", 1, 32 * KB);
        b.update_file("/f", 500_000, &patch).expect("adopted placement");
        content[500_000..500_000 + patch.len()].copy_from_slice(&patch);
    }
    let (mut c, _) = Hyrd::attach(&fleet, HyrdConfig::default()).expect("loads again");
    let (got, _) = c.read_file("/f").expect("present");
    assert_eq!(&got[..], &content[..]);
}
