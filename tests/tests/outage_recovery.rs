//! The paper's §III-C recovery protocol, end to end: writes during an
//! outage, degraded service, consistency update on return, and
//! convergence (every provider ends bytewise-consistent).

use hyrd::driver::synth_content;
use hyrd::prelude::*;
use hyrd_baselines::{DuraCloud, Racs};
use hyrd_gcsapi::CloudStorage;
use integration_tests::fresh_fleet;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

#[test]
fn hyrd_full_incident_with_mixed_writes_and_updates() {
    let (_, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    let mut audit: Vec<(String, Vec<u8>)> = Vec::new();

    // Pre-outage state.
    for i in 0..6 {
        let path = format!("/pre/f{i}");
        let data = synth_content(&path, 0, if i % 2 == 0 { 8 * KB } else { 2 * MB });
        h.create_file(&path, &data).expect("fleet up");
        audit.push((path, data));
    }

    // Outage: Aliyun (a replica target AND a fragment target).
    let victim = fleet.by_name("Aliyun").expect("standard fleet");
    victim.force_down();

    // Mixed traffic during the outage.
    for i in 0..4 {
        let path = format!("/during/f{i}");
        let data = synth_content(&path, 0, if i % 2 == 0 { 16 * KB } else { 3 * MB });
        h.create_file(&path, &data).expect("survivors take writes");
        audit.push((path, data));
    }
    // Update a pre-outage large file (degraded update).
    let patch = synth_content("/pre/f1", 9, 64 * KB);
    h.update_file("/pre/f1", 1000, &patch).expect("degraded update");
    audit.iter_mut().find(|(p, _)| p == "/pre/f1").expect("tracked").1[1000..1000 + patch.len()]
        .copy_from_slice(&patch);
    // Delete a pre-outage small file.
    h.delete_file("/pre/f0").expect("exists");
    audit.retain(|(p, _)| p != "/pre/f0");

    // Everything reads correctly while degraded.
    for (path, want) in &audit {
        let (got, _) = h.read_file(path).expect("degraded read");
        assert_eq!(&got[..], &want[..], "degraded {path}");
    }

    // Recovery.
    victim.restore();
    let (report, _) = h.recover_provider(victim.id()).expect("provider back");
    assert!(report.puts_replayed > 0, "missed writes were replayed");
    assert_eq!(h.pending_log_len(), 0);
    assert_eq!(h.pending_dirty_fragments(), 0);

    // Convergence check: with ANY other single provider down, all content
    // still reads bytewise-correct — so Aliyun's recovered state is
    // genuinely consistent, not just present.
    for other in ["Amazon S3", "Windows Azure", "Rackspace"] {
        fleet.by_name(other).expect("standard fleet").force_down();
        for (path, want) in &audit {
            let (got, _) = h.read_file(path).expect("single outage");
            assert_eq!(&got[..], &want[..], "{path} with {other} down post-recovery");
        }
        fleet.by_name(other).expect("standard fleet").restore();
    }
}

#[test]
fn racs_recovers_strip_and_fragment_writes() {
    let (_, fleet) = fresh_fleet();
    let mut r = Racs::new(&fleet).expect("4-provider fleet");

    let victim = fleet.by_name("Windows Azure").expect("standard fleet");
    victim.force_down();
    let small = synth_content("/s", 0, 4 * KB);
    let large = synth_content("/l", 0, 2 * MB);
    r.create_file("/s", &small).expect("survivors");
    r.create_file("/l", &large).expect("survivors");

    victim.restore();
    r.recover_provider(victim.id()).expect("provider back");
    assert_eq!(r.pending_log_len(), 0);

    // The recovered provider now carries its weight under a different
    // outage.
    fleet.by_name("Aliyun").expect("standard fleet").force_down();
    let (s, _) = r.read_file("/s").expect("degraded");
    let (l, _) = r.read_file("/l").expect("degraded");
    assert_eq!(&s[..], &small[..]);
    assert_eq!(&l[..], &large[..]);
}

#[test]
fn duracloud_secondary_catches_up_after_its_outage() {
    let (_, fleet) = fresh_fleet();
    let mut d = DuraCloud::standard(&fleet).expect("standard fleet");
    let azure = fleet.by_name("Windows Azure").expect("standard fleet");

    azure.force_down();
    let data = synth_content("/f", 0, 256 * KB);
    d.create_file("/f", &data).expect("primary up");
    assert!(d.pending_log_len() > 0);

    azure.restore();
    let (report, _) = d.recover_provider(azure.id()).expect("provider back");
    assert!(report.puts_replayed > 0);

    // Primary dies: the caught-up secondary serves.
    fleet.by_name("Amazon S3").expect("standard fleet").force_down();
    let (bytes, report) = d.read_file("/f").expect("secondary");
    assert_eq!(&bytes[..], &data[..]);
    assert_eq!(report.ops[0].provider, azure.id());
}

#[test]
fn scheduled_outage_windows_drive_degraded_service_automatically() {
    use hyrd_cloudsim::clock::units::hours;
    let (clock, fleet) = fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");

    fleet.by_name("Rackspace").expect("standard fleet").schedule_outage(hours(1), hours(5));
    let data = synth_content("/f", 0, 2 * MB);
    h.create_file("/f", &data).expect("all up at t=0");

    clock.advance(hours(2)); // inside the window
    let (bytes, report) = h.read_file("/f").expect("degraded");
    assert_eq!(&bytes[..], &data[..]);
    assert!(report
        .ops
        .iter()
        .all(|o| fleet.get(o.provider).expect("fleet member").name() != "Rackspace"));

    clock.advance(hours(4)); // window over
    assert!(fleet.by_name("Rackspace").expect("standard fleet").is_available());
    let (bytes, _) = h.read_file("/f").expect("normal");
    assert_eq!(&bytes[..], &data[..]);
}

#[test]
fn double_outage_of_raid6_hyrd_stays_available_and_recovers() {
    let (_, fleet) = fresh_fleet();
    let mut cfg = HyrdConfig::default();
    cfg.code = hyrd::CodeChoice::Raid6 { m: 2 };
    let mut h = Hyrd::new(&fleet, cfg).expect("valid config");

    let data = synth_content("/f", 0, 4 * MB);
    h.create_file("/f", &data).expect("fleet up");

    let v1 = fleet.by_name("Amazon S3").expect("standard fleet");
    let v2 = fleet.by_name("Rackspace").expect("standard fleet");
    v1.force_down();
    v2.force_down();
    let (bytes, _) = h.read_file("/f").expect("RAID6 tolerates 2 outages");
    assert_eq!(&bytes[..], &data[..]);

    // Writes during the double outage land on the 2 survivors and are
    // logged for both victims.
    let extra = synth_content("/g", 0, 3 * MB);
    h.create_file("/g", &extra).expect("2 of 4 suffices for m=2");
    assert!(h.pending_log_len() >= 2);

    v1.restore();
    v2.restore();
    h.recover_provider(v1.id()).expect("back");
    h.recover_provider(v2.id()).expect("back");
    assert_eq!(h.pending_log_len(), 0);

    // Full strength again: any two may now fail.
    fleet.by_name("Windows Azure").expect("standard fleet").force_down();
    fleet.by_name("Aliyun").expect("standard fleet").force_down();
    let (bytes, _) = h.read_file("/g").expect("recovered fragments serve");
    assert_eq!(&bytes[..], &extra[..]);
}
