//! Determinism contract of the parallel sweep engine: the same seeded
//! Internet-Archive month, replayed as sweep cells, must produce
//! identical [`ReplayStats`] *and* byte-identical JSONL telemetry traces
//! for every job count — worker threads may reorder execution, never
//! results.

use hyrd::driver::{replay, replay_sweep, ReplayOptions};
use hyrd::prelude::*;
use hyrd::telemetry::{Collector, SharedBuf};
use hyrd_baselines::Racs;
use hyrd_workloads::{FsOp, IaTrace};

/// One seeded archive month (day-prefixed so samples never collide on
/// paths), sizes clamped to 2 MiB so both placement tiers stay cheap to
/// exercise.
fn month_ops(seed: u64) -> Vec<FsOp> {
    let trace = IaTrace::synthesize(seed);
    let mut ops = Vec::new();
    for day in 0..4u64 {
        let prefix = format!("/d{day}");
        for op in trace.sample_day_ops(day as usize % 12, 4e-6, seed ^ day) {
            ops.push(match op {
                FsOp::Create { path, size } => {
                    FsOp::Create { path: format!("{prefix}{path}"), size: size.min(2 << 20) }
                }
                FsOp::Read { path } => FsOp::Read { path: format!("{prefix}{path}") },
                FsOp::Update { path, offset, len } => {
                    FsOp::Update { path: format!("{prefix}{path}"), offset, len }
                }
                FsOp::Delete { path } => FsOp::Delete { path: format!("{prefix}{path}") },
                FsOp::ListDir { path } => FsOp::ListDir { path: format!("{prefix}{path}") },
            });
        }
    }
    ops
}

/// One cell: fresh fleet + virtual clock + its own JSONL collector, so
/// nothing is shared across workers. Returns the stats and the trace.
fn run_cell(which: &str, ops: &[FsOp]) -> (ReplayStats, Vec<u8>) {
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let buf = SharedBuf::new();
    let telemetry = Collector::builder(clock.clone()).jsonl(buf.clone()).build();
    let mut scheme: Box<dyn Scheme> = match which {
        "hyrd" => Box::new(
            Hyrd::with_telemetry(&fleet, HyrdConfig::default(), telemetry.clone())
                .expect("valid default config"),
        ),
        _ => Box::new(Racs::new(&fleet).expect("4-provider fleet")),
    };
    let opts = ReplayOptions { telemetry: telemetry.clone(), ..ReplayOptions::default() };
    let stats = replay(scheme.as_mut(), ops, &clock, &opts);
    telemetry.flush();
    (stats, buf.contents())
}

#[test]
fn sweep_results_are_identical_for_every_job_count() {
    let ops = month_ops(0xA11_CE);
    assert!(ops.len() > 60, "month sample has substance: {}", ops.len());

    let grid = |jobs: usize| -> Vec<(ReplayStats, Vec<u8>)> {
        let cells: Vec<Box<dyn FnOnce() -> (ReplayStats, Vec<u8>) + Send + '_>> = vec![
            Box::new(|| run_cell("hyrd", &ops)),
            Box::new(|| run_cell("racs", &ops)),
            Box::new(|| run_cell("hyrd", &ops)),
        ];
        replay_sweep(cells, jobs)
    };

    let baseline = grid(1);
    for (stats, trace) in &baseline {
        assert_eq!(stats.errors, 0);
        assert!(!trace.is_empty(), "collector captured the replay");
    }
    // The two HyRD cells are the same computation: same stats, same
    // bytes — the trace carries virtual-clock stamps only.
    assert_eq!(baseline[0].0, baseline[2].0);
    assert_eq!(baseline[0].1, baseline[2].1);

    for jobs in [2, 8] {
        let swept = grid(jobs);
        for (i, (cell, base)) in swept.iter().zip(&baseline).enumerate() {
            assert_eq!(cell.0, base.0, "cell {i} stats diverged at jobs={jobs}");
            assert_eq!(
                cell.1, base.1,
                "cell {i} JSONL trace diverged at jobs={jobs} (byte-identity broken)"
            );
        }
    }
}

#[test]
fn sweep_preserves_submission_order_not_completion_order() {
    // Unequal workloads: later cells finish first under parallelism if
    // completion order leaked into collection order.
    let cells: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..12usize)
        .map(|i| {
            Box::new(move || {
                let mut acc = 0u64;
                for k in 0..((12 - i) * 20_000) as u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    assert_eq!(replay_sweep(cells, 8), (0..12).collect::<Vec<_>>());
}
