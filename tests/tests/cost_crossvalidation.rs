//! Cross-validation of the analytic cost models (`hyrd-costsim`) against
//! the *executable* schemes: replay a miniature "month" through the real
//! implementations, bill the actual per-provider usage with Table II
//! prices, and require the analytic model to predict the same scheme
//! ordering and roughly the same relative costs.

use hyrd::driver::synth_content;
use hyrd::prelude::*;
use hyrd_baselines::{DuraCloud, Racs, SingleCloud};
use hyrd_cloudsim::pricing::PriceBook;
use hyrd_costsim::model::{CostModel, DuraCloudModel, HyrdModel, RacsModel, SingleModel, S3};
use hyrd_costsim::usage::MonthlyUsage;
use hyrd_workloads::ia_trace::MonthTraffic;
use hyrd_workloads::FileSizeDist;
use rand::prelude::*;

const READS_PER_FILE: usize = 2; // approximates the 2.1:1 volume ratio

/// Builds the mini-month file set: Agrawal mix, deterministic.
fn month_files() -> Vec<(String, Vec<u8>)> {
    let dist = FileSizeDist::agrawal();
    let mut rng = SmallRng::seed_from_u64(0xC057);
    (0..60)
        .map(|i| {
            let size = rng.sample(&dist) as usize;
            let path = format!("/m/f{i}");
            let data = synth_content(&path, 0, size);
            (path, data)
        })
        .collect()
}

/// Replays the mini-month and bills the real per-provider usage.
fn measured_cost<F>(make: F) -> f64
where
    F: FnOnce(&Fleet) -> Box<dyn Scheme>,
{
    let fleet = Fleet::standard_four(SimClock::new());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let mut scheme = make(&fleet);
    let files = month_files();
    for (path, data) in &files {
        scheme.create_file(path, data).expect("fleet up");
    }
    for _ in 0..READS_PER_FILE {
        for (path, _) in &files {
            scheme.read_file(path).expect("fleet up");
        }
    }
    fleet
        .providers()
        .iter()
        .map(|p| {
            let s = p.stats();
            let usage = MonthlyUsage {
                stored_bytes: p.stored_bytes(),
                bytes_in: s.bytes_in,
                bytes_out: s.bytes_out,
                put_class_ops: s.put_class_ops(),
                get_class_ops: s.get_class_ops(),
            };
            usage.cost(p.prices())
        })
        .sum()
}

/// Runs the analytic model on traffic matching the mini-month.
fn modelled_cost(model: &mut dyn CostModel) -> f64 {
    let files = month_files();
    let written: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
    let traffic = MonthTraffic {
        month: 0,
        label: "mini".into(),
        bytes_written: written,
        bytes_read: written * READS_PER_FILE as u64,
        write_requests: files.len() as u64,
        read_requests: (files.len() * READS_PER_FILE) as u64,
    };
    let usage = model.month(&traffic);
    let prices =
        [PriceBook::AMAZON_S3, PriceBook::WINDOWS_AZURE, PriceBook::ALIYUN, PriceBook::RACKSPACE];
    usage.iter().zip(prices).map(|(u, p)| u.cost(&p)).sum()
}

/// The four executable schemes, replayed as independent cells on worker
/// threads; `replay_sweep` keeps the results in lineup order.
fn measured_lineup(jobs: usize) -> Vec<(&'static str, f64)> {
    let cells: Vec<Box<dyn FnOnce() -> f64 + Send>> = vec![
        Box::new(|| measured_cost(|f| Box::new(SingleCloud::amazon_s3(f).expect("has S3")))),
        Box::new(|| measured_cost(|f| Box::new(DuraCloud::standard(f).expect("std")))),
        Box::new(|| measured_cost(|f| Box::new(Racs::new(f).expect("4p")))),
        Box::new(|| {
            measured_cost(|f| Box::new(Hyrd::new(f, HyrdConfig::default()).expect("valid config")))
        }),
    ];
    ["S3", "DuraCloud", "RACS", "HyRD"].into_iter().zip(replay_sweep(cells, jobs)).collect()
}

#[test]
fn analytic_models_match_the_executable_schemes() {
    let measured = measured_lineup(0);
    let modelled = [
        ("S3", modelled_cost(&mut SingleModel::new("S3", S3))),
        ("DuraCloud", modelled_cost(&mut DuraCloudModel::new())),
        ("RACS", modelled_cost(&mut RacsModel::new())),
        ("HyRD", modelled_cost(&mut HyrdModel::paper_default())),
    ];

    // 1. Same ordering: HyRD < RACS < DuraCloud on both sides, singles
    //    cheapest.
    let get =
        |set: &[(&str, f64)], n: &str| set.iter().find(|(name, _)| *name == n).expect("present").1;
    for set in [&measured[..], &modelled[..]] {
        assert!(
            get(set, "HyRD") < get(set, "RACS"),
            "HyRD {:.4} vs RACS {:.4}",
            get(set, "HyRD"),
            get(set, "RACS")
        );
        assert!(get(set, "RACS") < get(set, "DuraCloud"));
    }

    // 2. Relative costs agree within a factor-level tolerance (the model
    //    is aggregate; the execution has metadata overheads, rounding and
    //    placement detail the model abstracts away).
    for ((name_m, measured_c), (name_a, modelled_c)) in measured.iter().zip(&modelled) {
        assert_eq!(name_m, name_a);
        let ratio = measured_c / modelled_c;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{name_m}: measured {measured_c:.4} vs modelled {modelled_c:.4} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn measured_hyrd_discount_lands_in_the_papers_band() {
    let cells: Vec<Box<dyn FnOnce() -> f64 + Send>> = vec![
        Box::new(|| measured_cost(|f| Box::new(DuraCloud::standard(f).expect("std")))),
        Box::new(|| {
            measured_cost(|f| Box::new(Hyrd::new(f, HyrdConfig::default()).expect("valid config")))
        }),
    ];
    let costs = replay_sweep(cells, 0);
    let (dura, hyrd) = (costs[0], costs[1]);
    let discount = 1.0 - hyrd / dura;
    // Paper's cumulative figure is 33.4%; a single synthetic month with
    // replicated-metadata overhead lands looser, but the sign and
    // magnitude class must hold.
    assert!((0.10..0.75).contains(&discount), "HyRD vs DuraCloud measured discount {discount:.3}");
}
