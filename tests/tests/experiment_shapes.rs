//! The paper's headline experimental shapes, locked in as tests: if a
//! refactor breaks "who wins and by roughly what factor", these fail.

use hyrd::driver::{replay_with_state, ReplayOptions, ReplayState};
use hyrd::prelude::*;
use hyrd_baselines::{DuraCloud, Racs, SingleCloud};
use hyrd_costsim::model::{
    CostModel, DuraCloudModel, HyrdModel, RacsModel, SingleModel, ALIYUN, S3,
};
use hyrd_costsim::report::run_model;
use hyrd_workloads::{IaTrace, PostMark, PostMarkConfig};

fn postmark() -> PostMarkConfig {
    PostMarkConfig { initial_files: 40, transactions: 160, seed: 0x51A7, ..Default::default() }
}

enum Outage {
    No,
    Azure,
}

fn mean_latency<F>(make: F, outage: Outage) -> f64
where
    F: FnOnce(&Fleet) -> Box<dyn Scheme>,
{
    let clock = SimClock::new();
    let fleet = Fleet::standard_four(clock.clone());
    for p in fleet.providers() {
        p.set_ghost_mode(true);
    }
    let mut scheme = make(&fleet);
    let (ops, _) = PostMark::new(postmark()).generate();
    let init = postmark().initial_files;
    let opts = ReplayOptions::default();
    let mut state = ReplayState::default();
    let _ = replay_with_state(scheme.as_mut(), &ops[..init], &clock, &opts, &mut state);
    if matches!(outage, Outage::Azure) {
        fleet.by_name("Windows Azure").expect("standard fleet").force_down();
    }
    let stats = replay_with_state(scheme.as_mut(), &ops[init..], &clock, &opts, &mut state);
    assert_eq!(stats.errors, 0, "{} must not error", stats.scheme);
    stats.mean_latency().as_secs_f64()
}

#[test]
fn fig6_shape_normal_state() {
    let s3 = mean_latency(|f| Box::new(SingleCloud::amazon_s3(f).expect("has S3")), Outage::No);
    let dura = mean_latency(|f| Box::new(DuraCloud::standard(f).expect("std")), Outage::No);
    let racs = mean_latency(|f| Box::new(Racs::new(f).expect("4p")), Outage::No);
    let hyrd =
        mean_latency(|f| Box::new(Hyrd::new(f, HyrdConfig::default()).expect("valid")), Outage::No);

    // Who wins: HyRD < RACS < S3 < DuraCloud (paper Figure 6).
    assert!(hyrd < racs, "HyRD {hyrd:.2}s vs RACS {racs:.2}s");
    assert!(racs < s3, "RACS {racs:.2}s vs S3 {s3:.2}s");
    assert!(dura > s3 * 0.99, "DuraCloud {dura:.2}s vs S3 {s3:.2}s (double writes)");

    // By roughly what factor (paper: 58.7% / 34.8% lower).
    let vs_dura = 1.0 - hyrd / dura;
    let vs_racs = 1.0 - hyrd / racs;
    assert!(vs_dura > 0.40, "HyRD vs DuraCloud {:.1}%", vs_dura * 100.0);
    assert!(vs_racs > 0.20, "HyRD vs RACS {:.1}%", vs_racs * 100.0);
}

#[test]
fn fig6_shape_outage_state() {
    let dura_n = mean_latency(|f| Box::new(DuraCloud::standard(f).expect("std")), Outage::No);
    let dura_o = mean_latency(|f| Box::new(DuraCloud::standard(f).expect("std")), Outage::Azure);
    let racs_o = mean_latency(|f| Box::new(Racs::new(f).expect("4p")), Outage::Azure);
    let hyrd_o = mean_latency(
        |f| Box::new(Hyrd::new(f, HyrdConfig::default()).expect("valid")),
        Outage::Azure,
    );

    // The paper's §IV-C observations:
    // 1. DuraCloud is FASTER during the outage (single write path).
    assert!(dura_o < dura_n, "DuraCloud outage {dura_o:.2}s vs normal {dura_n:.2}s");
    // 2. HyRD stays ahead of RACS during the outage.
    assert!(hyrd_o < racs_o, "HyRD {hyrd_o:.2}s vs RACS {racs_o:.2}s in outage");
    // 3. And ahead of DuraCloud.
    assert!(hyrd_o < dura_o);
}

#[test]
fn fig4_shape_cost_ordering_and_magnitudes() {
    let trace = IaTrace::synthesize(42);
    let run = |m: &mut dyn CostModel| run_model(m, &trace).total();

    let aliyun = run(&mut SingleModel::new("Aliyun", ALIYUN));
    let s3 = run(&mut SingleModel::new("S3", S3));
    let dura = run(&mut DuraCloudModel::new());
    let racs = run(&mut RacsModel::new());
    let hyrd = run(&mut HyrdModel::paper_default());

    // Orderings from Figure 4b.
    assert!(aliyun < s3, "Aliyun is the cheapest single cloud");
    assert!(hyrd < racs && racs < dura, "HyRD < RACS < DuraCloud");
    assert!(hyrd > aliyun, "redundancy costs more than the cheapest single cloud");

    // Magnitudes (paper: 33.4% / 20.4% lower).
    let vs_dura = 1.0 - hyrd / dura;
    let vs_racs = 1.0 - hyrd / racs;
    // Paper: 33.4%. Our DuraCloud bills S3 egress for its primary reads
    // (the same primary/backup model that reproduces the Figure 6
    // outage-speedup), which widens the gap relative to the paper's
    // storage-dominated estimate.
    assert!((0.20..0.60).contains(&vs_dura), "HyRD vs DuraCloud {:.1}%", vs_dura * 100.0);
    assert!((0.08..0.35).contains(&vs_racs), "HyRD vs RACS {:.1}%", vs_racs * 100.0);
}

#[test]
fn fig5_shape_provider_latency_ordering() {
    let fleet = Fleet::standard_four(SimClock::new());
    let lat = |name: &str, bytes: u64| {
        fleet
            .by_name(name)
            .expect("standard fleet")
            .profile()
            .latency
            .expected_latency(hyrd_gcsapi::OpKind::Get, bytes)
            .as_secs_f64()
    };
    for size in [4 << 10, 256 << 10, 1 << 20, 4 << 20] {
        assert!(lat("Aliyun", size) < lat("Windows Azure", size));
        assert!(lat("Windows Azure", size) < lat("Rackspace", size));
        assert!(lat("Windows Azure", size) < lat("Amazon S3", size));
        // The 1MB->4MB disproportion.
    }
    for name in ["Amazon S3", "Windows Azure", "Aliyun", "Rackspace"] {
        assert!(lat(name, 4 << 20) > 4.0 * lat(name, 1 << 20), "{name} knee");
    }
}

#[test]
fn fig3_shape_trace_ratios() {
    let t = IaTrace::synthesize(42);
    assert!((t.volume_ratio() - 2.1).abs() < 0.01);
    assert!((t.request_ratio() - 3.5).abs() < 0.01);
}

#[test]
fn table1_shape_hybrid_overhead_sits_between_ec_and_replication() {
    use hyrd::driver::synth_content;
    let (_, fleet) = integration_tests::fresh_fleet();
    let mut h = Hyrd::new(&fleet, HyrdConfig::default()).expect("valid config");
    // The Agrawal mix: mostly-small count, mostly-large bytes.
    for i in 0..20 {
        h.create_file(&format!("/s{i}"), &synth_content("s", i, 4 << 10)).expect("up");
    }
    for i in 0..3 {
        h.create_file(&format!("/l{i}"), &synth_content("l", i, 5 << 20)).expect("up");
    }
    let overhead = h.physical_bytes() as f64 / h.logical_bytes() as f64;
    assert!(overhead > 4.0 / 3.0, "above pure RAID5 (small files are 2x)");
    assert!(overhead < 1.6, "far below pure replication (2x), got {overhead}");
}
