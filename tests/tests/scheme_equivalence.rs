//! Every scheme must be *functionally* identical — same bytes in, same
//! bytes out, through creates, updates, deletes and single outages. The
//! schemes differ in cost and latency, never in correctness.

use hyrd::driver::{replay, synth_content, ReplayOptions};
use hyrd::Scheme;
use hyrd_workloads::{PostMark, PostMarkConfig};
use integration_tests::{all_schemes, fresh_fleet};

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

#[test]
fn identical_content_roundtrips_through_every_scheme() {
    let files: Vec<(String, Vec<u8>)> = vec![
        ("/tiny".to_string(), synth_content("/tiny", 0, 100)),
        ("/small".to_string(), synth_content("/small", 0, 4 * KB)),
        ("/medium".to_string(), synth_content("/medium", 0, 700 * KB)),
        ("/large".to_string(), synth_content("/large", 0, 3 * MB)),
        ("/dir/nested".to_string(), synth_content("/dir/nested", 0, 64 * KB)),
    ];
    let (_, fleet) = fresh_fleet();
    for mut scheme in all_schemes(&fleet) {
        for (path, data) in &files {
            scheme
                .create_file(path, data)
                .unwrap_or_else(|e| panic!("{} create {path}: {e}", scheme.name()));
            let (bytes, _) = scheme.read_file(path).expect("just wrote it");
            assert_eq!(&bytes[..], &data[..], "{} roundtrip {path}", scheme.name());
        }
        for (path, _) in &files {
            scheme.delete_file(path).expect("exists");
            assert!(scheme.read_file(path).is_err(), "{} must forget {path}", scheme.name());
        }
    }
}

#[test]
fn updates_are_consistent_across_schemes() {
    let (_, fleet) = fresh_fleet();
    for mut scheme in all_schemes(&fleet) {
        let name = scheme.name().to_string();
        let mut content = synth_content("/f", 0, 2 * MB + 333);
        scheme.create_file("/f", &content).unwrap_or_else(|e| panic!("{name}: {e}"));

        for (i, (offset, len)) in
            [(0usize, 50usize), (MB - 7, 20), (2 * MB, 333), (500_000, 4 * KB)].iter().enumerate()
        {
            let patch = synth_content("/f", i as u32 + 1, *len);
            scheme
                .update_file("/f", *offset as u64, &patch)
                .unwrap_or_else(|e| panic!("{name} update ({offset},{len}): {e}"));
            content[*offset..offset + len].copy_from_slice(&patch);
            let (bytes, _) = scheme.read_file("/f").expect("exists");
            assert_eq!(&bytes[..], &content[..], "{name} after update {i}");
        }
        scheme.delete_file("/f").expect("exists");
    }
}

#[test]
fn single_outage_never_loses_committed_data_in_any_coc_scheme() {
    // All schemes except SingleCloud must mask one outage.
    let (_, fleet) = fresh_fleet();
    let victims = ["Amazon S3", "Windows Azure", "Aliyun", "Rackspace"];
    for mut scheme in all_schemes(&fleet).into_iter().skip(1) {
        let name = scheme.name().to_string();
        let small = synth_content("/s", 0, 8 * KB);
        let large = synth_content("/l", 0, 2 * MB);
        scheme.create_file(&format!("/{name}/s"), &small).expect("fleet up");
        scheme.create_file(&format!("/{name}/l"), &large).expect("fleet up");

        for victim in victims {
            // DuraCloud only spans S3+Azure: skip outages outside its pair
            // for the large test (it has no redundancy elsewhere to lose).
            fleet.by_name(victim).expect("standard fleet").force_down();
            let (s, _) = scheme
                .read_file(&format!("/{name}/s"))
                .unwrap_or_else(|e| panic!("{name} small with {victim} down: {e}"));
            let (l, _) = scheme
                .read_file(&format!("/{name}/l"))
                .unwrap_or_else(|e| panic!("{name} large with {victim} down: {e}"));
            assert_eq!(&s[..], &small[..], "{name} small bytes with {victim} down");
            assert_eq!(&l[..], &large[..], "{name} large bytes with {victim} down");
            fleet.by_name(victim).expect("standard fleet").restore();
        }
    }
}

#[test]
fn postmark_replay_verified_bytewise_on_every_scheme() {
    let config = PostMarkConfig {
        initial_files: 15,
        transactions: 60,
        subdirectories: 3,
        size_dist: hyrd_workloads::FileSizeDist::log_uniform(KB as u64, 2 * MB as u64),
        seed: 99,
        ..PostMarkConfig::default()
    };
    let (ops, _) = PostMark::new(config).generate();
    let opts = ReplayOptions { verify_reads: true, ..Default::default() };

    let (clock, fleet) = fresh_fleet();
    for mut scheme in all_schemes(&fleet) {
        let stats = replay(scheme.as_mut(), &ops, &clock, &opts);
        assert_eq!(stats.errors, 0, "{} errored", stats.scheme);
        assert_eq!(stats.verify_failures, 0, "{} served wrong bytes", stats.scheme);
        assert!(stats.overall.count() > 100, "{} ran the workload", stats.scheme);
    }
}

#[test]
fn storage_overhead_ordering_matches_the_redundancy() {
    // DepSky (4x) > NCCloud (2x) ≈ DuraCloud (2x) > HyRD ≈ RACS (4/3).
    let payload = synth_content("/f", 0, 3 * MB);
    let mut overheads = std::collections::HashMap::new();
    for make in 0..6 {
        let (_, fleet) = fresh_fleet();
        let mut schemes = all_schemes(&fleet);
        let scheme = &mut schemes[make];
        scheme.create_file("/f", &payload).expect("fleet up");
        let name = scheme.name().to_string();
        overheads.insert(name, fleet.total_stored_bytes() as f64 / payload.len() as f64);
    }
    assert!(overheads["DepSky"] > 3.9);
    assert!(overheads["DuraCloud"] > 1.9 && overheads["DuraCloud"] < 2.2);
    assert!(overheads["NCCloud-lite"] > 1.9 && overheads["NCCloud-lite"] < 2.2);
    assert!(overheads["RACS"] > 1.3 && overheads["RACS"] < 1.4);
    assert!(overheads["HyRD"] > 1.3 && overheads["HyRD"] < 1.4);
    assert!(overheads["Single(Amazon S3)"] < 1.1);
}
