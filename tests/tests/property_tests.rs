//! Property-based integration tests: random operation sequences against
//! a model filesystem, with random single-provider outages interleaved —
//! the schemes must always agree with the model bytewise.

use proptest::prelude::*;

use hyrd::prelude::*;
use hyrd_baselines::Racs;
use hyrd_gcsapi::CloudStorage;
use integration_tests::fresh_fleet;

/// A random op against a bounded namespace.
#[derive(Debug, Clone)]
enum Op {
    Create { slot: usize, size: usize },
    Update { slot: usize, frac: f64, len: usize },
    Delete { slot: usize },
    Read { slot: usize },
    FailProvider { which: usize },
    RestoreAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..6usize, prop_oneof![Just(512usize), Just(4096), Just(100_000), Just(2_200_000)])
            .prop_map(|(slot, size)| Op::Create { slot, size }),
        (0..6usize, 0.0..1.0f64, 1..4096usize).prop_map(|(slot, frac, len)| Op::Update {
            slot,
            frac,
            len
        }),
        (0..6usize).prop_map(|slot| Op::Delete { slot }),
        (0..6usize).prop_map(|slot| Op::Read { slot }),
        (0..4usize).prop_map(|which| Op::FailProvider { which }),
        Just(Op::RestoreAll),
    ]
}

fn run_against_model(mut scheme: Box<dyn Scheme>, fleet: &Fleet, ops: Vec<Op>) {
    let mut model: Vec<Option<Vec<u8>>> = vec![None; 6];
    let mut version = 0u32;
    let mut down: Option<usize> = None;

    for op in ops {
        match op {
            Op::Create { slot, size } => {
                if model[slot].is_some() {
                    continue;
                }
                version += 1;
                let data = hyrd::driver::synth_content(&format!("/p/f{slot}"), version, size);
                // With a provider down the write may legitimately fail
                // (e.g. too few fragment targets); the model only records
                // acknowledged writes.
                if scheme.create_file(&format!("/p/f{slot}"), &data).is_ok() {
                    model[slot] = Some(data);
                }
            }
            Op::Update { slot, frac, len } => {
                let Some(content) = model[slot].clone() else {
                    continue;
                };
                if content.is_empty() {
                    continue;
                }
                let offset = ((content.len() - 1) as f64 * frac) as usize;
                let len = len.min(content.len() - offset).max(1);
                version += 1;
                let patch = hyrd::driver::synth_content("patch", version, len);
                if scheme.update_file(&format!("/p/f{slot}"), offset as u64, &patch).is_ok() {
                    let c = model[slot].as_mut().expect("checked above");
                    c[offset..offset + len].copy_from_slice(&patch);
                }
            }
            Op::Delete { slot } => {
                if model[slot].is_none() {
                    continue;
                }
                if scheme.delete_file(&format!("/p/f{slot}")).is_ok() {
                    model[slot] = None;
                }
            }
            Op::Read { slot } => {
                let Some(want) = &model[slot] else {
                    assert!(
                        scheme.read_file(&format!("/p/f{slot}")).is_err(),
                        "read of deleted/missing slot {slot} must fail"
                    );
                    continue;
                };
                // A single outage must never lose acknowledged data.
                let (got, _) = scheme
                    .read_file(&format!("/p/f{slot}"))
                    .unwrap_or_else(|e| panic!("{} slot {slot}: {e}", scheme.name()));
                assert_eq!(&got[..], &want[..], "{} slot {slot}", scheme.name());
            }
            Op::FailProvider { which } => {
                // At most one provider down at a time (the paper's
                // single-outage model). A returned provider runs its
                // consistency update before counting again — §III-C.
                if let Some(prev) = down {
                    if prev == which {
                        continue;
                    }
                    let p = &fleet.providers()[prev];
                    p.restore();
                    scheme.recover_provider(p.id()).expect("replay onto returned provider");
                }
                fleet.providers()[which].force_down();
                down = Some(which);
            }
            Op::RestoreAll => {
                if let Some(prev) = down.take() {
                    let p = &fleet.providers()[prev];
                    p.restore();
                    scheme.recover_provider(p.id()).expect("replay onto returned provider");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn hyrd_matches_the_model_under_random_ops_and_outages(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let (_, fleet) = fresh_fleet();
        let scheme = Box::new(
            Hyrd::new(&fleet, HyrdConfig::default()).expect("valid default config"),
        );
        run_against_model(scheme, &fleet, ops);
    }

    #[test]
    fn racs_matches_the_model_under_random_ops_and_outages(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let (_, fleet) = fresh_fleet();
        let scheme = Box::new(Racs::new(&fleet).expect("4-provider fleet"));
        run_against_model(scheme, &fleet, ops);
    }
}
